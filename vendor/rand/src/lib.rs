//! Minimal offline stand-in for `rand` 0.8. Implements the subset the
//! workspace uses: `Rng::{gen_range, gen_bool, gen}`, `SeedableRng`,
//! `rngs::StdRng` (deterministic SplitMix64 + xorshift mix), and
//! `seq::SliceRandom::{shuffle, choose}`. Deterministic for a given seed,
//! which is all the extraction simulator needs; it makes no statistical
//! quality claims beyond "well mixed".

pub mod rngs;
pub mod seq;

/// Core entropy source, as in real `rand`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Values that can be produced uniformly by `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing random-value interface; blanket-implemented for every
/// `RngCore` as in real `rand`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, `seed_from_u64` being the only entry point the
/// workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}
