//! Minimal offline stand-in for the `parking_lot` crate, backed by
//! `std::sync`. Matches the subset of the real API this workspace uses:
//! locks do not poison, so `lock()` / `read()` / `write()` return guards
//! directly rather than `Result`s.

use std::sync;

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
