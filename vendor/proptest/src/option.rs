//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct OptionStrategy<S>(S);

/// `Some` of the inner strategy's value, or `None` — `None` roughly a
/// quarter of the time, so optional columns still mostly carry data.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.0.generate(rng))
        }
    }
}
