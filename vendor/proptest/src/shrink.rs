//! Minimal shrinking: when a case fails, the runner tries strictly
//! "smaller" variants of each argument (integers halve toward zero,
//! collections truncate) and keeps any variant that still fails, so the
//! reported counterexample is readable instead of the raw random draw.
//!
//! Unlike real proptest there is no value tree: shrinking re-runs the
//! property body on candidate values produced *from* the failing value.
//! Types without a [`Shrink`] impl (domain enums, opaque structs) simply
//! produce no candidates — the autoref-specialization shim in
//! [`candidates_of`] falls back to an empty list rather than requiring
//! every strategy value type to opt in.

/// Candidate strictly-smaller values for a failing input, most aggressive
/// first (the runner keeps the first candidate that still fails, then
/// shrinks again from there).
pub trait Shrink: Sized {
    fn shrink(&self) -> Vec<Self>;
}

/// Cap on accepted shrink steps per failure, so a pathological property
/// (e.g. one failing on every input) terminates promptly.
pub const MAX_STEPS: u32 = 500;

macro_rules! int_shrink {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<$t> {
                let v = *self;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    let half = v / 2; // truncates toward zero for signed values
                    if half != 0 {
                        out.push(half);
                    }
                    let step = if v > 0 { v - 1 } else { v + 1 };
                    if step != 0 && step != half {
                        out.push(step);
                    }
                }
                out
            }
        }
    )*};
}

int_shrink!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Shrink for f64 {
    fn shrink(&self) -> Vec<f64> {
        let v = *self;
        let mut out = Vec::new();
        if v != 0.0 {
            out.push(0.0);
            if v.is_finite() && v / 2.0 != 0.0 {
                out.push(v / 2.0);
            }
        }
        out
    }
}

impl Shrink for bool {
    fn shrink(&self) -> Vec<bool> {
        if *self { vec![false] } else { Vec::new() }
    }
}

impl<T: Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Vec<T>> {
        let mut out = Vec::new();
        if !self.is_empty() {
            out.push(Vec::new());
            let half = self.len() / 2;
            if half > 0 {
                out.push(self[..half].to_vec());
            }
            if self.len() - 1 > half {
                out.push(self[..self.len() - 1].to_vec());
            }
        }
        out
    }
}

impl Shrink for String {
    fn shrink(&self) -> Vec<String> {
        let chars: Vec<char> = self.chars().collect();
        let mut out = Vec::new();
        if !chars.is_empty() {
            out.push(String::new());
            let half = chars.len() / 2;
            if half > 0 {
                out.push(chars[..half].iter().collect());
            }
            if chars.len() - 1 > half {
                out.push(chars[..chars.len() - 1].iter().collect());
            }
        }
        out
    }
}

impl<T: Clone + Shrink> Shrink for Option<T> {
    fn shrink(&self) -> Vec<Option<T>> {
        match self {
            None => Vec::new(),
            Some(v) => std::iter::once(None)
                .chain(v.shrink().into_iter().map(Some))
                .collect(),
        }
    }
}

macro_rules! tuple_shrink {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Clone + Shrink),+> Shrink for ($($name,)+) {
            fn shrink(&self) -> Vec<($($name,)+)> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink() {
                        let mut next = self.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_shrink! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Autoref-specialization shim: `candidates_of!`-style dispatch without a
/// blanket impl. `(&Wrap(&v)).candidates()` resolves to [`ViaShrink`] when
/// the value type implements [`Shrink`] (receiver matches by value) and
/// falls back to [`ViaDefault`] (one deref away) otherwise, so strategy
/// value types never *have* to implement `Shrink`.
pub struct Wrap<'a, T>(pub &'a T);

// manual impls: the field is a reference, so Wrap is Copy for every T
// (derive would wrongly demand T: Copy)
impl<'a, T> Clone for Wrap<'a, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'a, T> Copy for Wrap<'a, T> {}

pub trait ViaShrink {
    type V;
    fn candidates(self) -> Vec<Self::V>;
}

impl<'a, T: Shrink> ViaShrink for &'a Wrap<'a, T> {
    type V = T;
    fn candidates(self) -> Vec<T> {
        self.0.shrink()
    }
}

pub trait ViaDefault {
    type V;
    fn candidates(self) -> Vec<Self::V>;
}

impl<'a, T> ViaDefault for Wrap<'a, T> {
    type V = T;
    fn candidates(self) -> Vec<T> {
        Vec::new()
    }
}
