//! Minimal offline stand-in for `proptest`. Provides the subset of the
//! API the workspace's property suites use: the [`proptest!`] macro,
//! the [`strategy::Strategy`] trait with `prop_map`, `Just`, `any`,
//! `prop_oneof!`, integer-range and regex-string strategies,
//! `collection::vec` and `option::of`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest: inputs are generated from a
//! deterministic per-case RNG (seed overridable via `PROPTEST_SEED`),
//! failing cases are shrunk by a minimal re-execution loop (integers
//! halve toward zero, collections truncate — see [`shrink`]) rather than
//! a value tree, and the regex-string strategy supports the subset of
//! patterns used here (literal chars and `[...]` classes — ranges,
//! negation, escapes — each optionally quantified by `{n}` / `{m,n}`).

pub mod collection;
pub mod option;
pub mod prelude;
pub mod regex;
pub mod shrink;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Just, Strategy};
pub use test_runner::{TestCaseError, TestRng};

/// Number of random cases each property runs. Real proptest defaults to
/// 256; 64 keeps the heavier chase/repair properties fast while still
/// exploring broadly. Override with `PROPTEST_CASES`.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Identity helper that pins a runner closure's argument type to the
/// witness value's type, so the closure body type-checks before its first
/// call (the `proptest!` macro replays the body during shrinking).
pub fn runner<T, F: Fn(T) -> Result<(), TestCaseError>>(_witness: &T, f: F) -> F {
    f
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cases = $crate::cases();
                for case in 0..cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let args = ($($arg,)+);
                    // the body as a re-runnable function of its inputs, so
                    // the shrinker can replay candidates after a failure
                    let run = $crate::runner(
                        &args,
                        |($($arg,)+)| -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        },
                    );
                    match run(args.clone()) {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            // greedy shrink over the whole argument tuple:
                            // keep any smaller variant that still fails
                            let mut args = args;
                            let mut msg = msg;
                            let mut steps = 0u32;
                            'shrinking: while steps < $crate::shrink::MAX_STEPS {
                                use $crate::shrink::{ViaDefault, ViaShrink};
                                for cand in (&$crate::shrink::Wrap(&args)).candidates() {
                                    if let ::std::result::Result::Err(
                                        $crate::TestCaseError::Fail(m),
                                    ) = run(cand.clone())
                                    {
                                        args = cand;
                                        msg = m;
                                        steps += 1;
                                        continue 'shrinking;
                                    }
                                }
                                break;
                            }
                            panic!(
                                "property `{}` failed at case {}/{}: {}\n\
                                 minimal counterexample ({} shrink steps): {:#?}",
                                stringify!($name), case, cases, msg, steps, args,
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l == r,
                    "{:?} != {:?}: {}", l, r, ::std::format!($($fmt)*)
                );
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l != r, "{:?} == {:?}", l, r);
            }
        }
    };
}

/// Discard the current case (counts as a pass, like proptest rejection).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between heterogeneous strategies with a common value
/// type. Weights are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::OneOf::arm($strat)),+
        ])
    };
}
