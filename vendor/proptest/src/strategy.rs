//! The `Strategy` trait and core combinators.

use crate::regex::gen_from_pattern;
use crate::test_runner::TestRng;

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking machinery:
/// `generate` draws a value directly from the RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, reason }
    }
}

/// Strategies are usable through references (the `proptest!` macro
/// always generates via `&strategy`).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up: {}", self.reason);
    }
}

/// Uniform choice between boxed arms sharing a value type — the
/// engine behind `prop_oneof!`.
pub struct OneOf<T> {
    arms: Vec<Box<dyn Fn(&mut TestRng) -> T>>,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<Box<dyn Fn(&mut TestRng) -> T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }

    pub fn arm<S>(strategy: S) -> Box<dyn Fn(&mut TestRng) -> T>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(move |rng| strategy.generate(rng))
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        (self.arms[i])(rng)
    }
}

/// Integer / float range strategies: `0u8..4`, `2usize..8`, `0i64..100`…
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

/// String literals are regex-style generation patterns, as in proptest.
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        gen_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        gen_from_pattern(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// `any::<T>()` — full-domain strategies for primitives.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mirror real proptest: the full domain includes the special
        // values, so total-ordering properties see NaN and infinities.
        match rng.below(16) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => -0.0,
            4 => 0.0,
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}
