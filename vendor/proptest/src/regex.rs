//! Tiny regex-subset string generator backing `"pattern"` strategies.
//!
//! Supported syntax — exactly what the workspace's property suites use:
//! literal chars, `[...]` classes with ranges / negation / `\`-escapes,
//! and `{n}` / `{m,n}` quantifiers on the preceding atom.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// (members, negated)
    Class(Vec<char>, bool),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

pub fn gen_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let n = piece.min + rng.below(piece.max - piece.min + 1);
        for _ in 0..n {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(members, false) => {
            assert!(!members.is_empty(), "empty character class");
            members[rng.below(members.len())]
        }
        Atom::Class(members, true) => {
            // complement over printable ASCII
            let pool: Vec<char> = (0x20u8..0x7F)
                .map(|b| b as char)
                .filter(|c| !members.contains(c))
                .collect();
            assert!(!pool.is_empty(), "negated class excludes all of printable ASCII");
            pool[rng.below(pool.len())]
        }
    }
}

fn unescape(c: char) -> char {
    match c {
        'r' => '\r',
        'n' => '\n',
        't' => '\t',
        '0' => '\0',
        other => other, // \- \" \\ \] etc: the char itself
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                i += 1;
                let negated = i < chars.len() && chars[i] == '^';
                if negated {
                    i += 1;
                }
                let mut members = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    // range `a-z` (a trailing `-` before `]` is a literal)
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        i += 2;
                        let hi = if chars[i] == '\\' {
                            i += 1;
                            unescape(chars[i])
                        } else {
                            chars[i]
                        };
                        assert!(lo <= hi, "bad class range {lo}-{hi} in {pattern:?}");
                        for code in lo as u32..=hi as u32 {
                            if let Some(c) = char::from_u32(code) {
                                members.push(c);
                            }
                        }
                    } else {
                        members.push(lo);
                    }
                    i += 1;
                }
                assert!(i < chars.len(), "unterminated class in {pattern:?}");
                Atom::Class(members, negated)
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "trailing backslash in {pattern:?}");
                Atom::Literal(unescape(chars[i]))
            }
            c => Atom::Literal(c),
        };
        i += 1; // past the atom's final char
        // optional {n} / {m,n}
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            i += 1;
            let mut min_s = String::new();
            while i < chars.len() && chars[i].is_ascii_digit() {
                min_s.push(chars[i]);
                i += 1;
            }
            let min: usize = min_s
                .parse()
                .unwrap_or_else(|_| panic!("bad quantifier in {pattern:?}"));
            let max = if i < chars.len() && chars[i] == ',' {
                i += 1;
                let mut max_s = String::new();
                while i < chars.len() && chars[i].is_ascii_digit() {
                    max_s.push(chars[i]);
                    i += 1;
                }
                max_s
                    .parse()
                    .unwrap_or_else(|_| panic!("bad quantifier in {pattern:?}"))
            } else {
                min
            };
            assert!(
                i < chars.len() && chars[i] == '}',
                "unterminated quantifier in {pattern:?}"
            );
            i += 1;
            (min, max)
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad quantifier {{{min},{max}}} in {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}
