//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max_exclusive: usize,
}

/// A vector of values from `element`, with length drawn from the
/// half-open `size` range (proptest convention: `0..20` means 0–19).
pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, min: size.start, max_exclusive: size.end }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.len_in(self.min, self.max_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
