//! Per-case deterministic RNG and the error type threaded through the
//! `prop_assert*` macros.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — discard the case.
    Reject,
    /// `prop_assert*` failed — fail the test with this message.
    Fail(String),
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "case rejected by prop_assume!"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// Deterministic per-case RNG. The stream depends on the property name,
/// the case index, and an optional `PROPTEST_SEED` override, so each
/// property explores an independent deterministic sequence.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let base: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x5EED_CAFE_F00D_D00D);
        // FNV-1a over the test name distinguishes properties in a file
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(
            base ^ h ^ ((case as u64) << 32 | 0x9E37_79B9),
        ))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform length in `[min, max)` — proptest size ranges are
    /// half-open, e.g. `0..20`.
    pub fn len_in(&mut self, min: usize, max_exclusive: usize) -> usize {
        assert!(min < max_exclusive, "empty size range {min}..{max_exclusive}");
        min + self.below(max_exclusive - min)
    }

    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
