//! Glob-import surface matching `proptest::prelude::*` usage.

pub use crate::strategy::{any, Arbitrary, Just, Strategy};
pub use crate::test_runner::{TestCaseError, TestRng};
pub use crate::{
    prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
};

/// Alias so `prop::collection::vec` / `prop::option::of` paths work.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}
