//! Minimal offline stand-in for `criterion`. Supports the API surface
//! the `vada-bench` suite uses — `Criterion::benchmark_group`,
//! `sample_size` / `measurement_time` / `throughput`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros — measuring with
//! plain wall-clock medians instead of criterion's statistical engine.
//!
//! `--no-run` compilation is the contract for tier-1; actually running a
//! bench executes each closure a bounded number of iterations and prints
//! `<group>/<id>: median <t> (<n> iters)` lines.

use std::fmt;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct Criterion {
    /// Hard cap on iterations per benchmark, so a stub `cargo bench`
    /// finishes in seconds rather than minutes.
    max_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { max_iters: 30 }
    }
}

impl Criterion {
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.max_iters, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.max_iters, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.max_iters, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one(label: &str, max_iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { max_iters, samples: Vec::new() };
    f(&mut bencher);
    bencher.samples.sort();
    let median = bencher
        .samples
        .get(bencher.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!("{label}: median {median:?} ({} iters)", bencher.samples.len());
}

pub struct Bencher {
    max_iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // one warm-up call, then timed iterations
        black_box(routine());
        for _ in 0..self.max_iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
