//! # vada — a reproduction of the VADA data-wrangling architecture
//!
//! An end-to-end, **pay-as-you-go** data-wrangling system after
//! Konstantinou et al., *The VADA Architecture for Cost-Effective Data
//! Wrangling* (SIGMOD '17): wrangling components are **transducers** whose
//! input dependencies are Datalog queries over a shared **knowledge
//! base**; a **network transducer** dynamically orchestrates whichever
//! components have the data they need; and everything the user supplies —
//! a target schema, **data context** (reference/master/example data),
//! **feedback** annotations, or a pairwise-comparison **user context** —
//! immediately re-opens the relevant parts of the pipeline and improves
//! the result.
//!
//! ```no_run
//! use vada::Wrangler;
//! use vada_common::{csv, Schema};
//!
//! let mut w = Wrangler::new();
//! w.add_source(csv::read_relation(
//!     "price,street\n250000,12 high st\n",
//!     Schema::all_str("rightmove", &["price", "street"]),
//! ).unwrap());
//! w.set_target(Schema::all_str("property", &["street", "price"]));
//! w.run().unwrap();
//! println!("{}", w.result().unwrap().to_table(10));
//! ```
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`vada_common`] | values, schemas, relations, CSV, text similarity |
//! | [`vada_datalog`] | the Vadalog-style Datalog± reasoner |
//! | [`vada_kb`] | the knowledge base (catalog + metadata + fact view) |
//! | [`vada_context`] | AHP user context, data-context analysis |
//! | [`vada_extract`] | extraction simulator, scenario generator, oracle |
//! | [`vada_match`] | schema & instance matching |
//! | [`vada_map`] | mapping generation / execution / selection |
//! | [`vada_quality`] | CFD learning, violations, repair, metrics |
//! | [`vada_fusion`] | duplicate detection & fusion |
//! | [`vada_core`] | transducers, orchestration, the [`Wrangler`] facade |

pub use vada_core::*;

// Re-export the component crates so downstream users need only one
// dependency.
pub use vada_common;
pub use vada_context;
pub use vada_datalog;
pub use vada_extract;
pub use vada_fusion;
pub use vada_kb;
pub use vada_map;
pub use vada_match;
pub use vada_quality;
