//! # vada-map
//!
//! The **Mapping activity** (paper Table 1): schema mappings in VADA are
//! Vadalog programs (paper §2, the mapping role of the reasoner). This
//! crate:
//!
//! * [`generate`] — turns the matches in the knowledge base into candidate
//!   mapping programs: per-source projections, unions over primary
//!   sources, and (left-outer) joins with augmenting sources such as the
//!   deprivation table, via the postcode-district transformation;
//! * [`execute`] — runs a mapping through the Datalog engine against the
//!   source relations and coerces the answers into the typed target schema
//!   (this is where `£250,000`-style format drift is normalised);
//! * [`select`] — ranks candidates by weighted utility over their quality
//!   metrics, with weights from the AHP user context (paper §2.2/Fig 3(d)
//!   "mapping selection based on multi-dimensional optimisation").

pub mod execute;
pub mod generate;
pub mod incremental;
pub mod select;

pub use execute::{execute_mapping, execute_mapping_cached, execute_mapping_with, ExecuteConfig};
pub use vada_datalog::cache::IndexCache;
pub use generate::{generate_candidates, MapGenConfig};
pub use incremental::{ExecutorStats, IncrementalExecutor};
pub use select::{rank_mappings, MappingScore};
