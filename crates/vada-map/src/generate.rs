//! Candidate mapping generation from matches.
//!
//! Sources are classified as **primary** (their matches cover enough of
//! the target schema to stand alone — the listing sources) or
//! **augmenting** (they share a join key with the target and contribute
//! extra attributes — the deprivation table). Candidates are the cross
//! product of {each primary, the union of all primaries} × {without /
//! with all augmenting joins}; joins are left-outer so augmentation never
//! loses rows.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use vada_common::idgen::IdGen;
use vada_common::{Result, Schema, VadaError};
use vada_kb::{KnowledgeBase, MappingDef, MatchDef};

static MAPPING_IDS: IdGen = IdGen::new("map");

/// Generation configuration.
#[derive(Debug, Clone)]
pub struct MapGenConfig {
    /// Minimum match score to use a correspondence in a mapping.
    pub match_threshold: f64,
    /// A source whose matches cover at least this many target attributes
    /// is primary.
    pub primary_min_attrs: usize,
    /// Join augmenting sources through the postcode→district
    /// transformation (the scenario's deprivation table is district-keyed).
    pub district_join: bool,
    /// The target attribute acting as join key for augmentation.
    pub join_key: String,
}

impl Default for MapGenConfig {
    fn default() -> Self {
        MapGenConfig {
            match_threshold: 0.5,
            primary_min_attrs: 3,
            district_join: true,
            join_key: "postcode".into(),
        }
    }
}

/// The best match per (source, target attribute) above the threshold.
fn best_matches(
    kb: &KnowledgeBase,
    threshold: f64,
) -> BTreeMap<String, BTreeMap<String, MatchDef>> {
    let mut out: BTreeMap<String, BTreeMap<String, MatchDef>> = BTreeMap::new();
    for m in kb.matches() {
        if m.score < threshold {
            continue;
        }
        let per_source = out.entry(m.src_rel.clone()).or_default();
        match per_source.get(&m.tgt_attr) {
            Some(prev) if prev.score >= m.score => {}
            _ => {
                per_source.insert(m.tgt_attr.clone(), m.clone());
            }
        }
    }
    out
}

struct SourceRole<'a> {
    name: String,
    schema: &'a Schema,
    /// target attr → match
    matches: BTreeMap<String, MatchDef>,
}

/// Emit the body atom for a source with fresh variables `prefix0..n`;
/// returns `(atom text, target attr → variable name)`.
fn source_atom(role: &SourceRole, prefix: &str) -> (String, BTreeMap<String, String>) {
    let vars: Vec<String> = (0..role.schema.arity()).map(|i| format!("{prefix}{i}")).collect();
    let atom = format!("{}({})", role.name, vars.join(", "));
    let mut var_of_target = BTreeMap::new();
    for (tgt, m) in &role.matches {
        if let Some(idx) = role.schema.index_of(&m.src_attr) {
            var_of_target.insert(tgt.clone(), vars[idx].clone());
        }
    }
    (atom, var_of_target)
}

/// Build the rules for one primary source, optionally augmented.
fn rules_for_primary(
    cfg: &MapGenConfig,
    target: &Schema,
    primary: &SourceRole,
    augmenting: &[&SourceRole],
) -> Result<String> {
    let (p_atom, p_vars) = source_atom(primary, "S");
    let mut rules = String::new();

    if augmenting.is_empty() {
        let head_args: Vec<String> = target
            .attr_names()
            .iter()
            .map(|a| p_vars.get(*a).cloned().unwrap_or_else(|| "null".into()))
            .collect();
        writeln!(rules, "{}({}) :- {}.", target.name, head_args.join(", "), p_atom)
            .expect("string write");
        return Ok(rules);
    }

    // with augmentation: a matched rule plus a null-padded complement rule
    // per augmenting source (left outer join). We support one augmenting
    // source per join for clarity; several augmentations compose by
    // sequential application in candidate enumeration.
    let aug = augmenting[0];
    let Some(key_var) = p_vars.get(&cfg.join_key) else {
        return Err(VadaError::Other(format!(
            "primary source `{}` has no match for join key `{}`",
            primary.name, cfg.join_key
        )));
    };
    let (a_atom, a_vars) = source_atom(aug, "A");
    let Some(a_key_var) = a_vars.get(&cfg.join_key) else {
        return Err(VadaError::Other(format!(
            "augmenting source `{}` has no match for join key `{}`",
            aug.name, cfg.join_key
        )));
    };

    // join condition: either direct key equality or via district facts
    let join_cond = if cfg.district_join {
        format!("postcode_district({key_var}, {a_key_var})")
    } else {
        format!("{a_key_var} = {key_var}")
    };

    let head_args_joined: Vec<String> = target
        .attr_names()
        .iter()
        .map(|a| {
            p_vars
                .get(*a)
                .or_else(|| a_vars.get(*a))
                .cloned()
                .unwrap_or_else(|| "null".into())
        })
        .collect();
    writeln!(
        rules,
        "{}({}) :- {}, {}, {}.",
        target.name,
        head_args_joined.join(", "),
        p_atom,
        join_cond,
        a_atom
    )
    .expect("string write");

    // complement: rows with no augmentation partner keep nulls
    let has_pred = format!("aux_has_{}_{}", aug.name, primary.name);
    let head_args_plain: Vec<String> = target
        .attr_names()
        .iter()
        .map(|a| p_vars.get(*a).cloned().unwrap_or_else(|| "null".into()))
        .collect();
    writeln!(
        rules,
        "{}({}) :- {}, not {}({}).",
        target.name,
        head_args_plain.join(", "),
        p_atom,
        has_pred,
        key_var
    )
    .expect("string write");
    if cfg.district_join {
        writeln!(
            rules,
            "{has_pred}(PC) :- postcode_district(PC, D), {}.",
            replace_var(&a_atom, a_key_var, "D")
        )
        .expect("string write");
    } else {
        writeln!(
            rules,
            "{has_pred}({a_key_var}) :- {a_atom}.",
        )
        .expect("string write");
    }
    Ok(rules)
}

/// Replace a variable name inside a rendered atom (used to re-key the
/// augmenting atom in the helper rule).
fn replace_var(atom: &str, from: &str, to: &str) -> String {
    // variables are comma/paren delimited; do a token-boundary replace
    let mut out = String::with_capacity(atom.len());
    let mut token = String::new();
    for c in atom.chars() {
        if c.is_alphanumeric() || c == '_' {
            token.push(c);
        } else {
            if token == from {
                out.push_str(to);
            } else {
                out.push_str(&token);
            }
            token.clear();
            out.push(c);
        }
    }
    if token == from {
        out.push_str(to);
    } else {
        out.push_str(&token);
    }
    out
}

/// Generate candidate mappings from the knowledge base's matches.
pub fn generate_candidates(cfg: &MapGenConfig, kb: &KnowledgeBase) -> Result<Vec<MappingDef>> {
    let target = kb
        .target_schema()
        .ok_or_else(|| VadaError::Kb("no target schema registered".into()))?
        .clone();
    let by_source = best_matches(kb, cfg.match_threshold);

    let mut primaries: Vec<SourceRole> = Vec::new();
    let mut augmenting: Vec<SourceRole> = Vec::new();
    for (source, matches) in by_source {
        let Ok(rel) = kb.relation(&source) else { continue };
        let role = SourceRole { name: source.clone(), schema: rel.schema(), matches };
        // classify on *distinct source attributes* covered: a two-column
        // table can never stand alone for a wide target, even if one of
        // its columns spuriously matches several target attributes
        let distinct_src: std::collections::HashSet<&str> =
            role.matches.values().map(|m| m.src_attr.as_str()).collect();
        if distinct_src.len() >= cfg.primary_min_attrs {
            primaries.push(role);
        } else if role.matches.contains_key(&cfg.join_key) && role.matches.len() >= 2 {
            augmenting.push(role);
        }
    }
    if primaries.is_empty() {
        return Err(VadaError::Other(
            "no primary source: matches cover too little of the target schema".into(),
        ));
    }

    // candidate shapes: each primary alone, plus the union of all primaries
    let mut shapes: Vec<Vec<&SourceRole>> = primaries.iter().map(|p| vec![p]).collect();
    if primaries.len() > 1 {
        shapes.push(primaries.iter().collect());
    }

    let aug_options: Vec<Vec<&SourceRole>> = if augmenting.is_empty() {
        vec![vec![]]
    } else {
        vec![vec![], augmenting.iter().collect()]
    };

    let mut out = Vec::new();
    for shape in &shapes {
        for augs in &aug_options {
            let mut rules = String::new();
            let mut matches_used = Vec::new();
            let mut sources = Vec::new();
            let mut ok = true;
            for p in shape {
                match rules_for_primary(cfg, &target, p, augs) {
                    Ok(r) => rules.push_str(&r),
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
                sources.push(p.name.clone());
                matches_used.extend(p.matches.values().map(|m| m.id.clone()));
            }
            if !ok {
                continue;
            }
            for a in augs {
                sources.push(a.name.clone());
                matches_used.extend(a.matches.values().map(|m| m.id.clone()));
            }
            matches_used.sort();
            matches_used.dedup();
            out.push(MappingDef {
                id: MAPPING_IDS.next_id(),
                target: target.name.clone(),
                rules,
                sources,
                matches_used,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::{tuple, AttrType, Relation};
    use vada_kb::MatchDef;

    fn kb_with_matches() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        let mut rm = Relation::empty(Schema::all_str(
            "rightmove",
            &["price", "street", "postcode", "bedrooms", "type", "description"],
        ));
        rm.push(tuple!["250000", "12 high st", "M1 1AA", "3", "flat", "desc"]).unwrap();
        kb.register_source(rm);
        let mut dep = Relation::empty(Schema::all_str("deprivation", &["postcode", "crime"]));
        dep.push(tuple!["M1", "500"]).unwrap();
        kb.register_source(dep);
        kb.register_target_schema(
            Schema::new(
                "property",
                [
                    ("type", AttrType::Str),
                    ("street", AttrType::Str),
                    ("postcode", AttrType::Str),
                    ("price", AttrType::Int),
                    ("crimerank", AttrType::Int),
                ],
            )
            .unwrap(),
        );
        let mut add = |id: &str, rel: &str, src: &str, tgt: &str, score: f64| {
            kb.add_match(MatchDef {
                id: id.into(),
                src_rel: rel.into(),
                src_attr: src.into(),
                tgt_attr: tgt.into(),
                score,
                matcher: "schema".into(),
            });
        };
        add("m0", "rightmove", "type", "type", 1.0);
        add("m1", "rightmove", "street", "street", 1.0);
        add("m2", "rightmove", "postcode", "postcode", 1.0);
        add("m3", "rightmove", "price", "price", 1.0);
        add("m4", "deprivation", "postcode", "postcode", 0.9);
        add("m5", "deprivation", "crime", "crimerank", 0.9);
        kb
    }

    #[test]
    fn generates_plain_and_augmented_candidates() {
        let kb = kb_with_matches();
        let cands = generate_candidates(&MapGenConfig::default(), &kb).unwrap();
        // one primary × {no aug, aug}
        assert_eq!(cands.len(), 2);
        let plain = &cands[0];
        assert_eq!(plain.sources, vec!["rightmove"]);
        assert!(plain.rules.contains("property("));
        assert!(plain.rules.contains("null"));
        let aug = &cands[1];
        assert!(aug.sources.contains(&"deprivation".to_string()));
        assert!(aug.rules.contains("postcode_district"));
        assert!(aug.rules.contains("not aux_has_deprivation_rightmove"));
    }

    #[test]
    fn generated_rules_parse() {
        let kb = kb_with_matches();
        for cand in generate_candidates(&MapGenConfig::default(), &kb).unwrap() {
            vada_datalog::parse_program(&cand.rules)
                .unwrap_or_else(|e| panic!("rules do not parse: {e}\n{}", cand.rules));
        }
    }

    #[test]
    fn low_scores_are_ignored() {
        let mut kb = kb_with_matches();
        kb.add_match(MatchDef {
            id: "bad".into(),
            src_rel: "rightmove".into(),
            src_attr: "description".into(),
            tgt_attr: "crimerank".into(),
            score: 0.1,
            matcher: "schema".into(),
        });
        let cands = generate_candidates(&MapGenConfig::default(), &kb).unwrap();
        assert!(!cands[0].matches_used.contains(&"bad".to_string()));
    }

    #[test]
    fn no_primary_errors() {
        let mut kb = KnowledgeBase::new();
        kb.register_target_schema(Schema::all_str("t", &["a", "b", "c", "d"]));
        let mut s = Relation::empty(Schema::all_str("s", &["x"]));
        s.push(tuple!["v"]).unwrap();
        kb.register_source(s);
        kb.add_match(MatchDef {
            id: "m".into(),
            src_rel: "s".into(),
            src_attr: "x".into(),
            tgt_attr: "a".into(),
            score: 0.9,
            matcher: "schema".into(),
        });
        assert!(generate_candidates(&MapGenConfig::default(), &kb).is_err());
    }

    #[test]
    fn replace_var_respects_token_boundaries() {
        assert_eq!(replace_var("d(A0, A01)", "A0", "D"), "d(D, A01)");
        assert_eq!(replace_var("d(A0)", "A0", "D"), "d(D)");
    }

    #[test]
    fn union_candidate_when_two_primaries() {
        let mut kb = kb_with_matches();
        let mut otm = Relation::empty(Schema::all_str(
            "onthemarket",
            &["asking_price", "street_name", "post_code"],
        ));
        otm.push(tuple!["300000", "9 park rd", "EH1 1AA"]).unwrap();
        kb.register_source(otm);
        for (id, src, tgt) in [
            ("o0", "asking_price", "price"),
            ("o1", "street_name", "street"),
            ("o2", "post_code", "postcode"),
        ] {
            kb.add_match(MatchDef {
                id: id.into(),
                src_rel: "onthemarket".into(),
                src_attr: src.into(),
                tgt_attr: tgt.into(),
                score: 0.9,
                matcher: "schema".into(),
            });
        }
        let cands = generate_candidates(&MapGenConfig::default(), &kb).unwrap();
        // {rm, otm, rm∪otm} × {plain, aug}
        assert_eq!(cands.len(), 6);
        let union = cands
            .iter()
            .find(|c| c.sources.contains(&"rightmove".into()) && c.sources.contains(&"onthemarket".into()))
            .unwrap();
        // union rules contain two rules for the target head
        assert!(union.rules.matches("property(").count() >= 2);
    }
}
