//! Mapping execution: run the Vadalog program against the source
//! relations and coerce the answers into the typed target schema.

use vada_common::obs::{key as obs_key, Obs};
use vada_common::{
    par, AttrType, Parallelism, QueryCaching, Relation, Result, Schema, Sharding, Tuple,
    VadaError, Value,
};
use vada_datalog::ast::{Atom, HeadTerm, Literal, Rule, Term};
use vada_datalog::cache::IndexCache;
use vada_datalog::engine::{Database, Engine, EngineConfig};
use vada_datalog::parse_program;
use vada_kb::{KnowledgeBase, MappingDef, ShardedStore};

/// Execution configuration.
#[derive(Debug, Clone, Default)]
pub struct ExecuteConfig {
    /// Engine limits.
    pub engine: EngineConfig,
    /// Sharding level for the input-database construction: the extensional
    /// load and the `postcode_district` helper scan run per shard and merge
    /// back in canonical row order, so the execution result is byte-identical
    /// at any shard count. Defaults to the `VADA_SHARDS` override.
    pub sharding: Sharding,
    /// Whether a directed one-shot execution probes a caller-held
    /// [`IndexCache`] (see [`execute_mapping_cached`]) instead of building
    /// per-run indexes. Defaults to the `VADA_QUERY_CACHE` override.
    pub query_caching: QueryCaching,
}

/// Extract the outward code (district) of a postcode-shaped string.
pub(crate) fn district_of(postcode: &str) -> Option<&str> {
    let outward = postcode.split_whitespace().next()?;
    let has_alpha = outward.chars().any(|c| c.is_ascii_alphabetic());
    let has_digit = outward.chars().any(|c| c.is_ascii_digit());
    (has_alpha && has_digit).then_some(outward)
}

/// Normalise a raw extracted value into the target attribute type.
/// Currency symbols and thousands separators are stripped for numeric
/// targets; unparseable values become null (the defect stays visible as
/// missing data rather than corrupt data).
pub fn coerce_value(v: &Value, ty: AttrType) -> Value {
    if v.is_null() {
        return Value::Null;
    }
    match ty {
        AttrType::Str => Value::str(v.to_string()),
        AttrType::Int | AttrType::Float => {
            let direct = v.coerce(ty);
            if let Ok(x) = direct {
                return x;
            }
            if let Value::Str(s) = v {
                let cleaned: String = s
                    .chars()
                    .filter(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
                    .collect();
                if !cleaned.is_empty() {
                    if let Ok(parsed) = Value::parse_as(&cleaned, ty) {
                        return parsed;
                    }
                    // ints rendered with decimals, e.g. "250000.0"
                    if ty == AttrType::Int {
                        if let Ok(f) = cleaned.parse::<f64>() {
                            if f.fract() == 0.0 {
                                return Value::Int(f as i64);
                            }
                        }
                    }
                }
            }
            Value::Null
        }
        AttrType::Bool => v.coerce(AttrType::Bool).unwrap_or(Value::Null),
    }
}

/// The `postcode_district(full, district)` helper facts one row
/// contributes, in value order. The single definition of the helper-fact
/// condition: the incremental delta planner must mirror the scratch input
/// construction exactly, so both paths call this.
pub(crate) fn district_facts(row: &Tuple) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for v in row.iter() {
        if let Value::Str(s) = v {
            if let Some(d) = district_of(s) {
                if s.contains(' ') {
                    out.push((s.to_string(), d.to_string()));
                }
            }
        }
    }
    out
}

/// Build the execution database: the mapping's source relations plus
/// `postcode_district(full, district)` helper facts derived from every
/// postcode-shaped value in those relations.
pub(crate) fn build_input_db(mapping: &MappingDef, kb: &KnowledgeBase) -> Result<Database> {
    let mut db = Database::new();
    for source in &mapping.sources {
        let rel = kb.relation(source)?;
        db.insert_relation(rel);
        for t in rel.iter() {
            for (full, district) in district_facts(t) {
                db.insert(
                    "postcode_district",
                    Tuple::new(vec![Value::str(full), Value::str(district)]),
                );
            }
        }
    }
    Ok(db)
}

/// [`build_input_db`] over sharded scans: the extensional rows load via the
/// engine's per-shard load, and the `postcode_district` helper scan — the
/// expensive per-row string analysis — runs one scheduling unit per shard
/// of the [`ShardedStore`]'s journal-synced views, merged back to canonical
/// row order before insertion. The resulting database (facts *and*
/// insertion order) is byte-identical to the monolithic build.
///
/// Callers that execute repeatedly pass their persistent `store` so the
/// views sync O(change) from the delta journal between runs; `None` builds
/// an ephemeral store (one repartition, no reuse).
pub(crate) fn build_input_db_with(
    mapping: &MappingDef,
    kb: &KnowledgeBase,
    sharding: Sharding,
    parallelism: Parallelism,
    obs: &Obs,
    store: Option<&mut ShardedStore>,
) -> Result<Database> {
    if !sharding.is_sharded() {
        return build_input_db(mapping, kb);
    }
    let mut ephemeral;
    let store = match store {
        Some(s) => s,
        None => {
            ephemeral = ShardedStore::new(sharding);
            &mut ephemeral
        }
    };
    store.set_parallelism(parallelism);
    store.set_obs(obs.clone());
    // only the mapping's sources are scanned here, so the store never pays
    // to partition results or intermediates (scope only grows, so a store
    // shared across mappings keeps every source it ever scanned synced)
    store.add_scope(mapping.sources.iter().cloned());
    store.sync(kb)?;
    let mut db = Database::new();
    for source in &mapping.sources {
        // one per-shard scan yields both the extensional rows and the
        // postcode_district helper facts; the ordered merge restores
        // canonical row order, so the database is byte-identical to the
        // monolithic build
        let view = store
            .view(source)
            .ok_or_else(|| VadaError::Kb(format!("no sharded view for `{source}`")))?;
        let per_shard = par::par_shards_obs(
            obs,
            parallelism,
            "map/shard_input_scan",
            view.shard_count(),
            |s| {
                Ok(view
                    .shard(s)
                    .iter()
                    .map(|t| (t.clone(), district_facts(t)))
                    .collect::<Vec<_>>())
            },
        )?;
        for (row, row_facts) in view.merge_scan(per_shard) {
            db.insert(source, row);
            for (full, district) in row_facts {
                db.insert(
                    "postcode_district",
                    Tuple::new(vec![Value::str(full), Value::str(district)]),
                );
            }
        }
    }
    Ok(db)
}

/// Execute a mapping and return the result in the target schema.
pub fn execute_mapping(
    cfg: &ExecuteConfig,
    mapping: &MappingDef,
    kb: &KnowledgeBase,
) -> Result<Relation> {
    execute_mapping_with(cfg, mapping, kb, None)
}

/// [`execute_mapping`] with an optional persistent [`ShardedStore`]: under
/// [`Sharding::Shards`] the input database is built from per-shard scans
/// of the store's journal-synced views (see [`build_input_db_with`]); the
/// result is byte-identical either way.
pub fn execute_mapping_with(
    cfg: &ExecuteConfig,
    mapping: &MappingDef,
    kb: &KnowledgeBase,
    store: Option<&mut ShardedStore>,
) -> Result<Relation> {
    execute_mapping_impl(cfg, mapping, kb, store, None)
}

/// [`execute_mapping_with`] with a caller-held persistent [`IndexCache`]:
/// under [`ExecuteConfig::query_caching`] + directed mode the demanded
/// run's hash indexes survive into the next call instead of dying with it.
/// The cache is validated against the knowledge base's journal identity —
/// indexes are reused only at an unchanged `(lineage, version)`, where the
/// input database this call builds is byte-identical to the one they
/// cover; any other identity drops them (`magic.cache.*` counters record
/// the outcome). The result is byte-identical to the uncached call.
pub fn execute_mapping_cached(
    cfg: &ExecuteConfig,
    mapping: &MappingDef,
    kb: &KnowledgeBase,
    store: Option<&mut ShardedStore>,
    cache: &mut IndexCache,
) -> Result<Relation> {
    execute_mapping_impl(cfg, mapping, kb, store, Some(cache))
}

fn execute_mapping_impl(
    cfg: &ExecuteConfig,
    mapping: &MappingDef,
    kb: &KnowledgeBase,
    store: Option<&mut ShardedStore>,
    cache: Option<&mut IndexCache>,
) -> Result<Relation> {
    let target: &Schema = kb
        .target_schema()
        .ok_or_else(|| VadaError::Kb("no target schema registered".into()))?;
    if target.name != mapping.target {
        return Err(VadaError::Kb(format!(
            "mapping `{}` targets `{}` but the registered target is `{}`",
            mapping.id, mapping.target, target.name
        )));
    }
    let program = parse_program(&mapping.rules)?;
    cfg.engine.obs.incr(obs_key::MAP_FULL);
    // wraps input build + engine run: the shard scans and the engine's
    // stratum spans nest underneath
    let span = cfg.engine.obs.span("map/execute");
    span.attr("mapping", &mapping.id);
    span.attr("target", &mapping.target);
    let input = build_input_db_with(
        mapping,
        kb,
        cfg.sharding,
        cfg.engine.parallelism,
        &cfg.engine.obs,
        store,
    )?;
    let engine = Engine::new(cfg.engine.clone());
    // A mapping run demands its *entire* target relation — an all-free
    // access pattern — so under QueryMode::Directed the magic rewrite
    // resolves to the identity program and the demanded fixpoint equals
    // the full one; routing through run_directed keeps the knob live
    // end-to-end while the result stays byte-identical by construction.
    let output = if cfg.engine.query_mode.is_directed() {
        let query = all_free_query(&target.name, target.arity());
        match cache {
            // the cache only pays off (and is only sound to consult) on
            // the directed path with the knob on; the `ensure` key pins
            // reuse to an input database byte-identical to the one the
            // surviving indexes were built over
            Some(cache) if cfg.query_caching.is_enabled() => {
                let warm = cache.ensure(kb.journal().lineage(), kb.version());
                cfg.engine.obs.incr(if warm {
                    obs_key::MAGIC_CACHE_HITS
                } else {
                    obs_key::MAGIC_CACHE_MISSES
                });
                engine.run_directed_cached(&program, input, &query, cache)?
            }
            _ => engine.run_directed(&program, input, &query)?,
        }
    } else {
        engine.run(&program, input)?
    };

    let mut rel = Relation::empty(target.clone());
    for t in output.facts(&target.name) {
        rel.push(coerce_fact(t, target, &mapping.id)?)?;
    }
    Ok(rel)
}

/// The query "every row of `pred`": one positive atom with `arity`
/// distinct free variables. This is the access pattern a mapping
/// materialization has — no bound arguments anywhere — which the demand
/// analysis rewrites to the identity program.
fn all_free_query(pred: &str, arity: usize) -> Rule {
    let names: Vec<String> = (0..arity).map(|i| format!("C{i}")).collect();
    let terms: Vec<Term> =
        names.iter().enumerate().map(|(i, n)| Term::Var(i, n.clone())).collect();
    Rule {
        head_pred: "__query".into(),
        head_terms: terms.iter().map(|t| HeadTerm::Term(t.clone())).collect(),
        body: vec![Literal::Pos(Atom { pred: pred.to_string(), terms })],
        var_count: arity,
        var_names: names,
    }
}

/// Coerce one derived target fact into the typed target schema, shared by
/// the from-scratch and incremental execution paths.
pub(crate) fn coerce_fact(t: &Tuple, target: &Schema, mapping_id: &str) -> Result<Tuple> {
    if t.arity() != target.arity() {
        return Err(VadaError::Eval(format!(
            "mapping `{mapping_id}` produced arity {} for target arity {}",
            t.arity(),
            target.arity()
        )));
    }
    Ok(Tuple::new(
        t.iter()
            .zip(target.attributes())
            .map(|(v, a)| coerce_value(v, a.ty))
            .collect::<Vec<Value>>(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::tuple;

    fn kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        let mut rm = Relation::empty(Schema::all_str(
            "rightmove",
            &["price", "street", "postcode"],
        ));
        rm.push(tuple!["£250,000", "12 high st", "M1 1AA"]).unwrap();
        rm.push(tuple!["300000", "9 park rd", "EH1 1AA"]).unwrap();
        rm.push(Tuple::new(vec![Value::str("bad price"), Value::str("1 mill ln"), Value::Null]))
            .unwrap();
        kb.register_source(rm);
        let mut dep = Relation::empty(Schema::all_str("deprivation", &["postcode", "crime"]));
        dep.push(tuple!["M1", "500"]).unwrap();
        kb.register_source(dep);
        kb.register_target_schema(
            Schema::new(
                "property",
                [
                    ("street", AttrType::Str),
                    ("postcode", AttrType::Str),
                    ("price", AttrType::Int),
                    ("crimerank", AttrType::Int),
                ],
            )
            .unwrap(),
        );
        kb
    }

    fn mapping(rules: &str, sources: &[&str]) -> MappingDef {
        MappingDef {
            id: "m".into(),
            target: "property".into(),
            rules: rules.into(),
            sources: sources.iter().map(|s| s.to_string()).collect(),
            matches_used: vec![],
        }
    }

    #[test]
    fn projection_mapping_coerces_types() {
        let m = mapping(
            "property(S, PC, P, null) :- rightmove(P, S, PC).",
            &["rightmove"],
        );
        let rel = execute_mapping(&ExecuteConfig::default(), &m, &kb()).unwrap();
        assert_eq!(rel.len(), 3);
        let by_street = |s: &str| {
            rel.iter()
                .find(|t| t[0] == Value::str(s))
                .cloned()
                .unwrap()
        };
        // pretty price parsed
        assert_eq!(by_street("12 high st")[2], Value::Int(250_000));
        // plain price parsed
        assert_eq!(by_street("9 park rd")[2], Value::Int(300_000));
        // unparseable price → null, not garbage
        assert!(by_street("1 mill ln")[2].is_null());
    }

    #[test]
    fn left_outer_district_join() {
        let rules = r#"
            property(S, PC, P, C) :- rightmove(P, S, PC), postcode_district(PC, D), deprivation(D, C).
            property(S, PC, P, null) :- rightmove(P, S, PC), not has_crime(PC).
            has_crime(PC) :- postcode_district(PC, D), deprivation(D, _).
        "#;
        let m = mapping(rules, &["rightmove", "deprivation"]);
        let rel = execute_mapping(&ExecuteConfig::default(), &m, &kb()).unwrap();
        let crime_of = |s: &str| {
            rel.iter()
                .find(|t| t[0] == Value::str(s))
                .map(|t| t[3].clone())
                .unwrap()
        };
        // M1 1AA matches deprivation M1
        assert_eq!(crime_of("12 high st"), Value::Int(500));
        // EH1 1AA has no deprivation row: kept with null crimerank
        assert!(crime_of("9 park rd").is_null());
        assert_eq!(rel.len(), 3);
    }

    #[test]
    fn wrong_target_rejected() {
        let m = MappingDef {
            id: "m".into(),
            target: "other".into(),
            rules: "other(X) :- rightmove(X, _, _).".into(),
            sources: vec!["rightmove".into()],
            matches_used: vec![],
        };
        assert!(execute_mapping(&ExecuteConfig::default(), &m, &kb()).is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let m = mapping("property(S) :- rightmove(_, S, _).", &["rightmove"]);
        assert!(execute_mapping(&ExecuteConfig::default(), &m, &kb()).is_err());
    }

    #[test]
    fn coerce_value_cases() {
        assert_eq!(coerce_value(&Value::str("£1,250"), AttrType::Int), Value::Int(1250));
        assert_eq!(coerce_value(&Value::str("3"), AttrType::Int), Value::Int(3));
        assert_eq!(coerce_value(&Value::str("x"), AttrType::Int), Value::Null);
        assert_eq!(coerce_value(&Value::Null, AttrType::Int), Value::Null);
        assert_eq!(coerce_value(&Value::Int(5), AttrType::Str), Value::str("5"));
        assert_eq!(
            coerce_value(&Value::str("2.5"), AttrType::Float),
            Value::Float(2.5)
        );
    }

    #[test]
    fn cached_directed_execution_matches_and_reuses_indexes() {
        use vada_common::QueryMode;

        let rules = r#"
            property(S, PC, P, C) :- rightmove(P, S, PC), postcode_district(PC, D), deprivation(D, C).
            property(S, PC, P, null) :- rightmove(P, S, PC), not has_crime(PC).
            has_crime(PC) :- postcode_district(PC, D), deprivation(D, _).
        "#;
        let m = mapping(rules, &["rightmove", "deprivation"]);
        let mut kb = kb();
        let obs = Obs::enabled();
        let mut cfg = ExecuteConfig {
            query_caching: QueryCaching::Persistent,
            ..ExecuteConfig::default()
        };
        cfg.engine.query_mode = QueryMode::Directed;
        cfg.engine.obs = obs.clone();
        let mut cache = IndexCache::new();

        let cold = execute_mapping_cached(&cfg, &m, &kb, None, &mut cache).unwrap();
        assert_eq!(obs.get(obs_key::MAGIC_CACHE_MISSES), 1);
        let builds_after_cold = obs.get(obs_key::INDEX_BUILDS);

        // unchanged kb: warm reuse, byte-identical result, zero new builds
        let warm = execute_mapping_cached(&cfg, &m, &kb, None, &mut cache).unwrap();
        assert_eq!(warm.tuples(), cold.tuples());
        assert_eq!(obs.get(obs_key::MAGIC_CACHE_HITS), 1);
        assert_eq!(obs.get(obs_key::INDEX_BUILDS), builds_after_cold);

        // a kb edit changes the journal identity: the cache is dropped and
        // the run matches the uncached path on the new state
        let mut grown = kb.relation("deprivation").unwrap().clone();
        grown.push(tuple!["EH1", "900"]).unwrap();
        kb.register_source(grown);
        let edited = execute_mapping_cached(&cfg, &m, &kb, None, &mut cache).unwrap();
        assert_eq!(obs.get(obs_key::MAGIC_CACHE_MISSES), 2);
        let plain = execute_mapping_with(&cfg, &m, &kb, None).unwrap();
        assert_eq!(edited.tuples(), plain.tuples());
    }

    #[test]
    fn district_of_shapes() {
        assert_eq!(district_of("M13 9PL"), Some("M13"));
        assert_eq!(district_of("EH8 9AB"), Some("EH8"));
        assert_eq!(district_of("hello world"), None);
        assert_eq!(district_of(""), None);
    }
}
