//! Mapping selection: weighted utility over quality metrics, with AHP
//! weights from the user context (paper §3 step 4: "pairwise comparisons
//! are used to derive weights that inform the selection of mappings based
//! on multi-dimensional optimization").

use std::collections::HashMap;

use vada_context::{Criterion, UserContext};

/// A candidate mapping with its per-criterion quality scores.
#[derive(Debug, Clone)]
pub struct MappingScore {
    /// Mapping id.
    pub mapping_id: String,
    /// Criterion (as `metric(scope)` strings) → score in `[0, 1]`.
    pub scores: HashMap<String, f64>,
}

impl MappingScore {
    /// Build from criterion/score pairs.
    pub fn new(mapping_id: impl Into<String>, scores: &[(&str, f64)]) -> MappingScore {
        MappingScore {
            mapping_id: mapping_id.into(),
            scores: scores.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }
}

/// Rank candidates by weighted utility under the user context, best first.
/// Ties break on mapping id for determinism. Returns `(id, utility)`.
pub fn rank_mappings(
    candidates: &[MappingScore],
    ctx: &UserContext,
) -> Vec<(String, f64)> {
    let mut ranked: Vec<(String, f64)> = candidates
        .iter()
        .map(|c| {
            let u = ctx.utility(|criterion: &Criterion| {
                c.scores.get(&criterion.to_string()).copied()
            });
            (c.mapping_id.clone(), u)
        })
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_context::UserContext;
    use vada_kb::PairwiseStatement;

    fn crime_heavy_context() -> UserContext {
        UserContext::derive(
            &[PairwiseStatement {
                more_important: "completeness(crimerank)".into(),
                less_important: "completeness(bedrooms)".into(),
                strength: "very strongly".into(),
            }],
            &[],
        )
        .unwrap()
    }

    #[test]
    fn context_drives_the_winner() {
        // candidate A: great crimerank completeness, poor bedrooms
        // candidate B: the reverse
        let cands = vec![
            MappingScore::new(
                "mapA",
                &[("completeness(crimerank)", 0.9), ("completeness(bedrooms)", 0.2)],
            ),
            MappingScore::new(
                "mapB",
                &[("completeness(crimerank)", 0.2), ("completeness(bedrooms)", 0.9)],
            ),
        ];
        let crime_ranked = rank_mappings(&cands, &crime_heavy_context());
        assert_eq!(crime_ranked[0].0, "mapA");

        // flip the context: bedrooms now dominate (paper §2.2's size analysis)
        let size_ctx = UserContext::derive(
            &[PairwiseStatement {
                more_important: "completeness(bedrooms)".into(),
                less_important: "completeness(crimerank)".into(),
                strength: "very strongly".into(),
            }],
            &[],
        )
        .unwrap();
        let size_ranked = rank_mappings(&cands, &size_ctx);
        assert_eq!(size_ranked[0].0, "mapB");
    }

    #[test]
    fn missing_scores_count_as_zero() {
        let cands = vec![
            MappingScore::new("full", &[("completeness(crimerank)", 0.5), ("completeness(bedrooms)", 0.5)]),
            MappingScore::new("partial", &[("completeness(crimerank)", 0.5)]),
        ];
        let ranked = rank_mappings(&cands, &crime_heavy_context());
        assert_eq!(ranked[0].0, "full");
    }

    #[test]
    fn ties_break_deterministically() {
        let cands = vec![
            MappingScore::new("b", &[("completeness(crimerank)", 0.5)]),
            MappingScore::new("a", &[("completeness(crimerank)", 0.5)]),
        ];
        let ranked = rank_mappings(&cands, &crime_heavy_context());
        assert_eq!(ranked[0].0, "a");
    }

    #[test]
    fn utilities_bounded_by_weights() {
        let cands = vec![MappingScore::new(
            "m",
            &[("completeness(crimerank)", 1.0), ("completeness(bedrooms)", 1.0)],
        )];
        let ranked = rank_mappings(&cands, &crime_heavy_context());
        assert!(ranked[0].1 <= 1.0 + 1e-9);
        assert!(ranked[0].1 > 0.99);
    }
}
