//! Incremental mapping execution: the bridge between the knowledge-base
//! [delta journal](vada_kb::DeltaJournal) and the Datalog engine's
//! [`IncrementalSession`].
//!
//! An [`IncrementalExecutor`] keeps one session per *structurally
//! distinct* mapping (fingerprinted by rules, source list and target
//! schema — mapping ids regenerate on every generation pass, the
//! structure usually does not). On re-execution it reads the journal
//! entries since its last run; when every relevant entry is a monotone
//! row append it feeds just those rows (plus the derived
//! `postcode_district` helper facts) through the session's semi-naive
//! fast path, so the derivation work is O(rows added), not O(sources).
//! Anything else — a replaced source, a stale journal window, a schema
//! change, a helper fact whose scratch position an append cannot
//! reproduce — rebuilds the input from the knowledge base and
//! re-materializes, keeping the output byte-identical to
//! [`execute_mapping`](crate::execute_mapping) in every case.
//!
//! ```
//! use vada_common::{tuple, AttrType, Relation, Schema};
//! use vada_kb::{KnowledgeBase, MappingDef};
//! use vada_map::{execute_mapping, ExecuteConfig, IncrementalExecutor};
//!
//! let mut kb = KnowledgeBase::new();
//! let mut src = Relation::empty(Schema::all_str("listings", &["street", "price"]));
//! src.push(tuple!["1 high st", "250000"]).unwrap();
//! kb.register_source(src.clone());
//! kb.register_target_schema(
//!     Schema::new("property", [("street", AttrType::Str), ("price", AttrType::Int)]).unwrap(),
//! );
//! let mapping = MappingDef {
//!     id: "m0".into(),
//!     target: "property".into(),
//!     rules: "property(S, P) :- listings(S, P).".into(),
//!     sources: vec!["listings".into()],
//!     matches_used: vec![],
//! };
//!
//! let mut exec = IncrementalExecutor::default();
//! let cfg = ExecuteConfig::default();
//! let first = exec.execute(&cfg, &mapping, &kb).unwrap();
//!
//! // append a row and re-execute: one delta fact through the fast path
//! src.push(tuple!["2 park rd", "300000"]).unwrap();
//! kb.register_source(src);
//! let second = exec.execute(&cfg, &mapping, &kb).unwrap();
//! assert_eq!(second.len(), 2);
//! assert_eq!(exec.stats().incremental_runs, 1);
//! // …and byte-identical to a from-scratch execution
//! assert_eq!(second.tuples(), execute_mapping(&cfg, &mapping, &kb).unwrap().tuples());
//! ```

use std::collections::{BTreeMap, HashMap};

use vada_common::{Relation, Result, Schema, Tuple, VadaError, Value};
use vada_datalog::incremental::{DeltaMode, IncrementalSession};
use vada_kb::{DeltaChange, DeltaEvent, KnowledgeBase, MappingDef};

use crate::execute::{build_input_db, coerce_fact, district_facts, ExecuteConfig};

/// Cap on retained sessions; the least recently used is evicted beyond it.
pub const DEFAULT_SESSION_CAPACITY: usize = 16;

/// Executor-level counters, for benches and the repro driver.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// From-scratch materializations: bootstraps, journal/session
    /// fallbacks, structural changes.
    pub full_runs: usize,
    /// Executions that went through the semi-naive fast path end to end.
    pub incremental_runs: usize,
    /// The most recent reason a fast path was refused, if any.
    pub last_fallback: Option<String>,
}

/// One persistent session plus the state needed to mirror the scratch
/// input construction and the coerced result incrementally.
#[derive(Debug)]
struct MappingSession {
    session: IncrementalSession,
    /// KB version consumed through (journal watermark).
    last_version: u64,
    /// Cached coerced result; extended in place on append-only deltas.
    result: Relation,
    /// Target facts already represented in `result`.
    target_facts: usize,
    /// Full postcode → index (into `mapping.sources`) of the source whose
    /// scan first contributes its `postcode_district` fact. The helper
    /// predicate is shared across sources, so whether an appended row's
    /// helper fact keeps (or can take) its scratch position depends on
    /// where earlier occurrences live — see `plan_delta`.
    districts: HashMap<String, usize>,
    /// Highest first-occurrence source index present in `districts`.
    max_district_source: usize,
}

/// A fleet of [`IncrementalSession`]s keyed by mapping structure. See the
/// module docs.
#[derive(Debug)]
pub struct IncrementalExecutor {
    sessions: BTreeMap<String, MappingSession>,
    /// Fingerprints in least→most recently used order.
    lru: Vec<String>,
    capacity: usize,
    stats: ExecutorStats,
}

impl Default for IncrementalExecutor {
    fn default() -> Self {
        IncrementalExecutor {
            sessions: BTreeMap::new(),
            lru: Vec::new(),
            capacity: DEFAULT_SESSION_CAPACITY,
            stats: ExecutorStats::default(),
        }
    }
}

/// The structural identity of a mapping execution: same fingerprint ⇒
/// same program, same input sources, same output typing.
fn fingerprint(mapping: &MappingDef, target: &Schema) -> String {
    let mut fp = String::new();
    fp.push_str(&target.name);
    for a in target.attributes() {
        fp.push_str(&format!("|{}:{}", a.name, a.ty.name()));
    }
    fp.push_str(&format!("|src={:?}|", mapping.sources));
    fp.push_str(&mapping.rules);
    fp
}

/// A vetted monotone delta: facts in scratch-input order plus the
/// helper-fact bookkeeping to persist once the apply succeeds.
struct PlannedDelta {
    facts: Vec<(String, Tuple)>,
    districts: HashMap<String, usize>,
    max_source: usize,
}

impl IncrementalExecutor {
    /// An executor retaining at most `capacity` sessions.
    pub fn with_capacity(capacity: usize) -> IncrementalExecutor {
        IncrementalExecutor { capacity: capacity.max(1), ..Default::default() }
    }

    /// Executor-level counters.
    pub fn stats(&self) -> &ExecutorStats {
        &self.stats
    }

    /// Execute `mapping`, incrementally when the journal proves the inputs
    /// only grew. The result is byte-identical to
    /// [`execute_mapping`](crate::execute_mapping) on the same knowledge
    /// base — including row order — in every case.
    pub fn execute(
        &mut self,
        cfg: &ExecuteConfig,
        mapping: &MappingDef,
        kb: &KnowledgeBase,
    ) -> Result<Relation> {
        let target: Schema = kb
            .target_schema()
            .ok_or_else(|| VadaError::Kb("no target schema registered".into()))?
            .clone();
        if target.name != mapping.target {
            return Err(VadaError::Kb(format!(
                "mapping `{}` targets `{}` but the registered target is `{}`",
                mapping.id, mapping.target, target.name
            )));
        }
        let fp = fingerprint(mapping, &target);
        self.lru.retain(|f| f != &fp);
        self.lru.push(fp.clone());

        if let Some(ms) = self.sessions.get_mut(&fp) {
            // adopt the current worker count: the orchestrator may have
            // re-broadcast since this session was bootstrapped (output is
            // level-invariant, only wall-clock changes)
            ms.session.set_parallelism(cfg.engine.parallelism);
            match self.plan_delta(&fp, mapping, kb) {
                Ok(plan) => {
                    let outcome = self.apply_delta(&fp, plan, mapping, &target, kb);
                    match outcome {
                        Ok(rel) => return Ok(rel),
                        Err(e) => {
                            // a failed apply leaves the session poisoned:
                            // drop it so the next execution rebuilds clean
                            self.sessions.remove(&fp);
                            self.lru.retain(|f| f != &fp);
                            return Err(e);
                        }
                    }
                }
                Err(reason) => {
                    self.stats.last_fallback = Some(reason);
                    self.sessions.remove(&fp);
                }
            }
        }
        self.bootstrap(&fp, cfg, mapping, &target, kb)
    }

    /// Decide whether the journal entries since the session's watermark
    /// form an order-safe monotone delta; returns the delta facts in
    /// scratch-input order plus the updated helper-fact bookkeeping, or
    /// the refusal reason.
    fn plan_delta(
        &self,
        fp: &str,
        mapping: &MappingDef,
        kb: &KnowledgeBase,
    ) -> Result<PlannedDelta, String> {
        let ms = &self.sessions[fp];
        let Some(events) = kb.drain_deltas_since(ms.last_version) else {
            return Err("journal window no longer covers the last run".into());
        };
        let mut delta: Vec<(String, Tuple)> = Vec::new();
        let mut districts = ms.districts.clone();
        let mut max_source = ms.max_district_source;
        for DeltaEvent { change, .. } in &events {
            match change {
                DeltaChange::RowsAppended { relation, rows } => {
                    let Some(src_idx) =
                        mapping.sources.iter().position(|s| s == relation)
                    else {
                        continue;
                    };
                    for row in rows {
                        for (full, district) in district_facts(row) {
                            // the helper predicate is shared across
                            // sources: an appended row's district fact is
                            // order-safe iff (a) it is already contributed
                            // by this source or an earlier one (its first
                            // occurrence cannot move), or (b) it is brand
                            // new and no later source has contributed any
                            // district yet (so appending IS its scratch
                            // position)
                            match districts.get(&full) {
                                Some(&first) if first <= src_idx => {}
                                Some(_) => {
                                    return Err(format!(
                                        "helper fact `{full}` would move before its \
                                         first occurrence"
                                    ));
                                }
                                None if max_source > src_idx => {
                                    return Err(format!(
                                        "new helper fact `{full}` from source \
                                         `{relation}` lands before later sources"
                                    ));
                                }
                                None => {
                                    districts.insert(full.clone(), src_idx);
                                    max_source = max_source.max(src_idx);
                                    delta.push((
                                        "postcode_district".into(),
                                        Tuple::new(vec![
                                            Value::str(full),
                                            Value::str(district),
                                        ]),
                                    ));
                                }
                            }
                        }
                        delta.push((relation.clone(), row.clone()));
                    }
                }
                // a brand-new relation cannot be one of this session's
                // sources (they existed at bootstrap), but if a source
                // was removed and re-added the pair of events must force
                // a rebuild — treat it like a replacement
                DeltaChange::RelationAdded { relation }
                | DeltaChange::RelationReplaced { relation }
                | DeltaChange::RelationRemoved { relation } => {
                    if mapping.sources.contains(relation) {
                        return Err(format!("source `{relation}` was replaced"));
                    }
                }
                // metadata aspects never reach the execution input; the
                // fingerprint already pins rules, sources and target
                DeltaChange::AspectChanged { .. } => {}
            }
        }
        Ok(PlannedDelta { facts: delta, districts, max_source })
    }

    /// Feed a planned delta through the session and extend (or rebuild)
    /// the coerced result to mirror the target fact order.
    fn apply_delta(
        &mut self,
        fp: &str,
        plan: PlannedDelta,
        mapping: &MappingDef,
        target: &Schema,
        kb: &KnowledgeBase,
    ) -> Result<Relation> {
        let ms = self.sessions.get_mut(fp).expect("caller checked presence");
        ms.districts = plan.districts;
        ms.max_district_source = plan.max_source;
        ms.session.apply(plan.facts)?;
        let outcome = ms.session.last_outcome().expect("apply records an outcome");
        let fast = outcome.mode == DeltaMode::Incremental;
        if fast {
            self.stats.incremental_runs += 1;
            self.stats.last_fallback = None;
        } else {
            self.stats.full_runs += 1;
            self.stats.last_fallback = outcome.fallback_reason.clone();
        }
        let facts = ms.session.database().facts(&target.name);
        if fast && !outcome.reordered.contains(&target.name) {
            // new target facts are a suffix: append-coerce only those
            for t in &facts[ms.target_facts.min(facts.len())..] {
                ms.result.push(coerce_fact(t, target, &mapping.id)?)?;
            }
        } else {
            let mut rel = Relation::empty(target.clone());
            for t in facts {
                rel.push(coerce_fact(t, target, &mapping.id)?)?;
            }
            ms.result = rel;
        }
        ms.target_facts = facts.len();
        ms.last_version = kb.version();
        Ok(ms.result.clone())
    }

    /// Build a fresh session from the knowledge base (first sight of this
    /// mapping structure, or recovery from a refused/failed delta).
    fn bootstrap(
        &mut self,
        fp: &str,
        cfg: &ExecuteConfig,
        mapping: &MappingDef,
        target: &Schema,
        kb: &KnowledgeBase,
    ) -> Result<Relation> {
        let input = build_input_db(mapping, kb)?;
        // first-occurrence source index per helper fact, in the same scan
        // order build_input_db uses
        let mut districts: HashMap<String, usize> = HashMap::new();
        let mut max_district_source = 0usize;
        for (src_idx, source) in mapping.sources.iter().enumerate() {
            let rel = kb.relation(source)?;
            for row in rel.iter() {
                for (full, _) in district_facts(row) {
                    districts.entry(full).or_insert_with(|| {
                        max_district_source = max_district_source.max(src_idx);
                        src_idx
                    });
                }
            }
        }
        let mut session = IncrementalSession::new(cfg.engine.clone(), &mapping.rules)?;
        session.run_full(input)?;
        let mut result = Relation::empty(target.clone());
        let facts = session.database().facts(&target.name);
        for t in facts {
            result.push(coerce_fact(t, target, &mapping.id)?)?;
        }
        let ms = MappingSession {
            last_version: kb.version(),
            target_facts: facts.len(),
            districts,
            max_district_source,
            result,
            session,
        };
        self.stats.full_runs += 1;
        self.sessions.insert(fp.to_string(), ms);
        while self.lru.len() > self.capacity {
            let evicted = self.lru.remove(0);
            self.sessions.remove(&evicted);
        }
        Ok(self.sessions[fp].result.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute_mapping;
    use vada_common::{tuple, AttrType};

    fn kb_and_mapping() -> (KnowledgeBase, MappingDef) {
        let mut kb = KnowledgeBase::new();
        let mut rm = Relation::empty(Schema::all_str(
            "rightmove",
            &["price", "street", "postcode"],
        ));
        rm.push(tuple!["£250,000", "12 high st", "M1 1AA"]).unwrap();
        rm.push(tuple!["300000", "9 park rd", "EH1 1AA"]).unwrap();
        kb.register_source(rm);
        let mut dep = Relation::empty(Schema::all_str("deprivation", &["postcode", "crime"]));
        dep.push(tuple!["M1", "500"]).unwrap();
        kb.register_source(dep);
        kb.register_target_schema(
            Schema::new(
                "property",
                [
                    ("street", AttrType::Str),
                    ("postcode", AttrType::Str),
                    ("price", AttrType::Int),
                    ("crimerank", AttrType::Int),
                ],
            )
            .unwrap(),
        );
        let rules = r#"
            property(S, PC, P, C) :- rightmove(P, S, PC), postcode_district(PC, D), deprivation(D, C).
            property(S, PC, P, null) :- rightmove(P, S, PC), not has_crime(PC).
            has_crime(PC) :- postcode_district(PC, D), deprivation(D, _).
        "#;
        let mapping = MappingDef {
            id: "m".into(),
            target: "property".into(),
            rules: rules.into(),
            sources: vec!["deprivation".into(), "rightmove".into()],
            matches_used: vec![],
        };
        (kb, mapping)
    }

    #[test]
    fn matches_scratch_across_appends_and_replacements() {
        let (mut kb, mapping) = kb_and_mapping();
        let cfg = ExecuteConfig::default();
        let mut exec = IncrementalExecutor::default();
        let check = |exec: &mut IncrementalExecutor, kb: &KnowledgeBase| {
            let inc = exec.execute(&cfg, &mapping, kb).unwrap();
            let scratch = execute_mapping(&cfg, &mapping, kb).unwrap();
            assert_eq!(inc.schema(), scratch.schema());
            assert_eq!(inc.tuples(), scratch.tuples());
        };
        check(&mut exec, &kb);
        assert_eq!(exec.stats().full_runs, 1);

        // grow the last source (rightmove) with an already-seen postcode:
        // fast path (a brand-new postcode would add a postcode_district
        // fact feeding the negated has_crime, correctly forcing a rebuild)
        let mut rm = kb.relation("rightmove").unwrap().clone();
        rm.push(tuple!["410000", "3 kings ave", "M1 1AA"]).unwrap();
        kb.register_source(rm.clone());
        check(&mut exec, &kb);
        assert_eq!(exec.stats().incremental_runs, 1, "{:?}", exec.stats());

        // a new postcode falls back inside the session, still identical
        let mut rm_new = kb.relation("rightmove").unwrap().clone();
        rm_new.push(tuple!["99000", "7 new rd", "M9 9ZZ"]).unwrap();
        kb.register_source(rm_new);
        check(&mut exec, &kb);
        assert!(
            exec.stats()
                .last_fallback
                .as_deref()
                .is_some_and(|r| r.contains("negated")),
            "{:?}",
            exec.stats()
        );

        // a brand-new district-shaped value in the non-final source would
        // land before rightmove's helper facts in a scratch build: rebuilt
        let mut dep = kb.relation("deprivation").unwrap().clone();
        dep.push(tuple!["EH1 1ZZ", "900"]).unwrap();
        kb.register_source(dep);
        check(&mut exec, &kb);
        assert!(
            exec.stats()
                .last_fallback
                .as_deref()
                .is_some_and(|r| r.contains("lands before later sources")),
            "{:?}",
            exec.stats()
        );

        // replace a source outright: rebuilt
        let mut rm2 = Relation::empty(rm.schema().clone());
        rm2.push(tuple!["1", "x st", "M1 1AA"]).unwrap();
        kb.register_source(rm2);
        let before = exec.stats().full_runs;
        check(&mut exec, &kb);
        assert_eq!(exec.stats().full_runs, before + 1);
    }

    #[test]
    fn unrelated_kb_churn_is_ignored() {
        let (mut kb, mapping) = kb_and_mapping();
        let cfg = ExecuteConfig::default();
        let mut exec = IncrementalExecutor::default();
        exec.execute(&cfg, &mapping, &kb).unwrap();

        // metadata churn plus an unrelated relation: no reason to rerun
        kb.add_quality(vada_kb::QualityFact {
            entity_kind: "mapping".into(),
            entity: "m".into(),
            metric: "completeness".into(),
            criterion: "completeness(price)".into(),
            value: 1.0,
        });
        let mut other = Relation::empty(Schema::all_str("unrelated", &["a"]));
        other.push(tuple!["x"]).unwrap();
        kb.register_source(other);

        let rel = exec.execute(&cfg, &mapping, &kb).unwrap();
        assert_eq!(exec.stats().incremental_runs, 1);
        assert_eq!(
            rel.tuples(),
            execute_mapping(&cfg, &mapping, &kb).unwrap().tuples()
        );
    }

    #[test]
    fn structural_change_creates_a_fresh_session() {
        let (mut kb, mut mapping) = kb_and_mapping();
        let cfg = ExecuteConfig::default();
        let mut exec = IncrementalExecutor::default();
        exec.execute(&cfg, &mapping, &kb).unwrap();
        // a different mapping id with identical structure reuses the session
        mapping.id = "m2".into();
        let mut rm = kb.relation("rightmove").unwrap().clone();
        rm.push(tuple!["500000", "4 mill ln", "EH1 1AA"]).unwrap();
        kb.register_source(rm);
        exec.execute(&cfg, &mapping, &kb).unwrap();
        assert_eq!(exec.stats().incremental_runs, 1);
        // changed rules: new fingerprint, fresh full run
        mapping.rules = "property(S, PC, P, null) :- rightmove(P, S, PC).".into();
        let rel = exec.execute(&cfg, &mapping, &kb).unwrap();
        assert_eq!(exec.stats().full_runs, 2);
        assert_eq!(
            rel.tuples(),
            execute_mapping(&cfg, &mapping, &kb).unwrap().tuples()
        );
    }

    #[test]
    fn failed_apply_drops_the_session_and_recovers() {
        let mut kb = KnowledgeBase::new();
        let mut src = Relation::empty(Schema::all_str("s", &["a"]));
        src.push(tuple![1]).unwrap();
        kb.register_source(src.clone());
        kb.register_target_schema(
            Schema::new("t", [("a", AttrType::Str)]).unwrap(),
        );
        let mapping = MappingDef {
            id: "m".into(),
            target: "t".into(),
            rules: "t(Y) :- s(X), Y = X + 0.".into(),
            sources: vec!["s".into()],
            matches_used: vec![],
        };
        let cfg = ExecuteConfig::default();
        let mut exec = IncrementalExecutor::default();
        exec.execute(&cfg, &mapping, &kb).unwrap();

        // a delta row that breaks the arithmetic mid-delta-pass
        src.push(tuple!["not a number"]).unwrap();
        kb.register_source(src.clone());
        let err = exec.execute(&cfg, &mapping, &kb).unwrap_err();
        assert_eq!(err.kind(), "eval", "{err}");
        // …the scratch path fails identically (no divergence), and once
        // the poison row is gone the executor rebuilds cleanly
        assert!(execute_mapping(&cfg, &mapping, &kb).is_err());
        let mut fixed = Relation::empty(src.schema().clone());
        fixed.push(tuple![1]).unwrap();
        fixed.push(tuple![2]).unwrap();
        kb.register_source(fixed);
        let rel = exec.execute(&cfg, &mapping, &kb).unwrap();
        assert_eq!(
            rel.tuples(),
            execute_mapping(&cfg, &mapping, &kb).unwrap().tuples()
        );
    }
}
