//! Incremental mapping execution: the bridge between the knowledge-base
//! [delta journal](vada_kb::DeltaJournal) and the Datalog engine's
//! [`IncrementalSession`].
//!
//! An [`IncrementalExecutor`] keeps one session per *structurally
//! distinct* mapping (fingerprinted by rules, source list and target
//! schema — mapping ids regenerate on every generation pass, the
//! structure usually does not). On re-execution it reads the journal
//! entries since its last run; when every relevant entry is *row-level*
//! it replays just those rows through the session — appends through the
//! semi-naive fast path, removals (`RowsRemoved`, and tail
//! `RowsReplaced` rewrites as retract-old + append-new) through the
//! counting/DRed retraction path — so the derivation work is O(rows
//! changed), not O(sources). Relations are bags while the fact view is a
//! set, so the executor tracks row multiplicities and retracts a fact
//! only when its last occurrence disappears; likewise a
//! `postcode_district` helper fact is retracted only when its last
//! contributing row goes. Anything else — a replaced source, a
//! mid-relation rewrite, a stale journal window, a schema change, a
//! helper fact whose scratch position a replayed edit cannot reproduce —
//! rebuilds the input from the knowledge base and re-materializes,
//! keeping the output byte-identical to
//! [`execute_mapping`](crate::execute_mapping) in every case.
//!
//! ```
//! use vada_common::{tuple, AttrType, Relation, Schema};
//! use vada_kb::{KnowledgeBase, MappingDef};
//! use vada_map::{execute_mapping, ExecuteConfig, IncrementalExecutor};
//!
//! let mut kb = KnowledgeBase::new();
//! let mut src = Relation::empty(Schema::all_str("listings", &["street", "price"]));
//! src.push(tuple!["1 high st", "250000"]).unwrap();
//! kb.register_source(src.clone());
//! kb.register_target_schema(
//!     Schema::new("property", [("street", AttrType::Str), ("price", AttrType::Int)]).unwrap(),
//! );
//! let mapping = MappingDef {
//!     id: "m0".into(),
//!     target: "property".into(),
//!     rules: "property(S, P) :- listings(S, P).".into(),
//!     sources: vec!["listings".into()],
//!     matches_used: vec![],
//! };
//!
//! let mut exec = IncrementalExecutor::default();
//! let cfg = ExecuteConfig::default();
//! let first = exec.execute(&cfg, &mapping, &kb).unwrap();
//!
//! // append a row and re-execute: one delta fact through the fast path
//! src.push(tuple!["2 park rd", "300000"]).unwrap();
//! kb.register_source(src);
//! let second = exec.execute(&cfg, &mapping, &kb).unwrap();
//! assert_eq!(second.len(), 2);
//! assert_eq!(exec.stats().incremental_runs, 1);
//! // …and byte-identical to a from-scratch execution
//! assert_eq!(second.tuples(), execute_mapping(&cfg, &mapping, &kb).unwrap().tuples());
//! ```

use std::collections::{BTreeMap, HashMap};

use vada_common::obs::key as obs_key;
use vada_common::{Relation, Result, Schema, Tuple, VadaError, Value};
use vada_datalog::incremental::{DeltaMode, IncrementalSession};
use vada_kb::{DeltaChange, DeltaEvent, KnowledgeBase, MappingDef};

use crate::execute::{build_input_db_with, coerce_fact, district_facts, ExecuteConfig};

/// Cap on retained sessions; the least recently used is evicted beyond it.
pub const DEFAULT_SESSION_CAPACITY: usize = 16;

/// Executor-level counters, for benches and the repro driver.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// From-scratch materializations: bootstraps, journal/session
    /// fallbacks, structural changes.
    pub full_runs: usize,
    /// Executions that went through the semi-naive fast path end to end.
    pub incremental_runs: usize,
    /// The most recent reason a fast path was refused, if any.
    pub last_fallback: Option<String>,
}

/// One persistent session plus the state needed to mirror the scratch
/// input construction and the coerced result incrementally.
#[derive(Debug)]
struct MappingSession {
    session: IncrementalSession,
    /// KB version consumed through (journal watermark).
    last_version: u64,
    /// Journal lineage the watermark was taken against: a mismatch means
    /// the history may have diverged under the same sequence numbers
    /// (e.g. work resumed on a clone), so the watermark is meaningless.
    last_lineage: u64,
    /// Cached coerced result; extended in place on append-only deltas.
    result: Relation,
    /// Target facts already represented in `result`.
    target_facts: usize,
    /// Full postcode → index (into `mapping.sources`) of the source whose
    /// scan first contributes its `postcode_district` fact. The helper
    /// predicate is shared across sources, so whether an appended row's
    /// helper fact keeps (or can take) its scratch position depends on
    /// where earlier occurrences live — see `plan_delta`.
    districts: HashMap<String, usize>,
    /// Highest first-occurrence source index present in `districts`.
    max_district_source: usize,
    /// Row multiplicity per `(source index, tuple)`: relations are bags
    /// while the fact view is a set, so a retraction reaches the engine
    /// only when the *last* occurrence of a row disappears.
    mult: HashMap<(usize, Tuple), u32>,
    /// Contributing-row count per full postcode: the `postcode_district`
    /// helper fact is retracted when its last contributor disappears.
    district_support: HashMap<String, usize>,
    /// The row that first contributes each full postcode in the scan — a
    /// removal of any *other* contributor provably keeps the helper
    /// fact's scratch position.
    district_first: HashMap<String, Tuple>,
}

/// A fleet of [`IncrementalSession`]s keyed by mapping structure. See the
/// module docs.
#[derive(Debug)]
pub struct IncrementalExecutor {
    sessions: BTreeMap<String, MappingSession>,
    /// Fingerprints in least→most recently used order.
    lru: Vec<String>,
    capacity: usize,
    stats: ExecutorStats,
}

impl Default for IncrementalExecutor {
    fn default() -> Self {
        IncrementalExecutor {
            sessions: BTreeMap::new(),
            lru: Vec::new(),
            capacity: DEFAULT_SESSION_CAPACITY,
            stats: ExecutorStats::default(),
        }
    }
}

/// The structural identity of a mapping execution: same fingerprint ⇒
/// same program, same input sources, same output typing.
fn fingerprint(mapping: &MappingDef, target: &Schema) -> String {
    let mut fp = String::new();
    fp.push_str(&target.name);
    for a in target.attributes() {
        fp.push_str(&format!("|{}:{}", a.name, a.ty.name()));
    }
    fp.push_str(&format!("|src={:?}|", mapping.sources));
    fp.push_str(&mapping.rules);
    fp
}

/// One engine-bound step of a planned delta, in journal order.
enum PlannedOp {
    /// New facts, in scratch-input order, for the semi-naive append path.
    Append(Vec<(String, Tuple)>),
    /// Facts whose last row occurrence disappeared, for the
    /// counting/DRed retraction path.
    Retract(Vec<(String, Tuple)>),
}

/// A vetted row-level delta: append/retract steps in journal order plus
/// the bookkeeping to persist once every step succeeds. Built up row by
/// row while vetting journal events, mirroring the scratch input
/// construction.
struct PlannedDelta {
    ops: Vec<PlannedOp>,
    districts: HashMap<String, usize>,
    max_source: usize,
    mult: HashMap<(usize, Tuple), u32>,
    district_support: HashMap<String, usize>,
    district_first: HashMap<String, Tuple>,
}

impl PlannedDelta {
    fn push_append(&mut self, pred: String, t: Tuple) {
        if let Some(PlannedOp::Append(facts)) = self.ops.last_mut() {
            facts.push((pred, t));
        } else {
            self.ops.push(PlannedOp::Append(vec![(pred, t)]));
        }
    }

    fn push_retract(&mut self, pred: String, t: Tuple) {
        if let Some(PlannedOp::Retract(facts)) = self.ops.last_mut() {
            facts.push((pred, t));
        } else {
            self.ops.push(PlannedOp::Retract(vec![(pred, t)]));
        }
    }

    /// Vet one appended row: bump its multiplicity, place its helper
    /// facts, and plan the fact appends.
    fn append_row(&mut self, relation: &str, src_idx: usize, row: &Tuple) -> Result<(), String> {
        for (full, district) in district_facts(row) {
            let support = self.district_support.entry(full.clone()).or_insert(0);
            *support += 1;
            if *support > 1 {
                // the helper predicate is shared across sources: an
                // existing fact keeps its scratch position only when its
                // first occurrence is in this source or an earlier one
                match self.districts.get(&full) {
                    Some(&first) if first <= src_idx => {}
                    _ => {
                        return Err(format!(
                            "helper fact `{full}` would move before its first occurrence"
                        ));
                    }
                }
            } else if self.max_source > src_idx {
                // brand new, but a later source already contributes
                // districts: appending cannot be its scratch position
                return Err(format!(
                    "new helper fact `{full}` from source `{relation}` lands before \
                     later sources"
                ));
            } else {
                self.districts.insert(full.clone(), src_idx);
                self.district_first.insert(full.clone(), row.clone());
                self.max_source = self.max_source.max(src_idx);
                self.push_append(
                    "postcode_district".into(),
                    Tuple::new(vec![Value::str(full), Value::str(district)]),
                );
            }
        }
        *self.mult.entry((src_idx, row.clone())).or_insert(0) += 1;
        self.push_append(relation.to_string(), row.clone());
        Ok(())
    }

    /// Vet one removed row: drop its multiplicity, retract facts whose
    /// last occurrence disappeared, and retire orphaned helper facts.
    fn remove_row(&mut self, relation: &str, src_idx: usize, row: &Tuple) -> Result<(), String> {
        match self.mult.get_mut(&(src_idx, row.clone())) {
            Some(n) if *n > 1 => {
                *n -= 1;
                // a duplicate row remains: the fact view is unchanged, but
                // helper support still shrinks below
            }
            Some(_) => {
                self.mult.remove(&(src_idx, row.clone()));
                self.push_retract(relation.to_string(), row.clone());
            }
            None => {
                return Err(format!(
                    "journal removed an untracked row from `{relation}`"
                ));
            }
        }
        for (full, district) in district_facts(row) {
            let Some(support) = self.district_support.get_mut(&full) else {
                return Err(format!("helper fact `{full}` has no tracked support"));
            };
            *support -= 1;
            if *support == 0 {
                // last contributor gone: the helper fact is retracted
                // (removal keeps the surviving facts' order)
                self.district_support.remove(&full);
                self.districts.remove(&full);
                self.district_first.remove(&full);
                self.max_source = self.districts.values().copied().max().unwrap_or(0);
                self.push_retract(
                    "postcode_district".into(),
                    Tuple::new(vec![Value::str(full), Value::str(district)]),
                );
            } else if self.district_first.get(&full) == Some(row) {
                // survivors exist but the removed row matches the first
                // contribution: the fact's scratch position may move
                // within the scan — rebuild (a removal of any *other*
                // contributor provably leaves the position alone)
                return Err(format!(
                    "helper fact `{full}` may lose its first contribution in \
                     `{relation}`"
                ));
            }
        }
        Ok(())
    }
}

impl IncrementalExecutor {
    /// An executor retaining at most `capacity` sessions.
    pub fn with_capacity(capacity: usize) -> IncrementalExecutor {
        IncrementalExecutor { capacity: capacity.max(1), ..Default::default() }
    }

    /// Executor-level counters.
    pub fn stats(&self) -> &ExecutorStats {
        &self.stats
    }

    /// Execute `mapping`, incrementally when the journal proves the inputs
    /// only grew. The result is byte-identical to
    /// [`execute_mapping`](crate::execute_mapping) on the same knowledge
    /// base — including row order — in every case.
    pub fn execute(
        &mut self,
        cfg: &ExecuteConfig,
        mapping: &MappingDef,
        kb: &KnowledgeBase,
    ) -> Result<Relation> {
        self.execute_with(cfg, mapping, kb, None)
    }

    /// [`IncrementalExecutor::execute`] with an optional persistent
    /// [`ShardedStore`]: under [`vada_common::Sharding::Shards`] the
    /// bootstrap (from-scratch) input database is built from per-shard
    /// scans of the store's journal-synced views, while the delta path is
    /// untouched — it is already O(change) straight from the journal.
    pub fn execute_with(
        &mut self,
        cfg: &ExecuteConfig,
        mapping: &MappingDef,
        kb: &KnowledgeBase,
        store: Option<&mut vada_kb::ShardedStore>,
    ) -> Result<Relation> {
        let target: Schema = kb
            .target_schema()
            .ok_or_else(|| VadaError::Kb("no target schema registered".into()))?
            .clone();
        if target.name != mapping.target {
            return Err(VadaError::Kb(format!(
                "mapping `{}` targets `{}` but the registered target is `{}`",
                mapping.id, mapping.target, target.name
            )));
        }
        let fp = fingerprint(mapping, &target);
        self.lru.retain(|f| f != &fp);
        self.lru.push(fp.clone());

        if let Some(ms) = self.sessions.get_mut(&fp) {
            // adopt the current worker count and registry: the orchestrator
            // may have re-broadcast since this session was bootstrapped
            // (output is level-invariant, only wall-clock changes)
            ms.session.set_parallelism(cfg.engine.parallelism);
            ms.session.set_obs(cfg.engine.obs.clone());
            match self.plan_delta(&fp, mapping, kb) {
                Ok(plan) => {
                    cfg.engine.obs.incr(obs_key::MAP_INCREMENTAL);
                    // the session's apply/retract spans nest underneath
                    let span = cfg.engine.obs.span("map/execute_incremental");
                    span.attr("mapping", &mapping.id);
                    span.attr("target", &mapping.target);
                    let outcome = self.apply_delta(&fp, plan, mapping, &target, kb);
                    match outcome {
                        Ok(rel) => return Ok(rel),
                        Err(e) => {
                            // a failed apply leaves the session poisoned:
                            // drop it so the next execution rebuilds clean
                            self.sessions.remove(&fp);
                            self.lru.retain(|f| f != &fp);
                            return Err(e);
                        }
                    }
                }
                Err(reason) => {
                    self.stats.last_fallback = Some(reason);
                    self.sessions.remove(&fp);
                }
            }
        }
        self.bootstrap(&fp, cfg, mapping, &target, kb, store)
    }

    /// Decide whether the journal entries since the session's watermark
    /// form an order-safe row-level delta; returns the append/retract
    /// steps in journal order plus the updated bookkeeping, or the
    /// refusal reason.
    fn plan_delta(
        &self,
        fp: &str,
        mapping: &MappingDef,
        kb: &KnowledgeBase,
    ) -> Result<PlannedDelta, String> {
        let ms = &self.sessions[fp];
        if kb.journal().lineage() != ms.last_lineage {
            return Err("knowledge-base journal lineage changed since the last run".into());
        }
        let Some(events) = kb.drain_deltas_since(ms.last_version) else {
            return Err("journal window no longer covers the last run".into());
        };
        let mut plan = PlannedDelta {
            ops: Vec::new(),
            districts: ms.districts.clone(),
            max_source: ms.max_district_source,
            mult: ms.mult.clone(),
            district_support: ms.district_support.clone(),
            district_first: ms.district_first.clone(),
        };
        for DeltaEvent { change, .. } in &events {
            match change {
                DeltaChange::RowsAppended { relation, rows } => {
                    let Some(src_idx) =
                        mapping.sources.iter().position(|s| s == relation)
                    else {
                        continue;
                    };
                    for row in rows {
                        plan.append_row(relation, src_idx, row)?;
                    }
                }
                DeltaChange::RowsRemoved { relation, rows, .. } => {
                    let Some(src_idx) =
                        mapping.sources.iter().position(|s| s == relation)
                    else {
                        continue;
                    };
                    for row in rows {
                        plan.remove_row(relation, src_idx, row)?;
                    }
                }
                DeltaChange::RowsReplaced { relation, removed, added, tail, .. } => {
                    let Some(src_idx) =
                        mapping.sources.iter().position(|s| s == relation)
                    else {
                        continue;
                    };
                    // retract-old + append-new replays an in-place rewrite
                    // only when the rewritten rows were the trailing ones —
                    // anywhere else the new rows' scan positions sit in the
                    // middle of the relation, which an append cannot
                    // reproduce
                    if !tail {
                        return Err(format!(
                            "mid-relation rewrite of `{relation}` changes the scan order"
                        ));
                    }
                    for row in removed {
                        plan.remove_row(relation, src_idx, row)?;
                    }
                    for row in added {
                        plan.append_row(relation, src_idx, row)?;
                    }
                }
                // a brand-new relation cannot be one of this session's
                // sources (they existed at bootstrap), but if a source
                // was removed and re-added the pair of events must force
                // a rebuild — treat it like a replacement
                DeltaChange::RelationAdded { relation }
                | DeltaChange::RelationReplaced { relation }
                | DeltaChange::RelationRemoved { relation } => {
                    if mapping.sources.contains(relation) {
                        return Err(format!("source `{relation}` was replaced"));
                    }
                }
                // metadata aspects never reach the execution input; the
                // fingerprint already pins rules, sources and target
                DeltaChange::AspectChanged { .. } => {}
            }
        }
        Ok(plan)
    }

    /// Feed a planned delta through the session, step by step in journal
    /// order, and extend (or rebuild) the coerced result to mirror the
    /// target fact order.
    fn apply_delta(
        &mut self,
        fp: &str,
        plan: PlannedDelta,
        mapping: &MappingDef,
        target: &Schema,
        kb: &KnowledgeBase,
    ) -> Result<Relation> {
        let ms = self.sessions.get_mut(fp).expect("caller checked presence");
        ms.districts = plan.districts;
        ms.max_district_source = plan.max_source;
        ms.mult = plan.mult;
        ms.district_support = plan.district_support;
        ms.district_first = plan.district_first;
        // the run counts as incremental only when every step stayed on a
        // fast path; the result stays append-coercible only while no step
        // retracted anything or reordered the target
        let mut fast = true;
        let mut append_only = true;
        let mut last_fallback = None;
        for op in plan.ops {
            match op {
                PlannedOp::Append(facts) => {
                    ms.session.apply(facts)?;
                }
                PlannedOp::Retract(facts) => {
                    append_only = false;
                    ms.session.retract(facts)?;
                }
            }
            let outcome = ms.session.last_outcome().expect("step records an outcome");
            if outcome.mode != DeltaMode::Incremental {
                fast = false;
                last_fallback = outcome.fallback_reason.clone();
            }
            if outcome.reordered.contains(&target.name) {
                append_only = false;
            }
        }
        if fast {
            self.stats.incremental_runs += 1;
            self.stats.last_fallback = None;
        } else {
            self.stats.full_runs += 1;
            self.stats.last_fallback = last_fallback;
        }
        let facts = ms.session.database().facts(&target.name);
        if fast && append_only {
            // new target facts are a suffix: append-coerce only those
            for t in &facts[ms.target_facts.min(facts.len())..] {
                ms.result.push(coerce_fact(t, target, &mapping.id)?)?;
            }
        } else {
            let mut rel = Relation::empty(target.clone());
            for t in facts {
                rel.push(coerce_fact(t, target, &mapping.id)?)?;
            }
            ms.result = rel;
        }
        ms.target_facts = facts.len();
        ms.last_version = kb.version();
        ms.last_lineage = kb.journal().lineage();
        Ok(ms.result.clone())
    }

    /// Build a fresh session from the knowledge base (first sight of this
    /// mapping structure, or recovery from a refused/failed delta).
    fn bootstrap(
        &mut self,
        fp: &str,
        cfg: &ExecuteConfig,
        mapping: &MappingDef,
        target: &Schema,
        kb: &KnowledgeBase,
        store: Option<&mut vada_kb::ShardedStore>,
    ) -> Result<Relation> {
        let input = build_input_db_with(
            mapping,
            kb,
            cfg.sharding,
            cfg.engine.parallelism,
            &cfg.engine.obs,
            store,
        )?;
        // first-occurrence source index and contributor count per helper
        // fact, and row multiplicities, in the same scan order
        // build_input_db uses
        let mut districts: HashMap<String, usize> = HashMap::new();
        let mut district_support: HashMap<String, usize> = HashMap::new();
        let mut district_first: HashMap<String, Tuple> = HashMap::new();
        let mut mult: HashMap<(usize, Tuple), u32> = HashMap::new();
        let mut max_district_source = 0usize;
        for (src_idx, source) in mapping.sources.iter().enumerate() {
            let rel = kb.relation(source)?;
            for row in rel.iter() {
                *mult.entry((src_idx, row.clone())).or_insert(0) += 1;
                for (full, _) in district_facts(row) {
                    *district_support.entry(full.clone()).or_insert(0) += 1;
                    district_first.entry(full.clone()).or_insert_with(|| row.clone());
                    districts.entry(full).or_insert_with(|| {
                        max_district_source = max_district_source.max(src_idx);
                        src_idx
                    });
                }
            }
        }
        cfg.engine.obs.incr(obs_key::MAP_FULL);
        let mut session = IncrementalSession::new(cfg.engine.clone(), &mapping.rules)?;
        session.run_full(input)?;
        let mut result = Relation::empty(target.clone());
        let facts = session.database().facts(&target.name);
        for t in facts {
            result.push(coerce_fact(t, target, &mapping.id)?)?;
        }
        let ms = MappingSession {
            last_version: kb.version(),
            last_lineage: kb.journal().lineage(),
            target_facts: facts.len(),
            districts,
            max_district_source,
            mult,
            district_support,
            district_first,
            result,
            session,
        };
        self.stats.full_runs += 1;
        self.sessions.insert(fp.to_string(), ms);
        while self.lru.len() > self.capacity {
            let evicted = self.lru.remove(0);
            self.sessions.remove(&evicted);
        }
        Ok(self.sessions[fp].result.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute_mapping;
    use vada_common::{tuple, AttrType};

    fn kb_and_mapping() -> (KnowledgeBase, MappingDef) {
        let mut kb = KnowledgeBase::new();
        let mut rm = Relation::empty(Schema::all_str(
            "rightmove",
            &["price", "street", "postcode"],
        ));
        rm.push(tuple!["£250,000", "12 high st", "M1 1AA"]).unwrap();
        rm.push(tuple!["300000", "9 park rd", "EH1 1AA"]).unwrap();
        kb.register_source(rm);
        let mut dep = Relation::empty(Schema::all_str("deprivation", &["postcode", "crime"]));
        dep.push(tuple!["M1", "500"]).unwrap();
        kb.register_source(dep);
        kb.register_target_schema(
            Schema::new(
                "property",
                [
                    ("street", AttrType::Str),
                    ("postcode", AttrType::Str),
                    ("price", AttrType::Int),
                    ("crimerank", AttrType::Int),
                ],
            )
            .unwrap(),
        );
        let rules = r#"
            property(S, PC, P, C) :- rightmove(P, S, PC), postcode_district(PC, D), deprivation(D, C).
            property(S, PC, P, null) :- rightmove(P, S, PC), not has_crime(PC).
            has_crime(PC) :- postcode_district(PC, D), deprivation(D, _).
        "#;
        let mapping = MappingDef {
            id: "m".into(),
            target: "property".into(),
            rules: rules.into(),
            sources: vec!["deprivation".into(), "rightmove".into()],
            matches_used: vec![],
        };
        (kb, mapping)
    }

    #[test]
    fn matches_scratch_across_appends_and_replacements() {
        let (mut kb, mapping) = kb_and_mapping();
        let cfg = ExecuteConfig::default();
        let mut exec = IncrementalExecutor::default();
        let check = |exec: &mut IncrementalExecutor, kb: &KnowledgeBase| {
            let inc = exec.execute(&cfg, &mapping, kb).unwrap();
            let scratch = execute_mapping(&cfg, &mapping, kb).unwrap();
            assert_eq!(inc.schema(), scratch.schema());
            assert_eq!(inc.tuples(), scratch.tuples());
        };
        check(&mut exec, &kb);
        assert_eq!(exec.stats().full_runs, 1);

        // grow the last source (rightmove) with an already-seen postcode:
        // fast path (a brand-new postcode would add a postcode_district
        // fact feeding the negated has_crime, correctly forcing a rebuild)
        let mut rm = kb.relation("rightmove").unwrap().clone();
        rm.push(tuple!["410000", "3 kings ave", "M1 1AA"]).unwrap();
        kb.register_source(rm.clone());
        check(&mut exec, &kb);
        assert_eq!(exec.stats().incremental_runs, 1, "{:?}", exec.stats());

        // a new postcode falls back inside the session, still identical
        let mut rm_new = kb.relation("rightmove").unwrap().clone();
        rm_new.push(tuple!["99000", "7 new rd", "M9 9ZZ"]).unwrap();
        kb.register_source(rm_new);
        check(&mut exec, &kb);
        assert!(
            exec.stats()
                .last_fallback
                .as_deref()
                .is_some_and(|r| r.contains("negated")),
            "{:?}",
            exec.stats()
        );

        // a brand-new district-shaped value in the non-final source would
        // land before rightmove's helper facts in a scratch build: rebuilt
        let mut dep = kb.relation("deprivation").unwrap().clone();
        dep.push(tuple!["EH1 1ZZ", "900"]).unwrap();
        kb.register_source(dep);
        check(&mut exec, &kb);
        assert!(
            exec.stats()
                .last_fallback
                .as_deref()
                .is_some_and(|r| r.contains("lands before later sources")),
            "{:?}",
            exec.stats()
        );

        // replace a source outright: rebuilt
        let mut rm2 = Relation::empty(rm.schema().clone());
        rm2.push(tuple!["1", "x st", "M1 1AA"]).unwrap();
        kb.register_source(rm2);
        let before = exec.stats().full_runs;
        check(&mut exec, &kb);
        assert_eq!(exec.stats().full_runs, before + 1);
    }

    #[test]
    fn row_removals_take_the_retraction_path() {
        let (mut kb, mapping) = kb_and_mapping();
        let cfg = ExecuteConfig::default();
        let mut exec = IncrementalExecutor::default();
        let check = |exec: &mut IncrementalExecutor, kb: &KnowledgeBase| {
            let inc = exec.execute(&cfg, &mapping, kb).unwrap();
            let scratch = execute_mapping(&cfg, &mapping, kb).unwrap();
            assert_eq!(inc.tuples(), scratch.tuples());
        };
        check(&mut exec, &kb);
        assert_eq!(exec.stats().full_runs, 1);

        // grow rightmove with a second M1 1AA row, then remove it again:
        // both legs replay row-level, no rebuild
        let mut rm = kb.relation("rightmove").unwrap().clone();
        rm.push(tuple!["410000", "3 kings ave", "M1 1AA"]).unwrap();
        kb.register_source(rm);
        check(&mut exec, &kb);
        assert_eq!(exec.stats().incremental_runs, 1, "{:?}", exec.stats());

        // removing a non-first contributor of an existing postcode is a
        // pure row retraction: counting handles it, no rebuild
        kb.remove_rows("rightmove", &[2]).unwrap();
        check(&mut exec, &kb);
        assert_eq!(exec.stats().incremental_runs, 2, "{:?}", exec.stats());
        assert_eq!(exec.stats().full_runs, 1, "{:?}", exec.stats());

        // removing the only EH1 1AA row orphans its helper fact: the plan
        // stays row-level (retract the fact and its helper), but the
        // retraction shrinks the negated `has_crime`, so the *session*
        // falls back — still byte-identical, reason recorded
        kb.remove_rows("rightmove", &[1]).unwrap();
        check(&mut exec, &kb);
        assert_eq!(exec.stats().incremental_runs, 2, "{:?}", exec.stats());
        assert!(
            exec.stats()
                .last_fallback
                .as_deref()
                .is_some_and(|r| r.contains("shrank")),
            "{:?}",
            exec.stats()
        );

        // a tail rewrite replays as retract-old + append-new (row-level,
        // no executor rebuild; the negation again decides fast vs full
        // inside the session)
        kb.update_source("rightmove", &[(0, tuple!["199000", "12 high st", "M1 1AA"])])
            .unwrap();
        check(&mut exec, &kb);

        // delete everything, then re-add: empty result, then rebuilt rows
        kb.remove_rows("rightmove", &[0]).unwrap();
        check(&mut exec, &kb);
        let empty = exec.execute(&cfg, &mapping, &kb).unwrap();
        assert!(empty.is_empty());
        let mut rm = kb.relation("rightmove").unwrap().clone();
        rm.push(tuple!["5000", "9 new st", "M1 1AA"]).unwrap();
        kb.register_source(rm);
        check(&mut exec, &kb);
    }

    #[test]
    fn duplicate_rows_keep_the_fact_alive() {
        let mut kb = KnowledgeBase::new();
        let mut src = Relation::empty(Schema::all_str("s", &["a"]));
        src.push(tuple!["x"]).unwrap();
        src.push(tuple!["x"]).unwrap();
        src.push(tuple!["y"]).unwrap();
        kb.register_source(src);
        kb.register_target_schema(Schema::new("t", [("a", AttrType::Str)]).unwrap());
        let mapping = MappingDef {
            id: "m".into(),
            target: "t".into(),
            rules: "t(X) :- s(X).".into(),
            sources: vec!["s".into()],
            matches_used: vec![],
        };
        let cfg = ExecuteConfig::default();
        let mut exec = IncrementalExecutor::default();
        exec.execute(&cfg, &mapping, &kb).unwrap();

        // removing ONE of the two "x" rows must not retract the fact
        kb.remove_rows("s", &[0]).unwrap();
        let inc = exec.execute(&cfg, &mapping, &kb).unwrap();
        let scratch = execute_mapping(&cfg, &mapping, &kb).unwrap();
        assert_eq!(inc.tuples(), scratch.tuples());
        assert_eq!(inc.len(), 2, "t(x) survives via the duplicate row");
        assert_eq!(exec.stats().incremental_runs, 1, "{:?}", exec.stats());

        // removing the last "x" retracts it
        kb.remove_rows("s", &[0]).unwrap();
        let inc = exec.execute(&cfg, &mapping, &kb).unwrap();
        let scratch = execute_mapping(&cfg, &mapping, &kb).unwrap();
        assert_eq!(inc.tuples(), scratch.tuples());
        assert_eq!(inc.len(), 1);
        assert_eq!(exec.stats().incremental_runs, 2, "{:?}", exec.stats());
    }

    #[test]
    fn diverged_clone_lineage_forces_a_rebuild() {
        // the watermark-replay hazard: take a clone, advance BOTH the
        // original and the clone past the executor's watermark with
        // different content under the same sequence numbers — replaying
        // the clone's journal against the original's watermark would
        // silently skip the divergent events
        let (mut kb, mapping) = kb_and_mapping();
        let cfg = ExecuteConfig::default();
        let mut exec = IncrementalExecutor::default();
        let clone = kb.clone();
        exec.execute(&cfg, &mapping, &kb).unwrap();

        // original lineage advances (the executor consumes it normally)
        let mut rm = kb.relation("rightmove").unwrap().clone();
        rm.push(tuple!["410000", "3 kings ave", "M1 1AA"]).unwrap();
        kb.register_source(rm);
        exec.execute(&cfg, &mapping, &kb).unwrap();

        // the clone's lineage advances differently, past the watermark
        let mut kb2 = clone;
        let mut rm2 = kb2.relation("rightmove").unwrap().clone();
        rm2.push(tuple!["777", "7 other st", "M1 1AA"]).unwrap();
        rm2.push(tuple!["888", "8 other st", "M1 1AA"]).unwrap();
        kb2.register_source(rm2);
        let full_before = exec.stats().full_runs;
        let inc = exec.execute(&cfg, &mapping, &kb2).unwrap();
        assert_eq!(exec.stats().full_runs, full_before + 1, "{:?}", exec.stats());
        assert!(
            exec.stats()
                .last_fallback
                .as_deref()
                .is_some_and(|r| r.contains("lineage")),
            "{:?}",
            exec.stats()
        );
        let scratch = execute_mapping(&cfg, &mapping, &kb2).unwrap();
        assert_eq!(inc.tuples(), scratch.tuples());
    }

    #[test]
    fn mid_relation_rewrite_rebuilds() {
        let (mut kb, mapping) = kb_and_mapping();
        let cfg = ExecuteConfig::default();
        let mut exec = IncrementalExecutor::default();
        exec.execute(&cfg, &mapping, &kb).unwrap();
        // rewriting row 0 of 2 is not a tail edit: scan order changes
        kb.update_source("rightmove", &[(0, tuple!["111", "12 high st", "M1 1AA"])])
            .unwrap();
        let inc = exec.execute(&cfg, &mapping, &kb).unwrap();
        let scratch = execute_mapping(&cfg, &mapping, &kb).unwrap();
        assert_eq!(inc.tuples(), scratch.tuples());
        assert_eq!(exec.stats().incremental_runs, 0, "{:?}", exec.stats());
        assert!(
            exec.stats()
                .last_fallback
                .as_deref()
                .is_some_and(|r| r.contains("scan order")),
            "{:?}",
            exec.stats()
        );
    }

    #[test]
    fn unrelated_kb_churn_is_ignored() {
        let (mut kb, mapping) = kb_and_mapping();
        let cfg = ExecuteConfig::default();
        let mut exec = IncrementalExecutor::default();
        exec.execute(&cfg, &mapping, &kb).unwrap();

        // metadata churn plus an unrelated relation: no reason to rerun
        kb.add_quality(vada_kb::QualityFact {
            entity_kind: "mapping".into(),
            entity: "m".into(),
            metric: "completeness".into(),
            criterion: "completeness(price)".into(),
            value: 1.0,
        });
        let mut other = Relation::empty(Schema::all_str("unrelated", &["a"]));
        other.push(tuple!["x"]).unwrap();
        kb.register_source(other);

        let rel = exec.execute(&cfg, &mapping, &kb).unwrap();
        assert_eq!(exec.stats().incremental_runs, 1);
        assert_eq!(
            rel.tuples(),
            execute_mapping(&cfg, &mapping, &kb).unwrap().tuples()
        );
    }

    #[test]
    fn structural_change_creates_a_fresh_session() {
        let (mut kb, mut mapping) = kb_and_mapping();
        let cfg = ExecuteConfig::default();
        let mut exec = IncrementalExecutor::default();
        exec.execute(&cfg, &mapping, &kb).unwrap();
        // a different mapping id with identical structure reuses the session
        mapping.id = "m2".into();
        let mut rm = kb.relation("rightmove").unwrap().clone();
        rm.push(tuple!["500000", "4 mill ln", "EH1 1AA"]).unwrap();
        kb.register_source(rm);
        exec.execute(&cfg, &mapping, &kb).unwrap();
        assert_eq!(exec.stats().incremental_runs, 1);
        // changed rules: new fingerprint, fresh full run
        mapping.rules = "property(S, PC, P, null) :- rightmove(P, S, PC).".into();
        let rel = exec.execute(&cfg, &mapping, &kb).unwrap();
        assert_eq!(exec.stats().full_runs, 2);
        assert_eq!(
            rel.tuples(),
            execute_mapping(&cfg, &mapping, &kb).unwrap().tuples()
        );
    }

    #[test]
    fn failed_apply_drops_the_session_and_recovers() {
        let mut kb = KnowledgeBase::new();
        let mut src = Relation::empty(Schema::all_str("s", &["a"]));
        src.push(tuple![1]).unwrap();
        kb.register_source(src.clone());
        kb.register_target_schema(
            Schema::new("t", [("a", AttrType::Str)]).unwrap(),
        );
        let mapping = MappingDef {
            id: "m".into(),
            target: "t".into(),
            rules: "t(Y) :- s(X), Y = X + 0.".into(),
            sources: vec!["s".into()],
            matches_used: vec![],
        };
        let cfg = ExecuteConfig::default();
        let mut exec = IncrementalExecutor::default();
        exec.execute(&cfg, &mapping, &kb).unwrap();

        // a delta row that breaks the arithmetic mid-delta-pass
        src.push(tuple!["not a number"]).unwrap();
        kb.register_source(src.clone());
        let err = exec.execute(&cfg, &mapping, &kb).unwrap_err();
        assert_eq!(err.kind(), "eval", "{err}");
        // …the scratch path fails identically (no divergence), and once
        // the poison row is gone the executor rebuilds cleanly
        assert!(execute_mapping(&cfg, &mapping, &kb).is_err());
        let mut fixed = Relation::empty(src.schema().clone());
        fixed.push(tuple![1]).unwrap();
        fixed.push(tuple![2]).unwrap();
        kb.register_source(fixed);
        let rel = exec.execute(&cfg, &mapping, &kb).unwrap();
        assert_eq!(
            rel.tuples(),
            execute_mapping(&cfg, &mapping, &kb).unwrap().tuples()
        );
    }
}
