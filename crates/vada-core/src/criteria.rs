//! Canonical quality-criterion naming shared between the quality
//! transducer (which writes metric facts) and mapping selection (which
//! weighs them under the user context).
//!
//! The paper writes scopes in two styles (`crimerank`, `property.type`,
//! `property`); canonical form strips the target-relation prefix from
//! attribute scopes and keeps the bare relation name for relation-level
//! criteria, so `completeness(property.street)` and
//! `completeness(street)` refer to the same criterion.

use vada_common::Result;
use vada_context::Criterion;
use vada_kb::PairwiseStatement;

/// Canonicalise one criterion against the target relation name.
pub fn canonicalize(c: &Criterion, target: &str) -> Criterion {
    if c.scope == target {
        return c.clone();
    }
    let scope = match c.scope.strip_prefix(&format!("{target}.")) {
        Some(attr) => attr.to_string(),
        None => c.scope_attr().to_string(),
    };
    Criterion::new(c.metric.clone(), scope)
}

/// Canonicalise the scopes inside user-context statements.
pub fn canonicalize_statements(
    statements: &[PairwiseStatement],
    target: &str,
) -> Result<Vec<PairwiseStatement>> {
    statements
        .iter()
        .map(|s| {
            let more = canonicalize(&Criterion::parse(&s.more_important)?, target);
            let less = canonicalize(&Criterion::parse(&s.less_important)?, target);
            Ok(PairwiseStatement {
                more_important: more.to_string(),
                less_important: less.to_string(),
                strength: s.strength.clone(),
            })
        })
        .collect()
}

/// The criterion for completeness of a target attribute.
pub fn completeness(attr: &str) -> Criterion {
    Criterion::new("completeness", attr)
}

/// The criterion for accuracy of a target attribute.
pub fn accuracy(attr: &str) -> Criterion {
    Criterion::new("accuracy", attr)
}

/// The relation-level consistency criterion.
pub fn consistency(target: &str) -> Criterion {
    Criterion::new("consistency", target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_target_prefix() {
        let c = Criterion::parse("completeness(property.street)").unwrap();
        assert_eq!(canonicalize(&c, "property").to_string(), "completeness(street)");
    }

    #[test]
    fn keeps_relation_scope() {
        let c = Criterion::parse("consistency(property)").unwrap();
        assert_eq!(canonicalize(&c, "property").to_string(), "consistency(property)");
    }

    #[test]
    fn bare_attr_unchanged() {
        let c = Criterion::parse("completeness(crimerank)").unwrap();
        assert_eq!(canonicalize(&c, "property").to_string(), "completeness(crimerank)");
    }

    #[test]
    fn statements_canonicalised() {
        let stmts = vec![PairwiseStatement {
            more_important: "consistency(property)".into(),
            less_important: "completeness(property.bedrooms)".into(),
            strength: "strongly".into(),
        }];
        let out = canonicalize_statements(&stmts, "property").unwrap();
        assert_eq!(out[0].less_important, "completeness(bedrooms)");
        assert_eq!(out[0].more_important, "consistency(property)");
    }
}
