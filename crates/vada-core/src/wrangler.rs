//! The [`Wrangler`] facade: the end-user surface of the architecture,
//! driving the four pay-as-you-go steps of the demonstration (paper §3).

use std::sync::atomic::{AtomicU64, Ordering};

use vada_common::{
    Durability, Evaluation, Obs, ObsReport, Parallelism, QueryCaching, Relation, Result, Schema,
    Sharding,
};
use vada_kb::{ContextKind, FeedbackRecord, KnowledgeBase, PairwiseStatement};

use crate::network::SchedulingPolicy;
use crate::orchestrator::{Orchestrator, OrchestratorConfig};
use crate::registry::default_transducers;
use crate::trace::Trace;
use crate::transducer::Transducer;

/// What one `run` did.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Transducer executions in this run.
    pub executed: usize,
    /// Knowledge-base version after the run.
    pub kb_version: u64,
    /// Per-transducer execution counts over the whole session.
    pub trace_summary: String,
}

/// The end-user facade over the knowledge base and the orchestrator.
///
/// The intended call pattern follows the demo's steps:
///
/// 1. [`add_source`](Wrangler::add_source) +
///    [`set_target`](Wrangler::set_target), then [`run`](Wrangler::run) —
///    automatic bootstrapping;
/// 2. [`add_data_context`](Wrangler::add_data_context), `run` — matching,
///    CFD learning and repair are revisited with the new evidence;
/// 3. [`add_feedback`](Wrangler::add_feedback), `run` — annotations turn
///    into vetoes and match-score revisions;
/// 4. [`set_user_context`](Wrangler::set_user_context), `run` — mapping
///    selection re-optimises under the new weights.
#[derive(Debug)]
pub struct Wrangler {
    kb: KnowledgeBase,
    orchestrator: Orchestrator,
}

impl Default for Wrangler {
    fn default() -> Self {
        Wrangler::new()
    }
}

/// Distinguishes the WAL directories of wranglers created in the same
/// process when the env default ([`Durability::from_env`]) is in force.
static NEXT_KB_DIR: AtomicU64 = AtomicU64::new(0);

/// A fresh knowledge base honouring the `VADA_WAL` env default: durable
/// wranglers each get their own subdirectory (`kb-<pid>-<n>`) under the
/// configured base, so concurrent wranglers never share a log. An
/// unwritable default location degrades to in-memory rather than failing
/// construction; explicit opt-in via [`Wrangler::set_durability`] surfaces
/// the error instead.
fn kb_from_env() -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    if let Durability::Wal(base) = Durability::from_env() {
        let dir = base.join(format!(
            "kb-{}-{}",
            std::process::id(),
            NEXT_KB_DIR.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = kb.persist_to(dir);
    }
    kb
}

impl Wrangler {
    /// Honour the `VADA_OBS` env default: wire the orchestrator, the
    /// fleet, and the knowledge base to one shared registry (with the
    /// configured sink, if any). When the env leaves observability off,
    /// everything keeps its no-op/local default.
    fn finish(mut self) -> Wrangler {
        let obs = Obs::from_env();
        if obs.is_enabled() {
            self.set_obs(obs);
        }
        self
    }

    /// A wrangler with the default transducer fleet and generic policy.
    pub fn new() -> Wrangler {
        Wrangler {
            kb: kb_from_env(),
            orchestrator: Orchestrator::new(default_transducers()),
        }
        .finish()
    }

    /// A wrangler with an explicit network-transducer policy.
    pub fn with_policy(policy: Box<dyn SchedulingPolicy>) -> Wrangler {
        Wrangler {
            kb: kb_from_env(),
            orchestrator: Orchestrator::with_policy(default_transducers(), policy),
        }
        .finish()
    }

    /// A wrangler with a custom fleet (e.g. extended with user transducers).
    pub fn with_transducers(transducers: Vec<Box<dyn Transducer>>) -> Wrangler {
        Wrangler { kb: kb_from_env(), orchestrator: Orchestrator::new(transducers) }.finish()
    }

    /// A wrangler over an existing knowledge base — typically one recovered
    /// via [`KnowledgeBase::open`] — with the default fleet.
    pub fn with_kb(kb: KnowledgeBase) -> Wrangler {
        Wrangler { kb, orchestrator: Orchestrator::new(default_transducers()) }.finish()
    }

    /// Attach an observability registry: the orchestrator records a span
    /// per step, the fleet's substrates tally counters into it, and the
    /// knowledge base migrates its accumulated local tallies over. The
    /// registry observes — it never influences results, and a sink that
    /// fails or panics is detached rather than poisoning the run (see
    /// [`obs_health`](Wrangler::obs_health)).
    pub fn set_obs(&mut self, obs: Obs) {
        self.kb.set_obs(obs.clone());
        self.orchestrator.set_obs(obs);
    }

    /// The active observability registry (the disabled stub unless
    /// [`set_obs`](Wrangler::set_obs) or `VADA_OBS` wired a live one).
    pub fn obs(&self) -> &Obs {
        self.orchestrator.obs()
    }

    /// Counters, spans, and timings collected so far. With observability
    /// disabled this is the empty report; the knowledge base's always-on
    /// local tallies are still available via [`Wrangler::kb`].
    pub fn obs_report(&self) -> ObsReport {
        self.orchestrator.obs().report()
    }

    /// First sink failure, if any — sticky, mirroring
    /// [`KnowledgeBase::storage_health`]. A failing sink is detached and
    /// the run continues unchanged; this is where the detachment surfaces.
    pub fn obs_health(&self) -> Result<()> {
        self.orchestrator.obs().health()
    }

    /// Set the durability mode. [`Durability::Wal`] makes the knowledge
    /// base persistent under the given directory (every mutation is
    /// fsync'd to a write-ahead log before it is applied — see
    /// [`KnowledgeBase::persist_to`]); [`Durability::Off`] detaches the
    /// log, leaving its files on disk. Unlike the other knobs this one is
    /// consumed by the knowledge base itself, not broadcast to the
    /// transducer fleet: durability is a storage property, not an
    /// evaluation-strategy property.
    pub fn set_durability(&mut self, durability: Durability) -> Result<()> {
        match durability {
            Durability::Off => {
                self.kb.disable_durability();
                Ok(())
            }
            Durability::Wal(dir) => self.kb.persist_to(dir),
        }
    }

    /// Override orchestrator limits.
    pub fn set_orchestrator_config(&mut self, config: OrchestratorConfig) {
        self.orchestrator.set_config(config);
    }

    /// Set the parallelism level for every registered component. Safe to
    /// change at any point: parallel and sequential runs produce identical
    /// results, traces, and errors (the `parallel_equivalence` suite pins
    /// this).
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        let config = OrchestratorConfig { parallelism, ..self.orchestrator.config().clone() };
        self.orchestrator.set_config(config);
    }

    /// Set the evaluation mode for every registered component. Safe to
    /// change at any point: incremental and full evaluation produce
    /// identical results, traces, and errors (the `incremental_equivalence`
    /// suite pins this); incremental re-runs after small knowledge-base
    /// edits cost O(change).
    pub fn set_evaluation(&mut self, evaluation: Evaluation) {
        let config = OrchestratorConfig { evaluation, ..self.orchestrator.config().clone() };
        self.orchestrator.set_config(config);
    }

    /// Set the sharding level for every registered component. Safe to
    /// change at any point: sharded and monolithic scans produce identical
    /// results, traces, and errors at any shard count (the
    /// `shard_equivalence` suite pins this); under sharding, knowledge-base
    /// scans run one scheduling unit per shard and the per-shard views stay
    /// in step with the catalog via the delta journal.
    pub fn set_sharding(&mut self, sharding: Sharding) {
        let config = OrchestratorConfig { sharding, ..self.orchestrator.config().clone() };
        self.orchestrator.set_config(config);
    }

    /// Set the query-caching mode. Under [`QueryCaching::Persistent`] the
    /// knowledge base keeps hash indexes over its dependency-fact view
    /// alive across [`KnowledgeBase::query`] calls, and the transducers
    /// running directed one-shot Datalog executions keep theirs between
    /// runs, revalidated against the delta journal's identity. Safe to
    /// change at any point: cached and uncached paths produce identical
    /// results, traces, and errors (the `query_equivalence` suite pins
    /// this); the `magic.cache.{hits,misses,invalidations}` counters
    /// record how the cache behaved. Defaults to the `VADA_QUERY_CACHE`
    /// override.
    pub fn set_query_caching(&mut self, caching: QueryCaching) {
        self.kb.set_query_caching(caching);
        let config =
            OrchestratorConfig { query_caching: caching, ..self.orchestrator.config().clone() };
        self.orchestrator.set_config(config);
    }

    /// Register a source relation.
    pub fn add_source(&mut self, rel: Relation) {
        self.kb.log("user", "register_source", rel.name());
        self.kb.register_source(rel);
    }

    /// Remove rows from a registered relation (the paper's feedback loop:
    /// users retract low-quality rows and re-wrangle). Journalled as a
    /// row-level retraction, so under [`Evaluation::Incremental`] the next
    /// run re-derives O(rows removed), not O(database). Returns the
    /// removed tuples in ascending row order.
    pub fn remove_source_rows(&mut self, name: &str, rows: &[usize]) -> Result<Vec<vada_common::Tuple>> {
        let removed = self.kb.remove_rows(name, rows)?;
        self.kb.log("user", "remove_rows", &format!("{name}:{}", removed.len()));
        Ok(removed)
    }

    /// Rewrite rows of a registered source in place (`edits` pairs a row
    /// index with its new tuple). Journalled as a row-level rewrite; tail
    /// rewrites replay incrementally, mid-relation rewrites rebuild.
    pub fn update_source_rows(&mut self, name: &str, edits: &[(usize, vada_common::Tuple)]) -> Result<()> {
        self.kb.update_source(name, edits)?;
        self.kb.log("user", "update_rows", &format!("{name}:{}", edits.len()));
        Ok(())
    }

    /// Register the target schema.
    pub fn set_target(&mut self, schema: Schema) {
        self.kb.log("user", "register_target", &schema.name);
        self.kb.register_target_schema(schema);
    }

    /// Associate a data-context relation with the target schema
    /// (step 2 of the demo).
    pub fn add_data_context(
        &mut self,
        rel: Relation,
        kind: ContextKind,
        bindings: &[(&str, &str)],
    ) -> Result<()> {
        self.kb.log("user", "register_data_context", rel.name());
        self.kb.register_data_context(rel, kind, bindings)
    }

    /// Assert feedback annotations (step 3).
    pub fn add_feedback(&mut self, records: impl IntoIterator<Item = FeedbackRecord>) {
        let mut n = 0usize;
        for r in records {
            self.kb.add_feedback(r);
            n += 1;
        }
        self.kb.log("user", "feedback", &n.to_string());
    }

    /// Set the user context (step 4).
    pub fn set_user_context(&mut self, statements: Vec<PairwiseStatement>) {
        self.kb.log("user", "user_context", &statements.len().to_string());
        self.kb.set_user_context(statements);
    }

    /// Orchestrate to fixpoint with whatever information is currently
    /// available.
    pub fn run(&mut self) -> Result<RunReport> {
        // structural root span: every `orchestrator/step` child (and the
        // mode-scoped subtrees below them) groups under one run
        let obs = self.orchestrator.obs().clone();
        let executed = {
            let span = obs.span("orchestrator/run");
            let executed = self.orchestrator.run_to_fixpoint(&mut self.kb)?;
            span.attr("executed", executed);
            executed
        };
        // push the counter snapshot out through the sink (if one is
        // attached) so an exported JSON stream is complete per run
        self.orchestrator.obs().flush();
        let trace_summary = self
            .orchestrator
            .trace()
            .executions_by_transducer()
            .into_iter()
            .map(|(name, n)| format!("{name}×{n}"))
            .collect::<Vec<_>>()
            .join(", ");
        Ok(RunReport { executed, kb_version: self.kb.version(), trace_summary })
    }

    /// The current wrangling result, if one has been materialised.
    pub fn result(&self) -> Option<&Relation> {
        let target = self.kb.target_schema()?;
        self.kb.relation(&target.name).ok()
    }

    /// The knowledge base (read access).
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// The knowledge base (mutable access, for advanced scenarios).
    pub fn kb_mut(&mut self) -> &mut KnowledgeBase {
        &mut self.kb
    }

    /// The orchestration trace.
    pub fn trace(&self) -> &Trace {
        self.orchestrator.trace()
    }

    /// The registered transducer fleet.
    pub fn transducers(&self) -> &[Box<dyn Transducer>] {
        self.orchestrator.transducers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::{tuple, AttrType, Value};

    fn sources() -> (Relation, Relation) {
        let mut rm = Relation::empty(Schema::all_str(
            "rightmove",
            &["price", "street", "postcode", "bedrooms"],
        ));
        rm.push(tuple!["250000", "1 high st", "M1 1AA", "3"]).unwrap();
        rm.push(tuple!["£300,000", "2 park rd", "M1 1AB", "18"]).unwrap();
        rm.push(tuple!["410000", "3 kings ave", "EH1 1AA", "4"]).unwrap();
        let mut dep = Relation::empty(Schema::all_str("deprivation", &["postcode", "crime"]));
        dep.push(tuple!["M1", "500"]).unwrap();
        (rm, dep)
    }

    fn target() -> Schema {
        Schema::new(
            "property",
            [
                ("street", AttrType::Str),
                ("postcode", AttrType::Str),
                ("bedrooms", AttrType::Int),
                ("price", AttrType::Int),
                ("crimerank", AttrType::Int),
            ],
        )
        .unwrap()
    }

    #[test]
    fn bootstrap_produces_a_result() {
        let mut w = Wrangler::new();
        let (rm, dep) = sources();
        w.add_source(rm);
        w.add_source(dep);
        w.set_target(target());
        let report = w.run().unwrap();
        assert!(report.executed >= 4, "{}", report.trace_summary);
        let result = w.result().expect("bootstrap materialises a result");
        assert_eq!(result.len(), 3);
        // crimerank joined for M1 rows
        let crime: Vec<&Value> = result.iter().map(|t| &t[4]).collect();
        assert!(crime.iter().any(|v| **v == Value::Int(500)));
        assert!(crime.iter().any(|v| v.is_null()));
        // second run with no new information is a no-op
        let again = w.run().unwrap();
        assert_eq!(again.executed, 0);
    }

    #[test]
    fn data_context_triggers_revisiting() {
        let mut w = Wrangler::new();
        let (rm, dep) = sources();
        w.add_source(rm);
        w.add_source(dep);
        w.set_target(target());
        w.run().unwrap();
        let steps_before = w.trace().len();

        let mut addr = Relation::empty(Schema::all_str(
            "address",
            &["street", "city", "postcode"],
        ));
        for (s, c, p) in [
            ("1 high st", "manchester", "M1 1AA"),
            ("2 park rd", "manchester", "M1 1AB"),
            ("3 kings ave", "edinburgh", "EH1 1AA"),
            ("4 mill ln", "manchester", "M1 1AC"),
            ("5 queens dr", "edinburgh", "EH1 1AB"),
        ] {
            addr.push(tuple![s, c, p]).unwrap();
        }
        w.add_data_context(
            addr,
            ContextKind::Reference,
            &[("street", "street"), ("postcode", "postcode")],
        )
        .unwrap();
        let report = w.run().unwrap();
        assert!(report.executed > 0);
        // instance matching and cfd learning must have joined the party
        let names: Vec<String> = w.trace().entries()[steps_before..]
            .iter()
            .map(|e| e.transducer.clone())
            .collect();
        assert!(names.contains(&"instance_matching".to_string()), "{names:?}");
        assert!(names.contains(&"cfd_learning".to_string()), "{names:?}");
    }

    #[test]
    fn user_context_changes_reselect() {
        let mut w = Wrangler::new();
        let (rm, dep) = sources();
        w.add_source(rm);
        w.add_source(dep);
        w.set_target(target());
        w.run().unwrap();
        w.set_user_context(vec![PairwiseStatement {
            more_important: "completeness(crimerank)".into(),
            less_important: "completeness(bedrooms)".into(),
            strength: "very strongly".into(),
        }]);
        let report = w.run().unwrap();
        // selection must have re-run under the new weights
        assert!(report.trace_summary.contains("mapping_selection"));
    }
}
