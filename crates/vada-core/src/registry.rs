//! The transducer registry: the default fleet and the catalogue used to
//! regenerate the paper's Table 1.

use crate::components::{
    CfdLearning, CsvIngestion, DataFusion, DuplicateDetection, FeedbackRepair, InstanceMatching,
    MappingEvaluation, MappingExecution, MappingGeneration, MappingQuality, MappingSelection,
    ResultRepair, SchemaMatching, SourceProfiling,
};
use crate::transducer::Transducer;

/// The default transducer fleet covering the full wrangling lifecycle.
/// The architecture is extensible — callers can append their own
/// transducers to the returned vector.
pub fn default_transducers() -> Vec<Box<dyn Transducer>> {
    vec![
        Box::new(CsvIngestion::default()),
        Box::new(FeedbackRepair::default()),
        Box::new(MappingEvaluation::default()),
        Box::new(SchemaMatching::default()),
        Box::new(InstanceMatching::default()),
        Box::new(MappingGeneration::default()),
        Box::new(CfdLearning::default()),
        Box::new(SourceProfiling),
        Box::new(MappingQuality::default()),
        Box::new(MappingSelection),
        Box::new(MappingExecution::default()),
        Box::new(ResultRepair::default()),
        Box::new(DuplicateDetection::default()),
        Box::new(DataFusion::default()),
    ]
}

/// A row of the transducer catalogue (the paper's Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogRow {
    /// Activity tag.
    pub activity: String,
    /// Transducer name.
    pub transducer: String,
    /// Declarative input dependency.
    pub input_dependency: String,
}

/// Introspects a transducer fleet into the dependency catalogue.
#[derive(Debug, Default)]
pub struct TransducerCatalog;

impl TransducerCatalog {
    /// Catalogue rows for a fleet, in activity order.
    pub fn rows(transducers: &[Box<dyn Transducer>]) -> Vec<CatalogRow> {
        let mut rows: Vec<CatalogRow> = transducers
            .iter()
            .map(|t| CatalogRow {
                activity: t.activity().tag().to_string(),
                transducer: t.name().to_string(),
                input_dependency: t.input_dependency().to_string(),
            })
            .collect();
        rows.sort_by(|a, b| a.activity.cmp(&b.activity).then(a.transducer.cmp(&b.transducer)));
        rows
    }

    /// Render the catalogue as an aligned text table (Table 1 reproduction).
    pub fn render(transducers: &[Box<dyn Transducer>]) -> String {
        let rows = Self::rows(transducers);
        let w_act = rows.iter().map(|r| r.activity.len()).max().unwrap_or(8).max("Activity".len());
        let w_name = rows
            .iter()
            .map(|r| r.transducer.len())
            .max()
            .unwrap_or(10)
            .max("Transducer".len());
        let mut out = String::new();
        out.push_str(&format!(
            "{:<w_act$}  {:<w_name$}  Input Dependencies (Datalog over the KB)\n",
            "Activity", "Transducer"
        ));
        out.push_str(&"-".repeat(w_act + w_name + 44));
        out.push('\n');
        for r in rows {
            out.push_str(&format!(
                "{:<w_act$}  {:<w_name$}  {}\n",
                r.activity, r.transducer, r.input_dependency
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_fleet_covers_all_activities() {
        let fleet = default_transducers();
        let activities: std::collections::BTreeSet<String> = fleet
            .iter()
            .map(|t| t.activity().tag().to_string())
            .collect();
        for expected in [
            "extraction", "feedback", "matching", "mapping", "quality", "selection",
            "execution", "repair", "fusion",
        ] {
            assert!(activities.contains(expected), "missing activity {expected}");
        }
        assert_eq!(fleet.len(), 14);
    }

    #[test]
    fn names_are_unique() {
        let fleet = default_transducers();
        let names: std::collections::HashSet<&str> = fleet.iter().map(|t| t.name()).collect();
        assert_eq!(names.len(), fleet.len());
    }

    #[test]
    fn catalogue_renders_table1() {
        let fleet = default_transducers();
        let table = TransducerCatalog::render(&fleet);
        assert!(table.contains("schema_matching"));
        assert!(table.contains("instance_matching"));
        assert!(table.contains("cfd_learning"));
        assert!(table.contains("mapping_selection"));
        // the paper's Table 1 rows map onto these dependencies
        assert!(table.contains("has_instances"));
        assert!(table.contains(r#"quality("mapping""#));
    }
}
