//! Network transducers (paper §2.4): "it is the responsibility of a
//! network transducer to select between the executable transducers".
//!
//! Two policies, matching the paper's examples:
//!
//! * [`GenericPolicy`] — "choosing transducers for one type of
//!   functionality before another, such as data extraction before mapping,
//!   and then using a priority scheme to make more local decisions": order
//!   by [`Activity`](crate::transducer::Activity), then by registration order.
//! * [`SpecificPolicy`] — "prefer instance level matchers to schema level
//!   matchers": a name-priority list consulted before the generic order.

use crate::transducer::Transducer;

/// Chooses which eligible transducer runs next.
pub trait SchedulingPolicy: std::fmt::Debug {
    /// Pick one index out of `eligible` (indices into `transducers`).
    /// `eligible` is non-empty.
    fn choose(
        &self,
        eligible: &[usize],
        transducers: &[Box<dyn Transducer>],
    ) -> usize;

    /// Policy name for the trace.
    fn name(&self) -> &str;
}

/// Activity-ordered scheduling with registration order as tiebreak.
#[derive(Debug, Default, Clone)]
pub struct GenericPolicy;

impl SchedulingPolicy for GenericPolicy {
    fn choose(&self, eligible: &[usize], transducers: &[Box<dyn Transducer>]) -> usize {
        *eligible
            .iter()
            .min_by_key(|&&i| (transducers[i].activity(), i))
            .expect("eligible is non-empty")
    }

    fn name(&self) -> &str {
        "generic"
    }
}

/// A name-priority list overriding the generic order; unlisted transducers
/// fall back to activity order *after* all listed ones.
#[derive(Debug, Clone)]
pub struct SpecificPolicy {
    priorities: Vec<String>,
}

impl SpecificPolicy {
    /// Build from a priority list, most preferred first.
    pub fn new<S: Into<String>>(priorities: impl IntoIterator<Item = S>) -> SpecificPolicy {
        SpecificPolicy { priorities: priorities.into_iter().map(Into::into).collect() }
    }

    /// The paper's example: prefer instance-level matchers to schema-level
    /// matchers.
    pub fn prefer_instance_matchers() -> SpecificPolicy {
        SpecificPolicy::new(["instance_matching", "schema_matching"])
    }

    fn rank(&self, name: &str) -> usize {
        self.priorities
            .iter()
            .position(|p| p == name)
            .unwrap_or(self.priorities.len())
    }
}

impl SchedulingPolicy for SpecificPolicy {
    fn choose(&self, eligible: &[usize], transducers: &[Box<dyn Transducer>]) -> usize {
        *eligible
            .iter()
            .min_by_key(|&&i| {
                (
                    self.rank(transducers[i].name()),
                    transducers[i].activity(),
                    i,
                )
            })
            .expect("eligible is non-empty")
    }

    fn name(&self) -> &str {
        "specific"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transducer::{Activity, RunOutcome};
    use vada_common::Result;
    use vada_kb::KnowledgeBase;

    #[derive(Debug)]
    struct Dummy {
        name: &'static str,
        activity: Activity,
    }

    impl Transducer for Dummy {
        fn name(&self) -> &str {
            self.name
        }
        fn activity(&self) -> Activity {
            self.activity
        }
        fn input_dependency(&self) -> &str {
            "relation(_, _, _)"
        }
        fn input_aspects(&self) -> &'static [&'static str] {
            &["relations"]
        }
        fn run(&mut self, _kb: &mut KnowledgeBase) -> Result<RunOutcome> {
            Ok(RunOutcome::noop("dummy"))
        }
    }

    fn fleet() -> Vec<Box<dyn Transducer>> {
        vec![
            Box::new(Dummy { name: "mapping_generation", activity: Activity::Mapping }),
            Box::new(Dummy { name: "schema_matching", activity: Activity::Matching }),
            Box::new(Dummy { name: "instance_matching", activity: Activity::Matching }),
        ]
    }

    #[test]
    fn generic_prefers_earlier_activity_then_registration() {
        let t = fleet();
        let chosen = GenericPolicy.choose(&[0, 1, 2], &t);
        assert_eq!(t[chosen].name(), "schema_matching"); // matching < mapping, index 1 < 2
    }

    #[test]
    fn specific_prefers_listed_names() {
        let t = fleet();
        let p = SpecificPolicy::prefer_instance_matchers();
        let chosen = p.choose(&[0, 1, 2], &t);
        assert_eq!(t[chosen].name(), "instance_matching");
        // unlisted-only eligibility falls back to activity order
        let chosen = p.choose(&[0], &t);
        assert_eq!(t[chosen].name(), "mapping_generation");
    }
}
