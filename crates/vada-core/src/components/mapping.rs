//! Mapping transducers: generation, selection, execution.

use vada_common::{Evaluation, Parallelism, QueryCaching, Relation, Result, Sharding, VadaError};
use vada_context::UserContext;
use vada_kb::{KnowledgeBase, ShardedStore};
use vada_map::{
    execute_mapping_cached, generate_candidates, rank_mappings, ExecuteConfig, IncrementalExecutor,
    IndexCache, MapGenConfig, MappingScore,
};

use crate::components::feedback::apply_vetoes;
use crate::criteria::canonicalize_statements;
use crate::transducer::{Activity, RunOutcome, Transducer};

/// Name of the intermediate relation holding a candidate's materialisation.
pub fn candidate_relation_name(mapping_id: &str) -> String {
    format!("candidate_{mapping_id}")
}

/// Generate candidate mappings from the current matches (paper Table 1:
/// "Mapping Generation — Src/Target Schemas"; the schemas enter through
/// the matches over them).
#[derive(Debug, Default)]
pub struct MappingGeneration {
    /// Generation configuration.
    pub config: MapGenConfig,
}

impl Transducer for MappingGeneration {
    fn name(&self) -> &str {
        "mapping_generation"
    }

    fn activity(&self) -> Activity {
        Activity::Mapping
    }

    fn input_dependency(&self) -> &str {
        r#"match(_, _, _, _, S, _), S >= 0.5, target_attr(_, _, _, _)"#
    }

    fn input_aspects(&self) -> &'static [&'static str] {
        &["matches", "target", "relations"]
    }

    fn run(&mut self, kb: &mut KnowledgeBase) -> Result<RunOutcome> {
        let candidates = generate_candidates(&self.config, kb)?;
        kb.clear_mappings();
        kb.clear_quality("mapping");
        let n = candidates.len();
        for c in candidates {
            kb.add_mapping(c);
        }
        kb.log("mapping_generation", "add_mapping", &n.to_string());
        Ok(RunOutcome::new(format!("{n} candidate mappings"), n))
    }
}

/// Select among candidate mappings by weighted utility over their quality
/// metrics (paper Table 1: "Mapping Selection — Quality Metrics"; §3 step
/// 4: weights derived from the user context's pairwise comparisons).
#[derive(Debug, Default)]
pub struct MappingSelection;

impl Transducer for MappingSelection {
    fn name(&self) -> &str {
        "mapping_selection"
    }

    fn activity(&self) -> Activity {
        Activity::Selection
    }

    fn input_dependency(&self) -> &str {
        r#"quality("mapping", _, _, _, _)"#
    }

    fn input_aspects(&self) -> &'static [&'static str] {
        &["quality", "user_context"]
    }

    fn run(&mut self, kb: &mut KnowledgeBase) -> Result<RunOutcome> {
        let target = kb
            .target_schema()
            .ok_or_else(|| VadaError::Kb("no target schema".into()))?
            .name
            .clone();
        // per-mapping criterion scores from the quality facts
        let mut scores: std::collections::BTreeMap<String, Vec<(String, f64)>> =
            Default::default();
        let mut criteria: std::collections::BTreeSet<String> = Default::default();
        for q in kb.quality_facts() {
            if q.entity_kind == "mapping" {
                scores
                    .entry(q.entity.clone())
                    .or_default()
                    .push((q.criterion.clone(), q.value));
                criteria.insert(q.criterion.clone());
            }
        }
        if scores.is_empty() {
            return Ok(RunOutcome::noop("no mapping quality metrics"));
        }
        let candidates: Vec<MappingScore> = scores
            .into_iter()
            .map(|(id, pairs)| MappingScore {
                mapping_id: id,
                scores: pairs.into_iter().collect(),
            })
            .collect();
        // derive the user context; without statements, weigh all criteria
        // equally
        let extra: Vec<vada_context::Criterion> = criteria
            .iter()
            .filter_map(|c| vada_context::Criterion::parse(c).ok())
            .collect();
        let statements = canonicalize_statements(kb.user_context(), &target)?;
        let ctx = if statements.is_empty() {
            UserContext::uniform(extra)?
        } else {
            UserContext::derive(&statements, &extra)?
        };
        let ranked = rank_mappings(&candidates, &ctx);
        let (best, utility) = ranked.first().expect("non-empty candidates").clone();
        let changed = kb.selected_mapping() != Some(best.as_str());
        if changed {
            kb.select_mapping(&best)?;
            kb.log("mapping_selection", "select_mapping", &best);
        }
        Ok(RunOutcome::new(
            format!(
                "selected {best} (utility {utility:.3}) out of {} candidates{}",
                ranked.len(),
                if changed { "" } else { " — unchanged" }
            ),
            usize::from(changed),
        ))
    }
}

/// Execute the selected mapping and materialise the result (re-applying
/// any feedback-derived vetoes so user corrections survive
/// re-materialisation). Under [`Evaluation::Incremental`] the Datalog
/// materialization persists between runs and only knowledge-base deltas
/// are re-derived — row appends through the semi-naive fast path, row
/// removals and tail rewrites through the counting/DRed retraction path —
/// with the output byte-identical either way.
#[derive(Debug, Default)]
pub struct MappingExecution {
    /// Execution configuration.
    pub config: ExecuteConfig,
    evaluation: Evaluation,
    executor: IncrementalExecutor,
    /// Persistent sharded views of the catalog (created on demand when
    /// sharding is on): synced O(change) from the delta journal between
    /// runs, consumed by the per-shard input-database scans.
    store: Option<ShardedStore>,
    /// Persistent hash indexes for the directed one-shot execution path,
    /// revalidated per run against the journal identity (see
    /// [`execute_mapping_cached`]); idle unless
    /// [`ExecuteConfig::query_caching`] is on.
    index_cache: IndexCache,
}

/// The persistent [`ShardedStore`] a mapping-executing transducer scans
/// through, (re)created when the broadcast sharding level changes.
pub(crate) fn sharded_store(
    store: &mut Option<ShardedStore>,
    sharding: Sharding,
) -> Option<&mut ShardedStore> {
    if !sharding.is_sharded() {
        *store = None;
        return None;
    }
    if store.as_ref().map(|s| s.sharding()) != Some(sharding) {
        *store = Some(ShardedStore::new(sharding));
    }
    store.as_mut()
}

impl Transducer for MappingExecution {
    fn name(&self) -> &str {
        "mapping_execution"
    }

    fn activity(&self) -> Activity {
        Activity::Execution
    }

    fn input_dependency(&self) -> &str {
        "selected_mapping(_)"
    }

    fn input_aspects(&self) -> &'static [&'static str] {
        // NOT `feedback`: vetoes reach the current result through the
        // feedback_repair transducer; execution re-applies them only when a
        // re-materialisation happens for structural reasons.
        &["selection", "mappings", "relations"]
    }

    fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.config.engine.parallelism = parallelism;
    }

    fn set_evaluation(&mut self, evaluation: Evaluation) {
        self.evaluation = evaluation;
    }

    fn set_sharding(&mut self, sharding: Sharding) {
        self.config.sharding = sharding;
    }

    fn set_obs(&mut self, obs: vada_common::Obs) {
        self.config.engine.obs = obs;
    }

    fn set_query_caching(&mut self, caching: QueryCaching) {
        self.config.query_caching = caching;
    }

    fn run(&mut self, kb: &mut KnowledgeBase) -> Result<RunOutcome> {
        let id = kb
            .selected_mapping()
            .expect("dependency guarantees a selection")
            .to_string();
        let mapping = kb
            .get_mapping(&id)
            .ok_or_else(|| VadaError::Kb(format!("selected mapping `{id}` vanished")))?
            .clone();
        // reuse the candidate materialisation when the quality transducer
        // already executed this mapping
        let store = sharded_store(&mut self.store, self.config.sharding);
        let mut result: Relation = match kb.relation(&candidate_relation_name(&id)) {
            Ok(cached) => {
                Relation::from_tuples(cached.schema().renamed(&mapping.target), cached.tuples().to_vec())?
            }
            Err(_) if self.evaluation.is_incremental() => {
                self.executor.execute_with(&self.config, &mapping, kb, store)?
            }
            Err(_) => {
                execute_mapping_cached(&self.config, &mapping, kb, store, &mut self.index_cache)?
            }
        };
        let vetoed = apply_vetoes(&mut result, kb.vetoes());
        let rows = result.len();
        kb.put_result(result);
        kb.log("mapping_execution", "put_result", &id);
        Ok(RunOutcome::new(
            format!("materialised {rows} rows from {id} ({vetoed} cells vetoed)"),
            rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::{tuple, AttrType, Schema};
    use vada_kb::{MatchDef, QualityFact};

    fn kb_ready_for_mapping() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        let mut rm = Relation::empty(Schema::all_str(
            "rightmove",
            &["price", "street", "postcode"],
        ));
        rm.push(tuple!["250000", "12 high st", "M1 1AA"]).unwrap();
        rm.push(tuple!["£300,000", "9 park rd", "EH1 1AA"]).unwrap();
        kb.register_source(rm);
        kb.register_target_schema(
            Schema::new(
                "property",
                [
                    ("street", AttrType::Str),
                    ("postcode", AttrType::Str),
                    ("price", AttrType::Int),
                ],
            )
            .unwrap(),
        );
        for (id, src, tgt) in [
            ("m0", "price", "price"),
            ("m1", "street", "street"),
            ("m2", "postcode", "postcode"),
        ] {
            kb.add_match(MatchDef {
                id: id.into(),
                src_rel: "rightmove".into(),
                src_attr: src.into(),
                tgt_attr: tgt.into(),
                score: 0.95,
                matcher: "schema".into(),
            });
        }
        kb
    }

    #[test]
    fn generation_selection_execution_chain() {
        let mut kb = kb_ready_for_mapping();
        let mut gen = MappingGeneration::default();
        assert!(gen.ready(&kb).unwrap());
        let out = gen.run(&mut kb).unwrap();
        assert_eq!(out.writes, 1);
        let mapping_id = kb.mappings().next().unwrap().id.clone();

        // selection needs quality facts
        let mut sel = MappingSelection;
        assert!(!sel.ready(&kb).unwrap());
        kb.add_quality(QualityFact {
            entity_kind: "mapping".into(),
            entity: mapping_id.clone(),
            metric: "completeness".into(),
            criterion: "completeness(price)".into(),
            value: 0.9,
        });
        assert!(sel.ready(&kb).unwrap());
        let out = sel.run(&mut kb).unwrap();
        assert_eq!(kb.selected_mapping(), Some(mapping_id.as_str()));
        assert_eq!(out.writes, 1);
        // reselecting the same mapping writes nothing
        let out = sel.run(&mut kb).unwrap();
        assert_eq!(out.writes, 0);

        let mut exec = MappingExecution::default();
        assert!(exec.ready(&kb).unwrap());
        exec.run(&mut kb).unwrap();
        let result = kb.relation("property").unwrap();
        assert_eq!(result.len(), 2);
        // price coerced to int, currency stripped
        let prices: Vec<i64> = result
            .iter()
            .filter_map(|t| t[2].as_int())
            .collect();
        assert!(prices.contains(&250_000) && prices.contains(&300_000));
    }

    #[test]
    fn generation_clears_stale_candidates() {
        let mut kb = kb_ready_for_mapping();
        let mut gen = MappingGeneration::default();
        gen.run(&mut kb).unwrap();
        let first: Vec<String> = kb.mappings().map(|m| m.id.clone()).collect();
        gen.run(&mut kb).unwrap();
        let second: Vec<String> = kb.mappings().map(|m| m.id.clone()).collect();
        assert_eq!(second.len(), 1);
        assert_ne!(first, second, "regeneration replaces candidates");
    }
}
