//! Matching transducers: schema-level and instance-level.

use vada_common::Result;
use vada_kb::{KnowledgeBase, MatchDef};
use vada_match::{
    instance_match, schema_match, ContextColumn, InstanceMatchConfig, SchemaMatchConfig,
};

use crate::transducer::{Activity, RunOutcome, Transducer};

/// Name-based schema matching (paper Table 1: needs source & target
/// schemas).
#[derive(Debug, Default)]
pub struct SchemaMatching {
    /// Matcher configuration.
    pub config: SchemaMatchConfig,
}

impl Transducer for SchemaMatching {
    fn name(&self) -> &str {
        "schema_matching"
    }

    fn activity(&self) -> Activity {
        Activity::Matching
    }

    fn input_dependency(&self) -> &str {
        r#"relation(R, "source", _), attr(R, _, _, _), target_attr(_, _, _, _)"#
    }

    fn input_aspects(&self) -> &'static [&'static str] {
        &["relations", "target"]
    }

    fn run(&mut self, kb: &mut KnowledgeBase) -> Result<RunOutcome> {
        let target = kb
            .target_schema()
            .expect("dependency guarantees a target schema")
            .clone();
        let mut written = 0usize;
        for source in kb.source_names() {
            let schema = kb.relation(&source)?.schema().clone();
            for corr in schema_match(&self.config, &schema, &target) {
                let id = format!("schema:{}.{}->{}", corr.src_rel, corr.src_attr, corr.tgt_attr);
                kb.add_match(MatchDef {
                    id,
                    src_rel: corr.src_rel,
                    src_attr: corr.src_attr,
                    tgt_attr: corr.tgt_attr,
                    score: corr.score,
                    matcher: "schema".into(),
                });
                written += 1;
            }
        }
        kb.log("schema_matching", "add_match", &written.to_string());
        Ok(RunOutcome::new(
            format!("{written} schema-level correspondences"),
            written,
        ))
    }
}

/// Instance-based matching: needs instances on both sides; the target side
/// gets them from data-context relations bound to target attributes
/// (paper §2.2: revisiting matching "to include the use of the instance
/// data").
#[derive(Debug, Default)]
pub struct InstanceMatching {
    /// Matcher configuration.
    pub config: InstanceMatchConfig,
}

impl Transducer for InstanceMatching {
    fn name(&self) -> &str {
        "instance_matching"
    }

    fn activity(&self) -> Activity {
        Activity::Matching
    }

    fn input_dependency(&self) -> &str {
        r#"relation(R, "source", _), has_instances(R), data_context(C, _), has_instances(C), context_binding(C, _, _)"#
    }

    fn input_aspects(&self) -> &'static [&'static str] {
        &["relations", "data_context"]
    }

    fn run(&mut self, kb: &mut KnowledgeBase) -> Result<RunOutcome> {
        // target instances from context bindings
        let mut columns: Vec<ContextColumn> = Vec::new();
        for (ctx_rel, ctx_attr, tgt_attr) in kb.context_bindings().to_vec() {
            let rel = kb.relation(&ctx_rel)?;
            columns.push(ContextColumn::from_relation(rel, &ctx_attr, &tgt_attr));
        }
        let mut written = 0usize;
        for source in kb.source_names() {
            let rel = kb.relation(&source)?.clone();
            for corr in instance_match(&self.config, &rel, &columns) {
                let id = format!(
                    "instance:{}.{}->{}",
                    corr.src_rel, corr.src_attr, corr.tgt_attr
                );
                kb.add_match(MatchDef {
                    id,
                    src_rel: corr.src_rel,
                    src_attr: corr.src_attr,
                    tgt_attr: corr.tgt_attr,
                    score: corr.score,
                    matcher: "instance".into(),
                });
                written += 1;
            }
        }
        kb.log("instance_matching", "add_match", &written.to_string());
        Ok(RunOutcome::new(
            format!("{written} instance-level correspondences"),
            written,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::{tuple, Relation, Schema};
    use vada_kb::ContextKind;

    fn kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        let mut rm = Relation::empty(Schema::all_str(
            "rightmove",
            &["price", "street", "postcode"],
        ));
        rm.push(tuple!["250000", "12 high st", "M1 1AA"]).unwrap();
        kb.register_source(rm);
        kb.register_target_schema(Schema::all_str(
            "property",
            &["street", "postcode", "price"],
        ));
        kb
    }

    #[test]
    fn schema_matching_readiness_and_run() {
        let mut kb = kb();
        let mut t = SchemaMatching::default();
        assert!(t.ready(&kb).unwrap());
        let out = t.run(&mut kb).unwrap();
        assert!(out.writes >= 3, "{}", out.summary);
        assert!(kb.matches().any(|m| m.src_attr == "price" && m.tgt_attr == "price"));
    }

    #[test]
    fn schema_matching_not_ready_without_target() {
        let mut kb = KnowledgeBase::new();
        let mut rm = Relation::empty(Schema::all_str("rightmove", &["price"]));
        rm.push(tuple!["1"]).unwrap();
        kb.register_source(rm);
        assert!(!SchemaMatching::default().ready(&kb).unwrap());
    }

    #[test]
    fn instance_matching_needs_context_instances() {
        let mut kb = kb();
        let t = InstanceMatching::default();
        assert!(!t.ready(&kb).unwrap(), "no data context yet");
        let mut addr = Relation::empty(Schema::all_str("address", &["street", "postcode"]));
        addr.push(tuple!["12 high st", "M1 1AA"]).unwrap();
        kb.register_data_context(
            addr,
            ContextKind::Reference,
            &[("street", "street"), ("postcode", "postcode")],
        )
        .unwrap();
        let mut t = InstanceMatching::default();
        assert!(t.ready(&kb).unwrap());
        let out = t.run(&mut kb).unwrap();
        assert!(out.writes >= 2, "{}", out.summary);
        assert!(kb.matches().any(|m| m.matcher == "instance" && m.tgt_attr == "postcode"));
    }

    #[test]
    fn rerun_replaces_not_duplicates() {
        let mut kb = kb();
        let mut t = SchemaMatching::default();
        t.run(&mut kb).unwrap();
        let n1 = kb.matches().count();
        t.run(&mut kb).unwrap();
        assert_eq!(kb.matches().count(), n1, "deterministic ids replace");
    }
}
