//! Fusion transducers: duplicate detection, then data fusion — split in
//! two exactly as the paper sketches ("a data fusion transducer may start
//! to evaluate when duplicates have been detected").

use vada_common::{AttrType, Parallelism, Relation, Result, Schema, Sharding, Tuple, Value};
use vada_fusion::{
    cluster_relation_sharded, fuse_clusters, ClusterConfig, FieldKind, FieldSpec, Survivorship,
};
use vada_kb::KnowledgeBase;

use crate::transducer::{Activity, RunOutcome, Transducer};

/// Name of the intermediate relation carrying detected clusters.
pub const CLUSTERS_REL: &str = "duplicate_clusters";

/// Build a sensible field-comparison spec for a result schema: street-like
/// text heavy, numeric attributes numeric, postcode exact, long text
/// ignored.
fn field_spec_for(schema: &Schema) -> Vec<FieldSpec> {
    let mut out = Vec::new();
    for (i, a) in schema.attributes().iter().enumerate() {
        let spec = match a.name.as_str() {
            "description" => None, // free text: too noisy for identity
            "postcode" => Some((2.0, FieldKind::Exact)),
            "street" => Some((3.0, FieldKind::Text)),
            _ => match a.ty {
                AttrType::Int | AttrType::Float => Some((1.0, FieldKind::Numeric)),
                _ => Some((1.0, FieldKind::Text)),
            },
        };
        if let Some((weight, kind)) = spec {
            out.push(FieldSpec { col: i, weight, kind });
        }
    }
    out
}

/// Detect duplicate clusters in the result relation and publish them as
/// the intermediate `duplicate_clusters(cluster, row)` relation.
#[derive(Debug)]
pub struct DuplicateDetection {
    /// Pair-similarity threshold.
    pub threshold: f64,
    /// Workers for blocking-key extraction and pairwise scoring.
    pub parallelism: Parallelism,
    /// Shard count for the blocking scan: co-blocked rows land in the same
    /// shard (blocking-key partitioner), each shard blocks independently,
    /// and the merged blocks are identical to the monolithic scan.
    pub sharding: Sharding,
}

impl Default for DuplicateDetection {
    fn default() -> Self {
        DuplicateDetection {
            threshold: 0.88,
            parallelism: Parallelism::default(),
            sharding: Sharding::default(),
        }
    }
}

impl Transducer for DuplicateDetection {
    fn name(&self) -> &str {
        "duplicate_detection"
    }

    fn activity(&self) -> Activity {
        Activity::Fusion
    }

    fn input_dependency(&self) -> &str {
        "result_available(_)"
    }

    fn input_aspects(&self) -> &'static [&'static str] {
        &["result"]
    }

    fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    fn set_sharding(&mut self, sharding: Sharding) {
        self.sharding = sharding;
    }

    fn run(&mut self, kb: &mut KnowledgeBase) -> Result<RunOutcome> {
        let target = kb
            .target_schema()
            .expect("result implies target")
            .name
            .clone();
        let result = kb.relation(&target)?.clone();
        let block_key = if result.schema().index_of("postcode").is_some() {
            "postcode".to_string()
        } else {
            result.schema().attr(0).name.clone()
        };
        let cfg = ClusterConfig {
            block_keys: vec![block_key],
            fields: field_spec_for(result.schema()),
            threshold: self.threshold,
        };
        let clusters = cluster_relation_sharded(&cfg, &result, self.sharding, self.parallelism)?;
        let non_singleton: Vec<&Vec<usize>> =
            clusters.iter().filter(|c| c.len() > 1).collect();
        if non_singleton.is_empty() {
            kb.remove_intermediate(CLUSTERS_REL);
            return Ok(RunOutcome::noop("no duplicates detected"));
        }
        let mut rel = Relation::empty(
            Schema::new(CLUSTERS_REL, [("cluster", AttrType::Int), ("row", AttrType::Int)])
                .expect("static schema"),
        );
        for (ci, cluster) in non_singleton.iter().enumerate() {
            for &row in cluster.iter() {
                rel.push(Tuple::new(vec![
                    Value::Int(ci as i64),
                    Value::Int(row as i64),
                ]))?;
            }
        }
        let n = non_singleton.len();
        kb.put_intermediate(rel);
        kb.log("duplicate_detection", "clusters", &n.to_string());
        Ok(RunOutcome::new(format!("{n} duplicate cluster(s)"), n))
    }
}

/// Fuse detected duplicate clusters into single tuples (survivorship) and
/// replace the result.
#[derive(Debug)]
pub struct DataFusion {
    /// Survivorship rule.
    pub rule: Survivorship,
}

impl Default for DataFusion {
    fn default() -> Self {
        DataFusion { rule: Survivorship::Majority }
    }
}

impl Transducer for DataFusion {
    fn name(&self) -> &str {
        "data_fusion"
    }

    fn activity(&self) -> Activity {
        Activity::Fusion
    }

    fn input_dependency(&self) -> &str {
        r#"relation("duplicate_clusters", "intermediate", N), N > 0"#
    }

    fn input_aspects(&self) -> &'static [&'static str] {
        &["intermediates"]
    }

    fn run(&mut self, kb: &mut KnowledgeBase) -> Result<RunOutcome> {
        let target = kb
            .target_schema()
            .expect("clusters imply a result")
            .name
            .clone();
        let result = kb.relation(&target)?.clone();
        let clusters_rel = kb.relation(CLUSTERS_REL)?.clone();
        // rebuild cluster lists; add singletons for uncovered rows
        let mut clusters: std::collections::BTreeMap<i64, Vec<usize>> = Default::default();
        let mut covered = vec![false; result.len()];
        for t in clusters_rel.iter() {
            let (Some(c), Some(r)) = (t[0].as_int(), t[1].as_int()) else {
                continue;
            };
            let row = r as usize;
            if row < result.len() {
                clusters.entry(c).or_default().push(row);
                covered[row] = true;
            }
        }
        let mut all: Vec<Vec<usize>> = clusters.into_values().collect();
        for (row, c) in covered.iter().enumerate() {
            if !c {
                all.push(vec![row]);
            }
        }
        all.sort_by_key(|c| c[0]);
        let (fused, report) = fuse_clusters(&result, &all, self.rule, None)?;
        kb.remove_intermediate(CLUSTERS_REL);
        let removed = report.duplicates_removed();
        if removed == 0 {
            return Ok(RunOutcome::noop("clusters contained no duplicates"));
        }
        kb.put_result(fused);
        kb.log("data_fusion", "fused", &removed.to_string());
        Ok(RunOutcome::new(
            format!(
                "fused {} cluster(s), removed {removed} duplicate row(s)",
                report.merged_clusters
            ),
            removed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::tuple;

    fn kb_with_result() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        let schema = Schema::new(
            "property",
            [
                ("street", AttrType::Str),
                ("postcode", AttrType::Str),
                ("price", AttrType::Int),
            ],
        )
        .unwrap();
        kb.register_target_schema(schema.clone());
        let mut result = Relation::empty(schema);
        result.push(tuple!["12 high st", "M1 1AA", 250000]).unwrap();
        result.push(tuple!["12 High st", "M1 1AA", 250000]).unwrap();
        result.push(tuple!["9 park rd", "EH1 1AA", 400000]).unwrap();
        kb.put_result(result);
        kb
    }

    #[test]
    fn detection_then_fusion_removes_duplicates() {
        let mut kb = kb_with_result();
        let mut det = DuplicateDetection::default();
        assert!(det.ready(&kb).unwrap());
        let out = det.run(&mut kb).unwrap();
        assert_eq!(out.writes, 1, "{}", out.summary);
        assert!(kb.relation(CLUSTERS_REL).is_ok());

        let mut fuse = DataFusion::default();
        assert!(fuse.ready(&kb).unwrap());
        let out = fuse.run(&mut kb).unwrap();
        assert_eq!(out.writes, 1);
        assert_eq!(kb.relation("property").unwrap().len(), 2);
        // clusters consumed
        assert!(kb.relation(CLUSTERS_REL).is_err());
        assert!(!fuse.ready(&kb).unwrap());
    }

    #[test]
    fn clean_result_detects_nothing() {
        let mut kb = kb_with_result();
        // dedup first
        let mut det = DuplicateDetection::default();
        det.run(&mut kb).unwrap();
        DataFusion::default().run(&mut kb).unwrap();
        // second detection pass: nothing
        let out = det.run(&mut kb).unwrap();
        assert_eq!(out.writes, 0, "{}", out.summary);
    }

    #[test]
    fn field_spec_skips_description() {
        let schema = Schema::new(
            "property",
            [
                ("street", AttrType::Str),
                ("description", AttrType::Str),
                ("price", AttrType::Int),
            ],
        )
        .unwrap();
        let spec = field_spec_for(&schema);
        assert_eq!(spec.len(), 2);
        assert!(spec.iter().all(|f| f.col != 1));
    }
}
