//! The extraction transducer: turns staged raw documents (CSV text, as
//! web extraction or an open-data download would deliver) into source
//! relations. This is the Extraction activity of the lifecycle — in the
//! paper it is DIADEM behind a transducer interface; here it is a CSV
//! ingester with header-driven schema inference (every column `str`,
//! wrangling handles typing later).

use vada_common::{csv, Parallelism, Result, Schema, Sharding, VadaError};
use vada_kb::KnowledgeBase;

use crate::transducer::{Activity, RunOutcome, Transducer};

/// Ingest staged CSV documents as source relations.
#[derive(Debug, Default)]
pub struct CsvIngestion {
    /// Workers for batched cell typing during ingest.
    pub parallelism: Parallelism,
    /// Shard count for the typing scan (rows partitioned by content hash,
    /// merged back in input order — see `csv::read_relation_sharded`).
    pub sharding: Sharding,
}

impl Transducer for CsvIngestion {
    fn name(&self) -> &str {
        "csv_ingestion"
    }

    fn activity(&self) -> Activity {
        Activity::Extraction
    }

    fn input_dependency(&self) -> &str {
        "staged_document(_)"
    }

    fn input_aspects(&self) -> &'static [&'static str] {
        &["staged"]
    }

    fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    fn set_sharding(&mut self, sharding: Sharding) {
        self.sharding = sharding;
    }

    fn run(&mut self, kb: &mut KnowledgeBase) -> Result<RunOutcome> {
        let names: Vec<String> = kb
            .staged_documents()
            .map(|(n, _)| n.to_string())
            .collect();
        let mut rows = 0usize;
        let mut ingested = Vec::new();
        for name in names {
            let text = kb
                .unstage_document(&name)
                .expect("listed documents exist");
            let parsed = csv::parse(&text)?;
            let header = parsed.first().ok_or_else(|| {
                VadaError::Csv(format!("staged document `{name}` is empty"))
            })?;
            let schema = Schema::all_str(
                &name,
                &header.iter().map(|h| h.trim()).collect::<Vec<_>>(),
            );
            let rel = csv::read_relation_sharded(&text, schema, self.sharding, self.parallelism)?;
            rows += rel.len();
            kb.register_source(rel);
            ingested.push(name);
        }
        kb.log("csv_ingestion", "ingest", &ingested.join(","));
        Ok(RunOutcome::new(
            format!("ingested {} document(s), {rows} rows: {}", ingested.len(), ingested.join(", ")),
            rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::Value;

    #[test]
    fn ingests_staged_documents_as_sources() {
        let mut kb = KnowledgeBase::new();
        let mut t = CsvIngestion::default();
        assert!(!t.ready(&kb).unwrap());
        kb.stage_document(
            "rightmove",
            "price,street\n250000,12 high st\n£99,\"3 mill, lane\"\n",
        );
        assert!(t.ready(&kb).unwrap());
        let out = t.run(&mut kb).unwrap();
        assert_eq!(out.writes, 2);
        let rel = kb.relation("rightmove").unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.tuples()[1][1], Value::str("3 mill, lane"));
        // consumed
        assert!(!t.ready(&kb).unwrap());
    }

    #[test]
    fn empty_document_is_an_error() {
        let mut kb = KnowledgeBase::new();
        kb.stage_document("broken", "");
        assert!(CsvIngestion::default().run(&mut kb).is_err());
    }

    #[test]
    fn multiple_documents_in_one_run() {
        let mut kb = KnowledgeBase::new();
        kb.stage_document("a", "x\n1\n");
        kb.stage_document("b", "y\n2\n3\n");
        let out = CsvIngestion::default().run(&mut kb).unwrap();
        assert_eq!(out.writes, 3);
        assert!(kb.relation("a").is_ok());
        assert!(kb.relation("b").is_ok());
    }
}
