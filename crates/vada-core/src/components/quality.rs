//! Quality transducers: CFD learning, source profiling, and per-mapping
//! quality metrics.

use vada_common::{Evaluation, Parallelism, Relation, Result};
use vada_context::data_context::{capabilities, cfd_training_contexts};
use vada_kb::{KnowledgeBase, QualityFact};
use vada_map::{ExecuteConfig, ExecutorStats, IncrementalExecutor};
use vada_quality::{accuracy_against_reference, consistency, learn_cfds_with, CfdLearnConfig};

use crate::components::mapping::candidate_relation_name;
use crate::transducer::{Activity, RunOutcome, Transducer};

/// Learn CFDs from data-context relations (paper Table 1: "CFD Learning —
/// Data Examples"; §2.2: reference data "can be used to learn CFDs,
/// against which the consistency of the address information within the
/// property table can be established").
#[derive(Debug, Default)]
pub struct CfdLearning {
    /// Learner configuration.
    pub config: CfdLearnConfig,
    /// Workers for the levelwise scan over LHS candidate sets.
    pub parallelism: Parallelism,
}

impl Transducer for CfdLearning {
    fn name(&self) -> &str {
        "cfd_learning"
    }

    fn activity(&self) -> Activity {
        Activity::Quality
    }

    fn input_dependency(&self) -> &str {
        r#"data_context(C, _), has_instances(C)"#
    }

    fn input_aspects(&self) -> &'static [&'static str] {
        &["data_context", "relations"]
    }

    fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    fn run(&mut self, kb: &mut KnowledgeBase) -> Result<RunOutcome> {
        let contexts = cfd_training_contexts(kb)?;
        if contexts.is_empty() {
            return Ok(RunOutcome::noop(
                "no reference/master context to learn from (example data does not license CFDs)",
            ));
        }
        kb.clear_cfds();
        let mut written = 0usize;
        for (rel_name, _coverage) in &contexts {
            let rel = kb.relation(rel_name)?.clone();
            for cfd in learn_cfds_with(&self.config, &rel, self.parallelism)? {
                kb.add_cfd(cfd);
                written += 1;
            }
        }
        kb.log("cfd_learning", "add_cfd", &written.to_string());
        Ok(RunOutcome::new(
            format!("{written} CFDs from {} context relation(s)", contexts.len()),
            written,
        ))
    }
}

/// Profile sources: per-attribute completeness quality facts
/// (paper §2.3: "adding quality metrics on sources ... to the knowledge
/// base").
#[derive(Debug, Default)]
pub struct SourceProfiling;

impl Transducer for SourceProfiling {
    fn name(&self) -> &str {
        "source_profiling"
    }

    fn activity(&self) -> Activity {
        Activity::Quality
    }

    fn input_dependency(&self) -> &str {
        r#"relation(R, "source", N), N > 0"#
    }

    fn input_aspects(&self) -> &'static [&'static str] {
        &["relations"]
    }

    fn run(&mut self, kb: &mut KnowledgeBase) -> Result<RunOutcome> {
        kb.clear_quality("source");
        let mut written = 0usize;
        for source in kb.source_names() {
            let rel = kb.relation(&source)?.clone();
            for attr in rel.schema().attr_names() {
                let value = rel.completeness(attr)?;
                kb.add_quality(QualityFact {
                    entity_kind: "source".into(),
                    entity: source.clone(),
                    metric: "completeness".into(),
                    criterion: format!("completeness({attr})"),
                    value,
                });
                written += 1;
            }
        }
        Ok(RunOutcome::new(format!("{written} source metrics"), written))
    }
}

/// Compute quality metrics for every candidate mapping by materialising it
/// and measuring completeness (per target attribute), consistency (against
/// the learned CFDs) and syntactic accuracy (against reference
/// populations). These are the metrics mapping selection weighs under the
/// user context. Under [`Evaluation::Incremental`] candidate
/// materialisations persist between runs and re-derive only journalled
/// row-level changes, deletions included.
#[derive(Debug, Default)]
pub struct MappingQuality {
    /// Execution configuration for candidate materialisation.
    pub config: ExecuteConfig,
    evaluation: Evaluation,
    executor: IncrementalExecutor,
    /// Persistent sharded catalog views (see
    /// [`crate::components::mapping::MappingExecution`]): one store serves
    /// every candidate, synced O(change) from the journal per run.
    store: Option<vada_kb::ShardedStore>,
    /// One persistent index cache per candidate mapping for the directed
    /// one-shot execution path (see [`vada_map::execute_mapping_cached`]);
    /// idle unless [`ExecuteConfig::query_caching`] is on.
    index_caches: std::collections::BTreeMap<String, vada_map::IndexCache>,
}

impl MappingQuality {
    /// Counters from the incremental execution path (how many candidate
    /// materialisations went through the semi-naive fast path).
    pub fn executor_stats(&self) -> &ExecutorStats {
        self.executor.stats()
    }
}

impl Transducer for MappingQuality {
    fn name(&self) -> &str {
        "mapping_quality"
    }

    fn activity(&self) -> Activity {
        Activity::Quality
    }

    fn input_dependency(&self) -> &str {
        "mapping(_, _)"
    }

    fn input_aspects(&self) -> &'static [&'static str] {
        &["mappings", "cfds", "data_context"]
    }

    fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.config.engine.parallelism = parallelism;
    }

    fn set_evaluation(&mut self, evaluation: Evaluation) {
        self.evaluation = evaluation;
    }

    fn set_sharding(&mut self, sharding: vada_common::Sharding) {
        self.config.sharding = sharding;
    }

    fn set_obs(&mut self, obs: vada_common::Obs) {
        self.config.engine.obs = obs;
    }

    fn set_query_caching(&mut self, caching: vada_common::QueryCaching) {
        self.config.query_caching = caching;
    }

    fn run(&mut self, kb: &mut KnowledgeBase) -> Result<RunOutcome> {
        let mappings: Vec<_> = kb.mappings().cloned().collect();
        let cfds: Vec<_> = kb.cfds().cloned().collect();
        // reference populations per target attribute, from context bindings
        let mut reference_cols: Vec<(String, Relation, String)> = Vec::new();
        for (ctx_rel, ctx_attr, tgt_attr) in kb.context_bindings().to_vec() {
            if let Some(kind) = kb
                .context_relations()
                .iter()
                .find(|(n, _)| *n == ctx_rel)
                .map(|(_, k)| *k)
            {
                if capabilities(kind).quality_reference {
                    let rel = kb.relation(&ctx_rel)?.clone();
                    reference_cols.push((tgt_attr, rel, ctx_attr));
                }
            }
        }
        kb.clear_quality("mapping");
        let mut written = 0usize;
        let mut materialised: Vec<(String, Relation)> = Vec::new();
        for mapping in &mappings {
            let store = crate::components::mapping::sharded_store(
                &mut self.store,
                self.config.sharding,
            );
            let result = if self.evaluation.is_incremental() {
                self.executor.execute_with(&self.config, mapping, kb, store)?
            } else {
                vada_map::execute_mapping_cached(
                    &self.config,
                    mapping,
                    kb,
                    store,
                    self.index_caches.entry(mapping.id.clone()).or_default(),
                )?
            };
            // completeness per target attribute
            for attr in result.schema().attr_names().iter().map(|s| s.to_string()) {
                let value = result.completeness(&attr)?;
                kb.add_quality(QualityFact {
                    entity_kind: "mapping".into(),
                    entity: mapping.id.clone(),
                    metric: "completeness".into(),
                    criterion: format!("completeness({attr})"),
                    value,
                });
                written += 1;
            }
            // consistency against learned CFDs (only meaningful once CFDs
            // exist — before that every mapping scores 1.0 vacuously)
            let value = consistency(&result, &cfds);
            kb.add_quality(QualityFact {
                entity_kind: "mapping".into(),
                entity: mapping.id.clone(),
                metric: "consistency".into(),
                criterion: format!("consistency({})", result.name()),
                value,
            });
            written += 1;
            // syntactic accuracy against reference populations
            for (tgt_attr, ref_rel, ref_attr) in &reference_cols {
                if result.schema().index_of(tgt_attr).is_some() {
                    let value =
                        accuracy_against_reference(&result, tgt_attr, ref_rel, ref_attr)?;
                    kb.add_quality(QualityFact {
                        entity_kind: "mapping".into(),
                        entity: mapping.id.clone(),
                        metric: "accuracy".into(),
                        criterion: format!("accuracy({tgt_attr})"),
                        value,
                    });
                    written += 1;
                }
            }
            materialised.push((mapping.id.clone(), result));
        }
        // relative row coverage: a union over sources reaches more of the
        // domain than any single source, which per-attribute completeness
        // fractions cannot see
        let max_rows = materialised.iter().map(|(_, r)| r.len()).max().unwrap_or(0);
        for (id, result) in materialised {
            if max_rows > 0 {
                kb.add_quality(QualityFact {
                    entity_kind: "mapping".into(),
                    entity: id.clone(),
                    metric: "coverage".into(),
                    criterion: format!("coverage({})", result.name()),
                    value: result.len() as f64 / max_rows as f64,
                });
                written += 1;
            }
            // cache the materialisation for execution reuse
            let cached = Relation::from_tuples(
                result.schema().renamed(candidate_relation_name(&id)),
                result.tuples().to_vec(),
            )?;
            kb.put_intermediate(cached);
        }
        kb.log("mapping_quality", "add_quality", &written.to_string());
        Ok(RunOutcome::new(
            format!("{written} metrics over {} candidate mappings", mappings.len()),
            written,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::{tuple, AttrType, Schema};
    use vada_kb::{ContextKind, MappingDef};

    fn kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        let mut rm = Relation::empty(Schema::all_str("rightmove", &["price", "street", "postcode"]));
        rm.push(tuple!["250000", "1 high st", "M1 1AA"]).unwrap();
        rm.push(Tuple::new(vec![
            vada_common::Value::Null,
            vada_common::Value::str("2 park rd"),
            vada_common::Value::str("M1 1AB"),
        ]))
        .unwrap();
        kb.register_source(rm);
        kb.register_target_schema(
            Schema::new(
                "property",
                [
                    ("street", AttrType::Str),
                    ("postcode", AttrType::Str),
                    ("price", AttrType::Int),
                ],
            )
            .unwrap(),
        );
        kb
    }

    use vada_common::Tuple;

    fn address_context(kb: &mut KnowledgeBase) {
        let mut addr = Relation::empty(Schema::all_str("address", &["street", "city", "postcode"]));
        for (s, c, p) in [
            ("1 high st", "manchester", "M1 1AA"),
            ("2 park rd", "manchester", "M1 1AB"),
            ("3 kings ave", "manchester", "M1 1AC"),
            ("4 mill ln", "manchester", "M1 1AD"),
            ("5 queens dr", "edinburgh", "EH1 1AA"),
            ("6 albert sq", "edinburgh", "EH1 1AB"),
        ] {
            addr.push(tuple![s, c, p]).unwrap();
        }
        kb.register_data_context(
            addr,
            ContextKind::Reference,
            &[("street", "street"), ("postcode", "postcode")],
        )
        .unwrap();
    }

    #[test]
    fn cfd_learning_requires_capable_context() {
        let mut kb = kb();
        let mut t = CfdLearning::default();
        assert!(!t.ready(&kb).unwrap());
        address_context(&mut kb);
        assert!(t.ready(&kb).unwrap());
        let out = t.run(&mut kb).unwrap();
        assert!(out.writes > 0, "{}", out.summary);
        assert!(kb.cfds().any(|c| c.rhs.0 == "city"));
    }

    #[test]
    fn example_context_does_not_license_cfds() {
        let mut kb = kb();
        let mut ex = Relation::empty(Schema::all_str("examples", &["street"]));
        ex.push(tuple!["1 high st"]).unwrap();
        kb.register_data_context(ex, ContextKind::Example, &[("street", "street")])
            .unwrap();
        let mut t = CfdLearning::default();
        assert!(t.ready(&kb).unwrap(), "dependency is on any context");
        let out = t.run(&mut kb).unwrap();
        assert_eq!(out.writes, 0, "{}", out.summary);
    }

    #[test]
    fn source_profiling_writes_completeness() {
        let mut kb = kb();
        let mut t = SourceProfiling;
        assert!(t.ready(&kb).unwrap());
        t.run(&mut kb).unwrap();
        let price_fact = kb
            .quality_facts()
            .iter()
            .find(|q| q.entity == "rightmove" && q.criterion == "completeness(price)")
            .unwrap();
        assert!((price_fact.value - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mapping_quality_measures_candidates() {
        let mut kb = kb();
        address_context(&mut kb);
        kb.add_mapping(MappingDef {
            id: "map0".into(),
            target: "property".into(),
            rules: "property(S, PC, P) :- rightmove(P, S, PC).".into(),
            sources: vec!["rightmove".into()],
            matches_used: vec![],
        });
        let mut t = MappingQuality::default();
        assert!(t.ready(&kb).unwrap());
        let out = t.run(&mut kb).unwrap();
        assert!(out.writes >= 5, "{}", out.summary);
        let completeness_price = kb
            .quality_facts()
            .iter()
            .find(|q| q.entity == "map0" && q.criterion == "completeness(price)")
            .unwrap();
        assert!((completeness_price.value - 0.5).abs() < 1e-12);
        let acc_street = kb
            .quality_facts()
            .iter()
            .find(|q| q.entity == "map0" && q.criterion == "accuracy(street)")
            .unwrap();
        assert!(acc_street.value > 0.99, "streets are all in the reference");
        // candidate materialisation cached
        assert!(kb.relation("candidate_map0").is_ok());
    }
}
