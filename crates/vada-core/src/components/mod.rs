//! The built-in wrangling components, each wrapped as a [`Transducer`].
//!
//! | Activity  | Transducer            | Input dependency (paper Table 1)        |
//! |-----------|-----------------------|-----------------------------------------|
//! | Extraction| `csv_ingestion`       | staged raw documents                    |
//! | Matching  | `schema_matching`     | source & target schemas                 |
//! | Matching  | `instance_matching`   | source & target (context) instances     |
//! | Mapping   | `mapping_generation`  | matches over source & target schemas    |
//! | Quality   | `cfd_learning`        | data-context instances (examples)       |
//! | Quality   | `source_profiling`    | source instances                        |
//! | Quality   | `mapping_quality`     | candidate mappings                      |
//! | Selection | `mapping_selection`   | quality metrics                         |
//! | Execution | `mapping_execution`   | a selected mapping                      |
//! | Repair    | `result_repair`       | a result and learned CFDs               |
//! | Fusion    | `duplicate_detection` | a result                                |
//! | Fusion    | `data_fusion`         | detected duplicate clusters             |
//! | Feedback  | `feedback_repair`     | feedback annotations                    |
//! | Feedback  | `mapping_evaluation`  | feedback annotations                    |
//!
//! [`Transducer`]: crate::transducer::Transducer

pub mod extraction;
pub mod feedback;
pub mod fusion_t;
pub mod mapping;
pub mod matching;
pub mod quality;
pub mod repair_t;

pub use extraction::CsvIngestion;
pub use feedback::{FeedbackRepair, MappingEvaluation};
pub use fusion_t::{DataFusion, DuplicateDetection};
pub use mapping::{MappingExecution, MappingGeneration, MappingSelection};
pub use matching::{InstanceMatching, SchemaMatching};
pub use quality::{CfdLearning, MappingQuality, SourceProfiling};
pub use repair_t::ResultRepair;
