//! The repair transducer: applies CFD-lookup and fuzzy reference repair to
//! the materialised result (paper §2.2–2.3: CFDs learned from reference
//! data licence "repairs to the mapping results").

use vada_common::Result;
use vada_context::data_context::cfd_training_contexts;
use vada_kb::KnowledgeBase;
use vada_quality::{repair_with_reference, RepairConfig};

use crate::transducer::{Activity, RunOutcome, Transducer};

/// Repair the result relation against the best-covering reference context.
#[derive(Debug, Default)]
pub struct ResultRepair {
    /// Repair configuration.
    pub config: RepairConfig,
}

impl Transducer for ResultRepair {
    fn name(&self) -> &str {
        "result_repair"
    }

    fn activity(&self) -> Activity {
        Activity::Repair
    }

    fn input_dependency(&self) -> &str {
        "result_available(_), cfd_available(_)"
    }

    fn input_aspects(&self) -> &'static [&'static str] {
        &["result", "cfds", "data_context"]
    }

    fn run(&mut self, kb: &mut KnowledgeBase) -> Result<RunOutcome> {
        let target = kb
            .target_schema()
            .expect("result implies target")
            .name
            .clone();
        let contexts = cfd_training_contexts(kb)?;
        let Some((reference_name, _)) = contexts.first() else {
            return Ok(RunOutcome::noop("no reference context for repair"));
        };
        let reference = kb.relation(reference_name)?.clone();
        let cfds: Vec<_> = kb.cfds().cloned().collect();
        let mut result = kb.relation(&target)?.clone();
        // fuzzy street repair grouped by postcode when both attrs exist on
        // both sides
        let fuzzy = ["street", "postcode"]
            .iter()
            .all(|a| {
                result.schema().index_of(a).is_some() && reference.schema().index_of(a).is_some()
            })
            .then_some(("street", "postcode"));
        let report = repair_with_reference(&self.config, &mut result, &cfds, &reference, fuzzy);
        if report.total() == 0 {
            return Ok(RunOutcome::noop("nothing to repair"));
        }
        kb.put_result(result);
        kb.log("result_repair", "repair", &report.total().to_string());
        Ok(RunOutcome::new(
            format!(
                "{} CFD fixes, {} null fills, {} fuzzy fixes (reference `{reference_name}`)",
                report.cfd_fixes, report.null_fills, report.fuzzy_fixes
            ),
            report.total(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::{tuple, Relation, Schema};
    use vada_kb::{CfdRule, ContextKind};

    fn kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        let schema = Schema::all_str("property", &["street", "city", "postcode"]);
        kb.register_target_schema(schema.clone());
        let mut result = Relation::empty(schema);
        result.push(tuple!["1 hgih st", "leeds", "M1 1AA"]).unwrap();
        kb.put_result(result);
        let mut addr = Relation::empty(Schema::all_str("address", &["street", "city", "postcode"]));
        addr.push(tuple!["1 high st", "manchester", "M1 1AA"]).unwrap();
        kb.register_data_context(
            addr,
            ContextKind::Reference,
            &[("street", "street"), ("postcode", "postcode")],
        )
        .unwrap();
        kb.add_cfd(CfdRule {
            id: "c0".into(),
            relation: "address".into(),
            lhs: vec![("postcode".into(), None)],
            rhs: ("city".into(), None),
            support: 5,
        });
        kb
    }

    #[test]
    fn repairs_city_and_street_then_converges() {
        let mut kb = kb();
        let mut t = ResultRepair::default();
        assert!(t.ready(&kb).unwrap());
        let out = t.run(&mut kb).unwrap();
        assert!(out.writes >= 2, "{}", out.summary);
        let result = kb.relation("property").unwrap();
        assert_eq!(result.tuples()[0][0], vada_common::Value::str("1 high st"));
        assert_eq!(result.tuples()[0][1], vada_common::Value::str("manchester"));
        // idempotent second run writes nothing
        let out = t.run(&mut kb).unwrap();
        assert_eq!(out.writes, 0);
    }

    #[test]
    fn not_ready_without_cfds() {
        let mut kb = KnowledgeBase::new();
        let schema = Schema::all_str("property", &["street"]);
        kb.register_target_schema(schema.clone());
        kb.put_result(Relation::empty(schema));
        assert!(!ResultRepair::default().ready(&kb).unwrap());
    }
}
