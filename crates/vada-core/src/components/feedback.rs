//! Feedback transducers (paper §2.3): turning the user's correct/incorrect
//! annotations into (a) durable value vetoes applied to the result and (b)
//! revised match scores that can re-open mapping generation.

use std::collections::{HashMap, HashSet};

use vada_common::{Relation, Result, Value};
use vada_kb::{CellVeto, FeedbackTarget, KnowledgeBase, Verdict};

use crate::transducer::{Activity, RunOutcome, Transducer};

/// Key attributes used to identify a logical row across
/// re-materialisations (street + postcode in the scenario; falls back to
/// all attributes when absent).
fn key_attrs(rel: &Relation) -> Vec<String> {
    let preferred: Vec<String> = ["street", "postcode"]
        .iter()
        .filter(|a| rel.schema().index_of(a).is_some())
        .map(|a| a.to_string())
        .collect();
    if !preferred.is_empty() {
        return preferred;
    }
    rel.schema().attr_names().iter().map(|s| s.to_string()).collect()
}

/// Apply vetoes to a relation: null vetoed cells, drop vetoed rows.
/// Returns the number of cells/rows changed.
pub fn apply_vetoes(rel: &mut Relation, vetoes: &[CellVeto]) -> usize {
    if vetoes.is_empty() {
        return 0;
    }
    let mut changes = 0usize;
    let mut dropped_rows: HashSet<usize> = HashSet::new();
    for veto in vetoes {
        let key_cols: Option<Vec<(usize, &Value)>> = veto
            .key
            .iter()
            .map(|(a, v)| rel.schema().index_of(a).map(|i| (i, v)))
            .collect();
        let Some(key_cols) = key_cols else { continue };
        for row in 0..rel.len() {
            if dropped_rows.contains(&row) {
                continue;
            }
            let t = &rel.tuples()[row];
            if !key_cols.iter().all(|(i, v)| &t[*i] == *v) {
                continue;
            }
            match &veto.attr {
                None => {
                    dropped_rows.insert(row);
                    changes += 1;
                }
                Some(attr) => {
                    let Some(col) = rel.schema().index_of(attr) else { continue };
                    let cell = &t[col];
                    if cell.is_null() {
                        continue;
                    }
                    if veto.value.as_ref().is_none_or(|v| v == cell) {
                        let fixed = t.with_value(col, Value::Null);
                        rel.replace(row, fixed).expect("same arity");
                        changes += 1;
                    }
                }
            }
        }
    }
    if !dropped_rows.is_empty() {
        let mut row = 0usize;
        rel.retain(|_| {
            let keep = !dropped_rows.contains(&row);
            row += 1;
            keep
        });
    }
    changes
}

/// Convert fresh feedback annotations into durable vetoes and apply them
/// to the current result.
#[derive(Debug, Default)]
pub struct FeedbackRepair {
    processed: HashSet<String>,
}

impl Transducer for FeedbackRepair {
    fn name(&self) -> &str {
        "feedback_repair"
    }

    fn activity(&self) -> Activity {
        Activity::Feedback
    }

    fn input_dependency(&self) -> &str {
        r#"feedback(_, _, _, _, _, "incorrect"), result_available(_)"#
    }

    fn input_aspects(&self) -> &'static [&'static str] {
        &["feedback"]
    }

    fn run(&mut self, kb: &mut KnowledgeBase) -> Result<RunOutcome> {
        let target = match kb.target_schema() {
            Some(t) => t.name.clone(),
            None => return Ok(RunOutcome::noop("no target")),
        };
        let result = kb.relation(&target)?.clone();
        let keys = key_attrs(&result);
        let mut new_vetoes: Vec<CellVeto> = Vec::new();
        for f in kb.feedback().to_vec() {
            if self.processed.contains(&f.id) || f.verdict != Verdict::Incorrect {
                self.processed.insert(f.id.clone());
                continue;
            }
            self.processed.insert(f.id.clone());
            let (row, attr) = match &f.target {
                FeedbackTarget::Tuple { relation, row } if *relation == target => (*row, None),
                FeedbackTarget::Attribute { relation, row, attr } if *relation == target => {
                    (*row, Some(attr.clone()))
                }
                _ => continue,
            };
            if row >= result.len() {
                continue; // stale annotation from an older materialisation
            }
            let t = &result.tuples()[row];
            let key: Vec<(String, Value)> = keys
                .iter()
                .map(|a| {
                    let i = result.schema().index_of(a).expect("key attrs exist");
                    (a.clone(), t[i].clone())
                })
                .collect();
            let value = attr.as_ref().and_then(|a| {
                result
                    .schema()
                    .index_of(a)
                    .map(|i| t[i].clone())
                    .filter(|v| !v.is_null())
            });
            new_vetoes.push(CellVeto { key, attr, value });
        }
        if new_vetoes.is_empty() {
            return Ok(RunOutcome::noop("no fresh incorrect annotations"));
        }
        let mut repaired = result;
        let changed = apply_vetoes(&mut repaired, &new_vetoes);
        let n = new_vetoes.len();
        for v in new_vetoes {
            kb.add_veto(v);
        }
        if changed > 0 {
            kb.put_result(repaired);
        }
        kb.log("feedback_repair", "vetoes", &n.to_string());
        Ok(RunOutcome::new(
            format!("{n} vetoes recorded, {changed} cells/rows changed"),
            changed.max(n),
        ))
    }
}

/// Revise match scores from aggregate feedback (paper §2.3: "a mapping
/// evaluation transducer ... may identify a problem with a specific match
/// used within the mapping, and revise the score of that match").
#[derive(Debug)]
pub struct MappingEvaluation {
    processed: HashSet<String>,
    /// Minimum annotations on an attribute before judging it.
    pub min_annotations: usize,
    /// Error rate at and above which the contributing match is penalised.
    pub error_threshold: f64,
}

impl Default for MappingEvaluation {
    fn default() -> Self {
        MappingEvaluation {
            processed: HashSet::new(),
            min_annotations: 3,
            error_threshold: 0.3,
        }
    }
}

impl Transducer for MappingEvaluation {
    fn name(&self) -> &str {
        "mapping_evaluation"
    }

    fn activity(&self) -> Activity {
        Activity::Feedback
    }

    fn input_dependency(&self) -> &str {
        r#"feedback(_, "attribute", _, _, _, _), selected_mapping(_)"#
    }

    fn input_aspects(&self) -> &'static [&'static str] {
        &["feedback"]
    }

    fn run(&mut self, kb: &mut KnowledgeBase) -> Result<RunOutcome> {
        // error rates per attribute over *fresh* attribute annotations
        let mut counts: HashMap<String, (usize, usize)> = HashMap::new(); // attr -> (incorrect, total)
        for f in kb.feedback().to_vec() {
            if !self.processed.insert(f.id.clone()) {
                continue;
            }
            if let FeedbackTarget::Attribute { attr, .. } = &f.target {
                let e = counts.entry(attr.clone()).or_default();
                e.1 += 1;
                if f.verdict == Verdict::Incorrect {
                    e.0 += 1;
                }
            }
        }
        if counts.is_empty() {
            return Ok(RunOutcome::noop("no fresh attribute annotations"));
        }
        let selected = kb
            .selected_mapping()
            .expect("dependency guarantees selection")
            .to_string();
        let matches_used = kb
            .get_mapping(&selected)
            .map(|m| m.matches_used.clone())
            .unwrap_or_default();
        let mut revised = 0usize;
        let mut notes = Vec::new();
        for (attr, (incorrect, total)) in &counts {
            if *total < self.min_annotations {
                continue;
            }
            let rate = *incorrect as f64 / *total as f64;
            if rate < self.error_threshold {
                continue;
            }
            // penalise every match feeding this attribute in the selected
            // mapping
            let targets: Vec<(String, f64)> = kb
                .matches()
                .filter(|m| m.tgt_attr == *attr && matches_used.contains(&m.id))
                .map(|m| (m.id.clone(), m.score))
                .collect();
            for (id, score) in targets {
                let new_score = score * (1.0 - rate);
                kb.set_match_score(&id, new_score)?;
                notes.push(format!("{id}: {score:.2}->{new_score:.2}"));
                revised += 1;
            }
        }
        if revised == 0 {
            return Ok(RunOutcome::noop("feedback below revision thresholds"));
        }
        kb.log("mapping_evaluation", "revise_match", &revised.to_string());
        Ok(RunOutcome::new(
            format!("revised {revised} match score(s): {}", notes.join(", ")),
            revised,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::{tuple, AttrType, Schema};
    use vada_kb::{FeedbackRecord, MappingDef, MatchDef};

    fn kb_with_result() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        let schema = Schema::new(
            "property",
            [
                ("street", AttrType::Str),
                ("postcode", AttrType::Str),
                ("bedrooms", AttrType::Int),
            ],
        )
        .unwrap();
        kb.register_target_schema(schema.clone());
        let mut result = Relation::empty(schema);
        result.push(tuple!["1 high st", "M1 1AA", 18]).unwrap(); // area error
        result.push(tuple!["2 park rd", "M1 1AB", 3]).unwrap();
        kb.put_result(result);
        kb
    }

    #[test]
    fn apply_vetoes_nulls_cells_and_drops_rows() {
        let mut kb = kb_with_result();
        let mut rel = kb.relation("property").unwrap().clone();
        let changed = apply_vetoes(
            &mut rel,
            &[
                CellVeto {
                    key: vec![
                        ("street".into(), Value::str("1 high st")),
                        ("postcode".into(), Value::str("M1 1AA")),
                    ],
                    attr: Some("bedrooms".into()),
                    value: Some(Value::Int(18)),
                },
                CellVeto {
                    key: vec![
                        ("street".into(), Value::str("2 park rd")),
                        ("postcode".into(), Value::str("M1 1AB")),
                    ],
                    attr: None,
                    value: None,
                },
            ],
        );
        assert_eq!(changed, 2);
        assert_eq!(rel.len(), 1);
        assert!(rel.tuples()[0][2].is_null());
        kb.put_result(rel);
    }

    #[test]
    fn feedback_repair_records_durable_vetoes() {
        let mut kb = kb_with_result();
        kb.add_feedback(FeedbackRecord {
            id: "f0".into(),
            target: FeedbackTarget::Attribute {
                relation: "property".into(),
                row: 0,
                attr: "bedrooms".into(),
            },
            verdict: Verdict::Incorrect,
        });
        let mut t = FeedbackRepair::default();
        assert!(t.ready(&kb).unwrap());
        let out = t.run(&mut kb).unwrap();
        assert!(out.writes > 0);
        assert!(kb.relation("property").unwrap().tuples()[0][2].is_null());
        assert_eq!(kb.vetoes().len(), 1);
        // re-running does nothing new
        let out = t.run(&mut kb).unwrap();
        assert_eq!(out.writes, 0);
        // a re-materialised result with the same wrong value gets re-vetoed
        let mut rebuilt = Relation::empty(kb.target_schema().unwrap().clone());
        rebuilt.push(tuple!["1 high st", "M1 1AA", 18]).unwrap();
        let changed = apply_vetoes(&mut rebuilt, kb.vetoes());
        assert_eq!(changed, 1);
        assert!(rebuilt.tuples()[0][2].is_null());
    }

    #[test]
    fn correct_verdicts_produce_no_vetoes() {
        let mut kb = kb_with_result();
        kb.add_feedback(FeedbackRecord {
            id: "f0".into(),
            target: FeedbackTarget::Attribute {
                relation: "property".into(),
                row: 1,
                attr: "bedrooms".into(),
            },
            verdict: Verdict::Correct,
        });
        let mut t = FeedbackRepair::default();
        let out = t.run(&mut kb).unwrap();
        assert_eq!(out.writes, 0);
        assert!(kb.vetoes().is_empty());
    }

    #[test]
    fn mapping_evaluation_revises_high_error_matches() {
        let mut kb = kb_with_result();
        kb.add_match(MatchDef {
            id: "m_beds".into(),
            src_rel: "rightmove".into(),
            src_attr: "beds".into(),
            tgt_attr: "bedrooms".into(),
            score: 0.8,
            matcher: "schema".into(),
        });
        kb.add_mapping(MappingDef {
            id: "map0".into(),
            target: "property".into(),
            rules: String::new(),
            sources: vec!["rightmove".into()],
            matches_used: vec!["m_beds".into()],
        });
        kb.select_mapping("map0").unwrap();
        // 3 annotations, 2 incorrect: error rate 0.67 >= 0.3
        for (i, verdict) in [Verdict::Incorrect, Verdict::Incorrect, Verdict::Correct]
            .into_iter()
            .enumerate()
        {
            kb.add_feedback(FeedbackRecord {
                id: format!("f{i}"),
                target: FeedbackTarget::Attribute {
                    relation: "property".into(),
                    row: i,
                    attr: "bedrooms".into(),
                },
                verdict,
            });
        }
        let mut t = MappingEvaluation::default();
        assert!(t.ready(&kb).unwrap());
        let out = t.run(&mut kb).unwrap();
        assert_eq!(out.writes, 1, "{}", out.summary);
        let revised = kb.get_match("m_beds").unwrap().score;
        assert!(revised < 0.3, "0.8 * (1 - 2/3) ≈ 0.27, got {revised}");
        // same feedback not double-counted
        let out = t.run(&mut kb).unwrap();
        assert_eq!(out.writes, 0);
    }

    #[test]
    fn sparse_feedback_below_threshold_is_ignored() {
        let mut kb = kb_with_result();
        kb.add_match(MatchDef {
            id: "m_beds".into(),
            src_rel: "rightmove".into(),
            src_attr: "beds".into(),
            tgt_attr: "bedrooms".into(),
            score: 0.8,
            matcher: "schema".into(),
        });
        kb.add_mapping(MappingDef {
            id: "map0".into(),
            target: "property".into(),
            rules: String::new(),
            sources: vec![],
            matches_used: vec!["m_beds".into()],
        });
        kb.select_mapping("map0").unwrap();
        kb.add_feedback(FeedbackRecord {
            id: "f0".into(),
            target: FeedbackTarget::Attribute {
                relation: "property".into(),
                row: 0,
                attr: "bedrooms".into(),
            },
            verdict: Verdict::Incorrect,
        });
        let mut t = MappingEvaluation::default();
        let out = t.run(&mut kb).unwrap();
        assert_eq!(out.writes, 0, "one annotation is not enough evidence");
        assert_eq!(kb.get_match("m_beds").unwrap().score, 0.8);
    }
}
