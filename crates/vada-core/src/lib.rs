//! # vada-core
//!
//! The VADA architecture itself (paper §2, Figure 1): **transducers**
//! whose input dependencies are Datalog queries over the knowledge base,
//! a **network transducer** that dynamically picks which runnable
//! transducer executes next (§2.4), **feedback propagation** (§2.3) and a
//! browsable **trace** (§3), all behind the [`Wrangler`] facade that a
//! data scientist drives through the four pay-as-you-go steps of the
//! demonstration:
//!
//! ```no_run
//! use vada_core::Wrangler;
//! use vada_common::Schema;
//! # fn sources() -> Vec<vada_common::Relation> { vec![] }
//! let mut w = Wrangler::new();
//! for source in sources() {
//!     w.add_source(source);
//! }
//! w.set_target(Schema::all_str("property", &["street", "postcode"]));
//! let report = w.run().unwrap();       // step 1: automatic bootstrapping
//! println!("{}", report.trace_summary);
//! ```
//!
//! Components are registered in a [`registry::TransducerCatalog`]; the
//! architecture "is not tied to a specific or fixed set of transducers" —
//! implement [`Transducer`] and add yours.

pub mod components;
pub mod criteria;
pub mod network;
pub mod orchestrator;
pub mod registry;
pub mod trace;
pub mod transducer;
pub mod wrangler;

pub use network::{GenericPolicy, SchedulingPolicy, SpecificPolicy};
pub use vada_common::{Durability, Evaluation, Parallelism, Sharding};
pub use orchestrator::{Orchestrator, OrchestratorConfig};
pub use registry::{default_transducers, TransducerCatalog};
pub use trace::{Trace, TraceEntry};
pub use transducer::{Activity, RunOutcome, Transducer};
pub use wrangler::{RunReport, Wrangler};
