//! The browsable orchestration trace (paper §3: "the system will provide
//! browsable trace information that shows what transducers are being
//! orchestrated, their inputs and results").

use std::fmt;
use std::time::Duration;

use crate::transducer::Activity;

/// One transducer execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Global step number (monotonic across orchestrator runs).
    pub step: usize,
    /// Transducer name.
    pub transducer: String,
    /// Its activity.
    pub activity: Activity,
    /// The input dependency that licensed the run.
    pub input_dependency: String,
    /// Knowledge-base version before the run.
    pub kb_version_before: u64,
    /// Knowledge-base version after the run.
    pub kb_version_after: u64,
    /// Run summary.
    pub summary: String,
    /// Records written.
    pub writes: usize,
    /// Wall-clock duration.
    pub duration: Duration,
    /// Observability counters this step moved: `(name, delta)` pairs in
    /// name order, taken as a before/after snapshot of the orchestrator's
    /// registry around the run. Empty when observability is disabled.
    pub counters: Vec<(String, u64)>,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:<3} {:<24} [{}] v{}->v{} writes={} {}",
            self.step,
            self.transducer,
            self.activity,
            self.kb_version_before,
            self.kb_version_after,
            self.writes,
            self.summary
        )
    }
}

/// The full execution trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Append an entry.
    pub fn push(&mut self, entry: TraceEntry) {
        self.entries.push(entry);
    }

    /// All entries, in execution order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of executions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing ran yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Executions per transducer, sorted by name.
    pub fn executions_by_transducer(&self) -> Vec<(String, usize)> {
        // count by borrowed name; allocate once per *distinct* transducer,
        // not once per entry
        let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
        for e in &self.entries {
            *counts.entry(e.transducer.as_str()).or_default() += 1;
        }
        counts.into_iter().map(|(name, n)| (name.to_string(), n)).collect()
    }

    /// Render the whole trace as text, wall-clock included.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push_str(&format!(" ({}us)", e.duration.as_micros()));
            out.push('\n');
        }
        out
    }

    /// Render only the stable fields — no wall-clock, no counters. Two
    /// runs that wrangled identically produce identical `render_stable`
    /// output at every knob setting, so it is safe to diff or snapshot.
    pub fn render_stable(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// The whole trace as one JSON object — lossless, including durations
    /// (microseconds) and per-step counter deltas.
    pub fn to_json(&self) -> String {
        use vada_common::obs::json_escape;
        let mut out = String::from("{\"entries\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"step\":{},\"transducer\":\"{}\",\"activity\":\"{}\",\
                 \"input_dependency\":\"{}\",\"kb_version_before\":{},\
                 \"kb_version_after\":{},\"summary\":\"{}\",\"writes\":{},\
                 \"duration_micros\":{},\"counters\":{{",
                e.step,
                json_escape(&e.transducer),
                e.activity.tag(),
                json_escape(&e.input_dependency),
                e.kb_version_before,
                e.kb_version_after,
                json_escape(&e.summary),
                e.writes,
                e.duration.as_micros(),
            ));
            for (j, (name, delta)) in e.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", json_escape(name), delta));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(step: usize, name: &str) -> TraceEntry {
        TraceEntry {
            step,
            transducer: name.into(),
            activity: Activity::Matching,
            input_dependency: "attr(_, _, _, _)".into(),
            kb_version_before: 1,
            kb_version_after: 2,
            summary: "ok".into(),
            writes: 4,
            duration: Duration::from_millis(1),
            counters: vec![("pipeline.orchestrator.steps".to_string(), 1)],
        }
    }

    #[test]
    fn counts_by_transducer() {
        let mut t = Trace::default();
        t.push(entry(0, "schema_matching"));
        t.push(entry(1, "schema_matching"));
        t.push(entry(2, "mapping_generation"));
        assert_eq!(
            t.executions_by_transducer(),
            vec![("mapping_generation".to_string(), 1), ("schema_matching".to_string(), 2)]
        );
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn render_contains_steps() {
        let mut t = Trace::default();
        t.push(entry(7, "cfd_learning"));
        let s = t.render();
        assert!(s.contains("#7"));
        assert!(s.contains("cfd_learning"));
        assert!(s.contains("writes=4"));
    }

    #[test]
    fn render_stable_has_no_wall_clock() {
        let mut t = Trace::default();
        t.push(entry(0, "schema_matching"));
        assert!(t.render().contains("us)"));
        assert!(!t.render_stable().contains("us)"));
    }

    #[test]
    fn to_json_is_lossless_and_parses() {
        let mut t = Trace::default();
        t.push(entry(3, "mapping_execution"));
        let json = t.to_json();
        let doc = vada_common::obs::Json::parse(&json).unwrap();
        let entries = doc.get("entries").unwrap().items().unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.get("step").unwrap().as_u64(), Some(3));
        assert_eq!(e.get("transducer").unwrap().as_str(), Some("mapping_execution"));
        assert_eq!(e.get("activity").unwrap().as_str(), Some("matching"));
        assert_eq!(e.get("duration_micros").unwrap().as_u64(), Some(1000));
        let counters = e.get("counters").unwrap();
        assert_eq!(
            counters.get("pipeline.orchestrator.steps").unwrap().as_u64(),
            Some(1)
        );
    }
}
