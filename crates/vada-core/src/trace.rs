//! The browsable orchestration trace (paper §3: "the system will provide
//! browsable trace information that shows what transducers are being
//! orchestrated, their inputs and results").

use std::fmt;
use std::time::Duration;

use crate::transducer::Activity;

/// One transducer execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Global step number (monotonic across orchestrator runs).
    pub step: usize,
    /// Transducer name.
    pub transducer: String,
    /// Its activity.
    pub activity: Activity,
    /// The input dependency that licensed the run.
    pub input_dependency: String,
    /// Knowledge-base version before the run.
    pub kb_version_before: u64,
    /// Knowledge-base version after the run.
    pub kb_version_after: u64,
    /// Run summary.
    pub summary: String,
    /// Records written.
    pub writes: usize,
    /// Wall-clock duration.
    pub duration: Duration,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:<3} {:<24} [{}] v{}->v{} writes={} {}",
            self.step,
            self.transducer,
            self.activity,
            self.kb_version_before,
            self.kb_version_after,
            self.writes,
            self.summary
        )
    }
}

/// The full execution trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Append an entry.
    pub fn push(&mut self, entry: TraceEntry) {
        self.entries.push(entry);
    }

    /// All entries, in execution order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of executions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing ran yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Executions per transducer, sorted by name.
    pub fn executions_by_transducer(&self) -> Vec<(String, usize)> {
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        for e in &self.entries {
            *counts.entry(e.transducer.clone()).or_default() += 1;
        }
        counts.into_iter().collect()
    }

    /// Render the whole trace as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(step: usize, name: &str) -> TraceEntry {
        TraceEntry {
            step,
            transducer: name.into(),
            activity: Activity::Matching,
            input_dependency: "attr(_, _, _, _)".into(),
            kb_version_before: 1,
            kb_version_after: 2,
            summary: "ok".into(),
            writes: 4,
            duration: Duration::from_millis(1),
        }
    }

    #[test]
    fn counts_by_transducer() {
        let mut t = Trace::default();
        t.push(entry(0, "schema_matching"));
        t.push(entry(1, "schema_matching"));
        t.push(entry(2, "mapping_generation"));
        assert_eq!(
            t.executions_by_transducer(),
            vec![("mapping_generation".to_string(), 1), ("schema_matching".to_string(), 2)]
        );
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn render_contains_steps() {
        let mut t = Trace::default();
        t.push(entry(7, "cfd_learning"));
        let s = t.render();
        assert!(s.contains("#7"));
        assert!(s.contains("cfd_learning"));
        assert!(s.contains("writes=4"));
    }
}
