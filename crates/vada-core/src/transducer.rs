//! The [`Transducer`] abstraction (paper §2): "a software component with
//! input and output dependencies defined as Datalog queries over the
//! knowledge base and/or the state of the transducer".

use std::fmt;

use vada_common::{Evaluation, Obs, Parallelism, QueryCaching, Result, Sharding};
use vada_kb::KnowledgeBase;

/// The wrangling activity a transducer belongs to (paper Table 1 column
/// "Activity", extended with the execution-side activities of §2–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Activity {
    /// Reacting to user feedback (runs first so annotations apply to the
    /// result the user actually saw).
    Feedback,
    /// Data extraction / ingestion.
    Extraction,
    /// Schema/instance matching.
    Matching,
    /// Mapping generation.
    Mapping,
    /// Quality: CFD learning, metric computation.
    Quality,
    /// Source/mapping selection.
    Selection,
    /// Mapping execution (materialising the result).
    Execution,
    /// Repair of materialised results.
    Repair,
    /// Duplicate detection and fusion.
    Fusion,
}

impl Activity {
    /// Stable lower-case tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Activity::Feedback => "feedback",
            Activity::Extraction => "extraction",
            Activity::Matching => "matching",
            Activity::Mapping => "mapping",
            Activity::Quality => "quality",
            Activity::Selection => "selection",
            Activity::Execution => "execution",
            Activity::Repair => "repair",
            Activity::Fusion => "fusion",
        }
    }
}

impl fmt::Display for Activity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// What a transducer run reports back to the orchestrator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunOutcome {
    /// One-line summary for the trace.
    pub summary: String,
    /// How many records/facts/cells the run wrote. A run that writes 0
    /// does not re-trigger downstream transducers (fixpoint detection).
    pub writes: usize,
}

impl RunOutcome {
    /// Convenience constructor.
    pub fn new(summary: impl Into<String>, writes: usize) -> RunOutcome {
        RunOutcome { summary: summary.into(), writes }
    }

    /// An outcome reporting nothing to do.
    pub fn noop(reason: impl Into<String>) -> RunOutcome {
        RunOutcome { summary: reason.into(), writes: 0 }
    }
}

/// A wrangling component with a declarative input dependency.
///
/// The orchestrator deems a transducer *eligible* when
/// (a) its [`input_dependency`](Transducer::input_dependency) query has at
/// least one answer in the knowledge base, and (b) one of its
/// [`input_aspects`](Transducer::input_aspects) changed since its last
/// run. Together these give the paper's behaviour: "each transducer knows
/// what data it needs, and becomes available for execution when that data
/// is available in the knowledge base".
pub trait Transducer {
    /// Unique component name, e.g. `schema_matching`.
    fn name(&self) -> &str;

    /// The activity it implements.
    fn activity(&self) -> Activity;

    /// The input dependency as a Datalog query over the knowledge-base
    /// fact view (see `KnowledgeBase::build_dependency_db` for the
    /// vocabulary).
    fn input_dependency(&self) -> &str;

    /// The knowledge-base aspects this transducer reads; a change in any
    /// of them makes it re-runnable. See `KnowledgeBase::aspect_version`.
    fn input_aspects(&self) -> &'static [&'static str];

    /// Whether the input dependency is currently satisfied.
    fn ready(&self, kb: &KnowledgeBase) -> Result<bool> {
        kb.query_satisfied(self.input_dependency())
    }

    /// Adopt the orchestrator's parallelism level (see
    /// [`crate::OrchestratorConfig::parallelism`]). Components whose hot
    /// loops have a parallel substrate override this; the default ignores
    /// it, which is always correct because parallel and sequential paths
    /// produce identical output.
    fn set_parallelism(&mut self, _parallelism: Parallelism) {}

    /// Adopt the orchestrator's evaluation mode (see
    /// [`crate::OrchestratorConfig::evaluation`]). Components that can
    /// keep materialized state between runs and re-evaluate only
    /// knowledge-base deltas override this; the default ignores it, which
    /// is always correct because the incremental path is pinned
    /// byte-identical to full evaluation.
    fn set_evaluation(&mut self, _evaluation: Evaluation) {}

    /// Adopt the orchestrator's sharding level (see
    /// [`crate::OrchestratorConfig::sharding`]). Components whose scans
    /// have a per-shard substrate (CSV ingest, fusion blocking, mapping
    /// execution) override this and schedule one unit of work per shard;
    /// the default ignores it, which is always correct because sharded and
    /// monolithic scans produce identical output.
    fn set_sharding(&mut self, _sharding: Sharding) {}

    /// Adopt the orchestrator's observability registry (see
    /// [`crate::Orchestrator::set_obs`]). Components whose substrate emits
    /// counters (the mapping executors, anything holding an
    /// `EngineConfig`) override this; the default ignores it, which is
    /// always correct because the registry never influences results.
    fn set_obs(&mut self, _obs: Obs) {}

    /// Adopt the orchestrator's query-caching mode (see
    /// [`crate::OrchestratorConfig::query_caching`]). Components that run
    /// directed one-shot Datalog executions override this to keep their
    /// hash indexes alive between runs; the default ignores it, which is
    /// always correct because cached and uncached runs are pinned
    /// byte-identical.
    fn set_query_caching(&mut self, _caching: QueryCaching) {}

    /// Execute against the knowledge base.
    fn run(&mut self, kb: &mut KnowledgeBase) -> Result<RunOutcome>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_order_feedback_first() {
        assert!(Activity::Feedback < Activity::Matching);
        assert!(Activity::Matching < Activity::Mapping);
        assert!(Activity::Mapping < Activity::Quality);
        assert!(Activity::Selection < Activity::Execution);
        assert!(Activity::Execution < Activity::Repair);
        assert!(Activity::Repair < Activity::Fusion);
    }

    #[test]
    fn outcome_constructors() {
        let o = RunOutcome::new("did things", 3);
        assert_eq!(o.writes, 3);
        let n = RunOutcome::noop("nothing to do");
        assert_eq!(n.writes, 0);
    }
}
