//! The orchestration loop: evaluate input dependencies, let the network
//! transducer choose among eligible components, run to fixpoint.

use std::collections::HashMap;
use std::time::Instant;

use vada_common::obs::key as obs_key;
use vada_common::{Evaluation, Obs, Parallelism, QueryCaching, Result, Sharding, VadaError};
use vada_kb::KnowledgeBase;

use crate::network::{GenericPolicy, SchedulingPolicy};
use crate::trace::{Trace, TraceEntry};
use crate::transducer::Transducer;

/// Orchestrator limits.
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Maximum transducer executions per `run_to_fixpoint` call.
    pub max_steps: usize,
    /// Parallelism broadcast to every registered transducer (see
    /// [`Transducer::set_parallelism`]). The wrangling result, the trace's
    /// stable fields, and any error are identical at every level; defaults
    /// to the `VADA_THREADS` override.
    pub parallelism: Parallelism,
    /// Evaluation mode broadcast to every registered transducer (see
    /// [`Transducer::set_evaluation`]). Under [`Evaluation::Incremental`]
    /// the mapping transducers keep materialized Datalog state between
    /// runs and re-derive only what the knowledge-base delta journal says
    /// changed; results and traces are identical in both modes (the
    /// `incremental_equivalence` suite pins this). Defaults to the
    /// `VADA_INCREMENTAL` override.
    pub evaluation: Evaluation,
    /// Sharding level broadcast to every registered transducer (see
    /// [`Transducer::set_sharding`]). Under [`Sharding::Shards`] the
    /// knowledge-base scans (CSV ingest, fusion blocking, the mapping
    /// executors' input construction) partition their rows across shards
    /// and run one scheduling unit per shard; results and traces are
    /// byte-identical at any shard count (the `shard_equivalence` suite
    /// pins this). Defaults to the `VADA_SHARDS` override.
    pub sharding: Sharding,
    /// Query-caching mode broadcast to every registered transducer (see
    /// [`Transducer::set_query_caching`]). Under
    /// [`QueryCaching::Persistent`] the transducers running directed
    /// one-shot Datalog executions keep their hash indexes alive between
    /// runs and revalidate them against the delta journal's identity;
    /// results and traces are byte-identical either way. Defaults to the
    /// `VADA_QUERY_CACHE` override.
    pub query_caching: QueryCaching,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        OrchestratorConfig {
            max_steps: 200,
            parallelism: Parallelism::default(),
            evaluation: Evaluation::default(),
            sharding: Sharding::default(),
            query_caching: QueryCaching::default(),
        }
    }
}

/// Owns the transducer fleet, the policy, and the trace.
pub struct Orchestrator {
    transducers: Vec<Box<dyn Transducer>>,
    policy: Box<dyn SchedulingPolicy>,
    config: OrchestratorConfig,
    /// KB version at the end of each transducer's last run.
    last_run: HashMap<String, u64>,
    trace: Trace,
    step: usize,
    /// Observability registry: per-step spans, structural counters, and
    /// whatever the fleet's substrates tally. Disabled (a no-op stub) by
    /// default; [`set_obs`](Orchestrator::set_obs) broadcasts a live one.
    obs: Obs,
}

impl std::fmt::Debug for Orchestrator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Orchestrator")
            .field("transducers", &self.transducers.iter().map(|t| t.name().to_string()).collect::<Vec<_>>())
            .field("policy", &self.policy.name())
            .field("steps", &self.step)
            .finish()
    }
}

impl Orchestrator {
    /// Build with the default generic policy.
    pub fn new(transducers: Vec<Box<dyn Transducer>>) -> Orchestrator {
        Orchestrator::with_policy(transducers, Box::new(GenericPolicy))
    }

    /// Build with an explicit network-transducer policy.
    pub fn with_policy(
        transducers: Vec<Box<dyn Transducer>>,
        policy: Box<dyn SchedulingPolicy>,
    ) -> Orchestrator {
        let mut orch = Orchestrator {
            transducers,
            policy,
            config: OrchestratorConfig::default(),
            last_run: HashMap::new(),
            trace: Trace::default(),
            step: 0,
            obs: Obs::disabled(),
        };
        // the orchestrator owns the parallelism, evaluation and sharding
        // knobs: every registration path (constructor, add_transducer,
        // set_config) broadcasts the current levels, so behaviour never
        // depends on how a component reached the fleet
        for t in &mut orch.transducers {
            t.set_parallelism(orch.config.parallelism);
            t.set_evaluation(orch.config.evaluation);
            t.set_sharding(orch.config.sharding);
            t.set_query_caching(orch.config.query_caching);
        }
        orch
    }

    /// Override limits, broadcasting the parallelism level, evaluation
    /// mode and sharding level to the fleet.
    pub fn set_config(&mut self, config: OrchestratorConfig) {
        for t in &mut self.transducers {
            t.set_parallelism(config.parallelism);
            t.set_evaluation(config.evaluation);
            t.set_sharding(config.sharding);
            t.set_query_caching(config.query_caching);
        }
        self.config = config;
    }

    /// The current configuration.
    pub fn config(&self) -> &OrchestratorConfig {
        &self.config
    }

    /// Register an additional transducer (the architecture is extensible:
    /// "additional transducers can be added at any time", §2.3). It adopts
    /// the orchestrator's current parallelism level.
    pub fn add_transducer(&mut self, mut t: Box<dyn Transducer>) {
        t.set_parallelism(self.config.parallelism);
        t.set_evaluation(self.config.evaluation);
        t.set_sharding(self.config.sharding);
        t.set_query_caching(self.config.query_caching);
        t.set_obs(self.obs.clone());
        self.transducers.push(t);
    }

    /// Broadcast an observability registry to the fleet. Like the other
    /// knobs the registry never influences results — it only observes —
    /// so this is safe at any point; a disabled handle turns collection
    /// back off everywhere.
    pub fn set_obs(&mut self, obs: Obs) {
        for t in &mut self.transducers {
            t.set_obs(obs.clone());
        }
        self.obs = obs;
    }

    /// The orchestrator's observability registry.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The execution trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The registered transducers.
    pub fn transducers(&self) -> &[Box<dyn Transducer>] {
        &self.transducers
    }

    /// Indices of transducers that are ready *and* have new inputs.
    fn eligible(&self, kb: &KnowledgeBase) -> Result<Vec<usize>> {
        let mut out = Vec::new();
        for (i, t) in self.transducers.iter().enumerate() {
            let last = self.last_run.get(t.name()).copied().unwrap_or(0);
            let newest_input = t
                .input_aspects()
                .iter()
                .map(|a| kb.aspect_version(a))
                .max()
                .unwrap_or(0);
            // a never-run transducer is eligible as soon as it is ready;
            // afterwards only when an input aspect changed
            let has_new_inputs = !self.last_run.contains_key(t.name()) || newest_input > last;
            if has_new_inputs && t.ready(kb)? {
                out.push(i);
            }
        }
        Ok(out)
    }

    /// Run transducers until no transducer is eligible (fixpoint) or the
    /// step limit trips. Returns the number of executions performed.
    pub fn run_to_fixpoint(&mut self, kb: &mut KnowledgeBase) -> Result<usize> {
        let mut executed = 0usize;
        loop {
            let eligible = self.eligible(kb)?;
            if eligible.is_empty() {
                return Ok(executed);
            }
            if executed >= self.config.max_steps {
                return Err(VadaError::Transducer(format!(
                    "orchestration exceeded {} steps without reaching a fixpoint; \
                     eligible: {:?}",
                    self.config.max_steps,
                    eligible
                        .iter()
                        .map(|&i| self.transducers[i].name().to_string())
                        .collect::<Vec<_>>()
                )));
            }
            let chosen = self.policy.choose(&eligible, &self.transducers);
            let before = kb.version();
            // before/after counter snapshots bracket the whole step, so
            // the trace entry's delta includes everything the substrate
            // tallied on the step's behalf (engine passes, WAL appends, …)
            let counters_before = self.obs.counters();
            let span = self.obs.span("orchestrator/step");
            let started = Instant::now();
            let t = &mut self.transducers[chosen];
            let outcome = t.run(kb).map_err(|e| {
                VadaError::Transducer(format!("{} failed: {e}", t.name()))
            })?;
            let after = kb.version();
            self.obs.incr(obs_key::ORCH_STEPS);
            self.obs.add(obs_key::ORCH_WRITES, outcome.writes as u64);
            self.obs
                .incr(&format!("{}{}", obs_key::ACTIVITY_PREFIX, t.activity().tag()));
            span.attr("step", self.step);
            span.attr("transducer", t.name());
            span.attr("activity", t.activity().tag());
            span.attr("writes", outcome.writes);
            drop(span);
            let counters = self
                .obs
                .counters()
                .into_iter()
                .filter_map(|(name, v)| {
                    let delta = v - counters_before.get(&name).copied().unwrap_or(0);
                    (delta > 0).then_some((name, delta))
                })
                .collect();
            self.last_run.insert(t.name().to_string(), after);
            self.trace.push(TraceEntry {
                step: self.step,
                transducer: t.name().to_string(),
                activity: t.activity(),
                input_dependency: t.input_dependency().to_string(),
                kb_version_before: before,
                kb_version_after: after,
                summary: outcome.summary,
                writes: outcome.writes,
                duration: started.elapsed(),
                counters,
            });
            self.step += 1;
            executed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transducer::{Activity, RunOutcome};
    use vada_common::{tuple, Relation, Schema};

    /// A transducer that copies source rows into an intermediate relation,
    /// used to exercise the scheduling machinery.
    #[derive(Debug)]
    struct CopySource {
        runs: usize,
    }

    impl Transducer for CopySource {
        fn name(&self) -> &str {
            "copy_source"
        }
        fn activity(&self) -> Activity {
            Activity::Extraction
        }
        fn input_dependency(&self) -> &str {
            r#"relation(R, "source", N), N > 0"#
        }
        fn input_aspects(&self) -> &'static [&'static str] {
            &["relations"]
        }
        fn run(&mut self, kb: &mut KnowledgeBase) -> Result<RunOutcome> {
            self.runs += 1;
            let src = kb.relation("src")?.clone();
            let copy = Relation::from_tuples(src.schema().renamed("copy"), src.tuples().to_vec())?;
            kb.put_intermediate(copy);
            Ok(RunOutcome::new("copied", src.len()))
        }
    }

    #[test]
    fn runs_when_ready_then_reaches_fixpoint() {
        let mut kb = KnowledgeBase::new();
        let mut orch = Orchestrator::new(vec![Box::new(CopySource { runs: 0 })]);
        // nothing registered: not ready, fixpoint immediately
        assert_eq!(orch.run_to_fixpoint(&mut kb).unwrap(), 0);

        let mut src = Relation::empty(Schema::all_str("src", &["a"]));
        src.push(tuple!["x"]).unwrap();
        kb.register_source(src);
        assert_eq!(orch.run_to_fixpoint(&mut kb).unwrap(), 1);
        assert!(kb.relation("copy").is_ok());
        // no new inputs: nothing to do
        assert_eq!(orch.run_to_fixpoint(&mut kb).unwrap(), 0);
        assert_eq!(orch.trace().len(), 1);
    }

    #[test]
    fn new_inputs_reactivate() {
        let mut kb = KnowledgeBase::new();
        let mut src = Relation::empty(Schema::all_str("src", &["a"]));
        src.push(tuple!["x"]).unwrap();
        kb.register_source(src.clone());
        let mut orch = Orchestrator::new(vec![Box::new(CopySource { runs: 0 })]);
        orch.run_to_fixpoint(&mut kb).unwrap();
        // register a bigger source under the same name: relations aspect bumps
        src.push(tuple!["y"]).unwrap();
        kb.register_source(src);
        assert_eq!(orch.run_to_fixpoint(&mut kb).unwrap(), 1);
        assert_eq!(orch.trace().len(), 2);
    }

    /// Two transducers that each write the aspect the other reads — a
    /// genuine oscillation the step limit must catch. (A transducer that
    /// writes only its *own* input aspect does not retrigger itself: its
    /// last-run version is recorded after the write.)
    #[derive(Debug)]
    struct PingPong {
        name: &'static str,
        reads: &'static [&'static str],
        write_quality: bool,
    }

    impl Transducer for PingPong {
        fn name(&self) -> &str {
            self.name
        }
        fn activity(&self) -> Activity {
            Activity::Quality
        }
        fn input_dependency(&self) -> &str {
            r#"relation(_, "source", _)"#
        }
        fn input_aspects(&self) -> &'static [&'static str] {
            self.reads
        }
        fn run(&mut self, kb: &mut KnowledgeBase) -> Result<RunOutcome> {
            if self.write_quality {
                kb.add_quality(vada_kb::QualityFact {
                    entity_kind: "x".into(),
                    entity: "y".into(),
                    metric: "m".into(),
                    criterion: String::new(),
                    value: 0.0,
                });
            } else {
                kb.put_intermediate(Relation::empty(Schema::all_str("tmp", &["a"])));
            }
            Ok(RunOutcome::new("wrote", 1))
        }
    }

    #[test]
    fn step_limit_guards_oscillation() {
        let mut kb = KnowledgeBase::new();
        let mut src = Relation::empty(Schema::all_str("src", &["a"]));
        src.push(tuple!["x"]).unwrap();
        kb.register_source(src);
        let mut orch = Orchestrator::new(vec![
            // reads quality, writes intermediates
            Box::new(PingPong { name: "a", reads: &["quality"], write_quality: false }),
            // reads intermediates, writes quality
            Box::new(PingPong { name: "b", reads: &["intermediates"], write_quality: true }),
        ]);
        orch.set_config(OrchestratorConfig { max_steps: 10, ..Default::default() });
        let err = orch.run_to_fixpoint(&mut kb).unwrap_err();
        assert!(err.to_string().contains("10 steps"));
    }

    #[test]
    fn self_aspect_writer_does_not_retrigger_itself() {
        let mut kb = KnowledgeBase::new();
        let mut src = Relation::empty(Schema::all_str("src", &["a"]));
        src.push(tuple!["x"]).unwrap();
        kb.register_source(src);
        // reads quality, writes quality: runs once, then settles
        let mut orch = Orchestrator::new(vec![Box::new(PingPong {
            name: "self",
            reads: &["quality"],
            write_quality: true,
        })]);
        assert_eq!(orch.run_to_fixpoint(&mut kb).unwrap(), 1);
    }
}
