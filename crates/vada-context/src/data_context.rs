//! Data-context analysis: how much of the target schema a context relation
//! covers, and which context kinds license which wrangling steps.

use vada_common::Result;
use vada_kb::{ContextKind, KnowledgeBase};

/// What a data-context relation licenses (paper §2.2–2.3): reference and
/// master data can train CFDs and serve as accuracy ground truth; all kinds
/// support instance matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextCapabilities {
    /// Can CFDs be learned from it (needs authoritative coverage)?
    pub cfd_training: bool,
    /// Can it act as an accuracy/completeness reference?
    pub quality_reference: bool,
    /// Can instance matching exploit it?
    pub instance_matching: bool,
}

/// Capabilities of a context kind.
pub fn capabilities(kind: ContextKind) -> ContextCapabilities {
    match kind {
        ContextKind::Reference => ContextCapabilities {
            cfd_training: true,
            quality_reference: true,
            instance_matching: true,
        },
        ContextKind::Master => ContextCapabilities {
            cfd_training: true,
            quality_reference: true,
            instance_matching: true,
        },
        ContextKind::Example => ContextCapabilities {
            cfd_training: false,
            quality_reference: false,
            instance_matching: true,
        },
    }
}

/// Coverage of the target schema by a context relation: the fraction of
/// target attributes reachable through context bindings.
pub fn target_coverage(kb: &KnowledgeBase, context_rel: &str) -> Result<f64> {
    let target = match kb.target_schema() {
        Some(t) => t,
        None => return Ok(0.0),
    };
    let bound: std::collections::HashSet<&str> = kb
        .context_bindings()
        .iter()
        .filter(|(rel, _, _)| rel == context_rel)
        .map(|(_, _, tgt)| tgt.as_str())
        .collect();
    if target.arity() == 0 {
        return Ok(0.0);
    }
    Ok(bound.len() as f64 / target.arity() as f64)
}

/// All context relations that can train CFDs, with their coverage, sorted
/// by coverage descending.
pub fn cfd_training_contexts(kb: &KnowledgeBase) -> Result<Vec<(String, f64)>> {
    let mut out = Vec::new();
    for (rel, kind) in kb.context_relations() {
        if capabilities(kind).cfd_training {
            let cov = target_coverage(kb, &rel)?;
            out.push((rel, cov));
        }
    }
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::{Relation, Schema, tuple};

    fn kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.register_target_schema(Schema::all_str(
            "property",
            &["street", "postcode", "price", "crimerank"],
        ));
        let mut addr = Relation::empty(Schema::all_str("address", &["street", "city", "postcode"]));
        addr.push(tuple!["12 High St", "manchester", "M13 9PL"]).unwrap();
        kb.register_data_context(
            addr,
            ContextKind::Reference,
            &[("street", "street"), ("postcode", "postcode")],
        )
        .unwrap();
        kb
    }

    #[test]
    fn reference_data_licenses_cfds() {
        assert!(capabilities(ContextKind::Reference).cfd_training);
        assert!(capabilities(ContextKind::Master).cfd_training);
        assert!(!capabilities(ContextKind::Example).cfd_training);
        assert!(capabilities(ContextKind::Example).instance_matching);
    }

    #[test]
    fn coverage_counts_bound_target_attrs() {
        let kb = kb();
        // 2 of 4 target attributes bound
        assert!((target_coverage(&kb, "address").unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(target_coverage(&kb, "none").unwrap(), 0.0);
    }

    #[test]
    fn training_contexts_sorted_by_coverage() {
        let mut kb = kb();
        let mut pc = Relation::empty(Schema::all_str("postcodes", &["postcode"]));
        pc.push(tuple!["M13 9PL"]).unwrap();
        kb.register_data_context(pc, ContextKind::Reference, &[("postcode", "postcode")])
            .unwrap();
        let ctxs = cfd_training_contexts(&kb).unwrap();
        assert_eq!(ctxs.len(), 2);
        assert_eq!(ctxs[0].0, "address"); // higher coverage first
        assert!(ctxs[0].1 > ctxs[1].1);
    }
}
