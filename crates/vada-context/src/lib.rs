//! # vada-context
//!
//! User and data context (paper §2.2).
//!
//! The **user context** is a set of pairwise-comparison statements over
//! quality criteria ("completeness of crimerank is *very strongly* more
//! important than accuracy of type", Fig 2(d)). Following the paper's
//! multi-criteria decision-analysis approach, we map the vocabulary to the
//! Saaty 1–9 scale ([`saaty`]) and derive criterion weights with the
//! Analytic Hierarchy Process ([`ahp`]), including the consistency ratio so
//! contradictory preference sets are flagged.
//!
//! The **data context** associates reference / master / example relations
//! with the target schema; [`data_context`] computes how much of the target
//! schema a context covers, which gates the transducers that exploit it
//! (CFD learning, instance matching, repair).

pub mod ahp;
pub mod data_context;
pub mod saaty;
pub mod user_context;

pub use ahp::{AhpResult, PairwiseMatrix};
pub use saaty::Strength;
pub use user_context::{Criterion, UserContext};
