//! The user context: quality criteria, pairwise statements, derived
//! weights, and weighted utility scoring.

use std::fmt;

use vada_common::{Result, VadaError};
use vada_kb::PairwiseStatement;

use crate::ahp::{AhpResult, PairwiseMatrix};
use crate::saaty::Strength;

/// A quality criterion: a metric applied to a scope, e.g.
/// `completeness(crimerank)` or `consistency(property)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Criterion {
    /// Quality metric name (`completeness`, `accuracy`, `consistency`, ...).
    pub metric: String,
    /// Scope: a target attribute (`crimerank`) or relation (`property`).
    pub scope: String,
}

impl Criterion {
    /// Construct a criterion.
    pub fn new(metric: impl Into<String>, scope: impl Into<String>) -> Criterion {
        Criterion { metric: metric.into(), scope: scope.into() }
    }

    /// Parse `metric(scope)` strings, e.g. `completeness(property.street)`.
    /// A relation prefix inside the scope (`property.street`) is kept as-is.
    pub fn parse(s: &str) -> Result<Criterion> {
        let s = s.trim();
        let open = s
            .find('(')
            .ok_or_else(|| VadaError::Context(format!("criterion `{s}` is not metric(scope)")))?;
        if !s.ends_with(')') {
            return Err(VadaError::Context(format!("criterion `{s}` missing `)`")));
        }
        let metric = s[..open].trim();
        let scope = s[open + 1..s.len() - 1].trim();
        if metric.is_empty() || scope.is_empty() {
            return Err(VadaError::Context(format!("criterion `{s}` has empty parts")));
        }
        Ok(Criterion::new(metric, scope))
    }

    /// The attribute part of the scope (strips a relation prefix).
    pub fn scope_attr(&self) -> &str {
        self.scope.rsplit('.').next().unwrap_or(&self.scope)
    }
}

impl fmt::Display for Criterion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.metric, self.scope)
    }
}

/// The user context: criteria discovered from the statements, the AHP
/// weights derived from them, and the consistency diagnostics.
#[derive(Debug, Clone)]
pub struct UserContext {
    /// Criteria in matrix order.
    pub criteria: Vec<Criterion>,
    /// The AHP solution (weights aligned with `criteria`).
    pub ahp: AhpResult,
}

impl UserContext {
    /// Derive a user context from pairwise statements (paper Fig 2(d)).
    ///
    /// Criteria not mentioned in any statement can be supplied via
    /// `extra_criteria` so they participate with default (equal) judgements.
    pub fn derive(
        statements: &[PairwiseStatement],
        extra_criteria: &[Criterion],
    ) -> Result<UserContext> {
        let mut criteria: Vec<Criterion> = Vec::new();
        let push = |c: Criterion, criteria: &mut Vec<Criterion>| {
            if !criteria.contains(&c) {
                criteria.push(c);
            }
        };
        for s in statements {
            push(Criterion::parse(&s.more_important)?, &mut criteria);
            push(Criterion::parse(&s.less_important)?, &mut criteria);
        }
        for c in extra_criteria {
            push(c.clone(), &mut criteria);
        }
        if criteria.is_empty() {
            return Err(VadaError::Context(
                "user context needs at least one criterion".into(),
            ));
        }
        let names: Vec<String> = criteria.iter().map(|c| c.to_string()).collect();
        let mut matrix = PairwiseMatrix::new(names)?;
        for s in statements {
            let strength = Strength::parse(&s.strength)?;
            let more = Criterion::parse(&s.more_important)?.to_string();
            let less = Criterion::parse(&s.less_important)?.to_string();
            matrix.set(&more, &less, strength.scale())?;
        }
        let ahp = matrix.solve();
        Ok(UserContext { criteria, ahp })
    }

    /// A uniform user context over the given criteria (used when the user
    /// has expressed no preferences — every criterion weighs the same).
    pub fn uniform(criteria: Vec<Criterion>) -> Result<UserContext> {
        let names: Vec<String> = criteria.iter().map(|c| c.to_string()).collect();
        let matrix = PairwiseMatrix::new(names)?;
        let ahp = matrix.solve();
        Ok(UserContext { criteria, ahp })
    }

    /// The weight of a criterion (0 if unknown).
    pub fn weight(&self, criterion: &Criterion) -> f64 {
        self.ahp.weight(&criterion.to_string()).unwrap_or(0.0)
    }

    /// Weighted utility of an alternative whose per-criterion scores are
    /// provided by `score` (scores in `[0,1]`; missing criteria score 0).
    pub fn utility(&self, mut score: impl FnMut(&Criterion) -> Option<f64>) -> f64 {
        self.criteria
            .iter()
            .map(|c| self.weight(c) * score(c).unwrap_or(0.0))
            .sum()
    }

    /// Render the derived weights as report lines, sorted by weight
    /// descending.
    pub fn weight_table(&self) -> Vec<(String, f64)> {
        let mut rows: Vec<(String, f64)> = self
            .criteria
            .iter()
            .map(|c| (c.to_string(), self.weight(c)))
            .collect();
        rows.sort_by(|a, b| b.1.total_cmp(&a.1));
        rows
    }
}

/// The three statements of the paper's running example (Fig 2(d)).
pub fn paper_fig2d_statements() -> Vec<PairwiseStatement> {
    vec![
        PairwiseStatement {
            more_important: "completeness(crimerank)".into(),
            less_important: "accuracy(property.type)".into(),
            strength: "very strongly".into(),
        },
        PairwiseStatement {
            more_important: "consistency(property)".into(),
            less_important: "completeness(property.bedrooms)".into(),
            strength: "strongly".into(),
        },
        PairwiseStatement {
            more_important: "completeness(property.street)".into(),
            less_important: "completeness(property.postcode)".into(),
            strength: "moderately".into(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn criterion_parse_and_display() {
        let c = Criterion::parse("completeness(property.street)").unwrap();
        assert_eq!(c.metric, "completeness");
        assert_eq!(c.scope, "property.street");
        assert_eq!(c.scope_attr(), "street");
        assert_eq!(c.to_string(), "completeness(property.street)");
        assert!(Criterion::parse("nope").is_err());
        assert!(Criterion::parse("m()").is_err());
    }

    #[test]
    fn paper_statements_derive_sensible_weights() {
        let ctx = UserContext::derive(&paper_fig2d_statements(), &[]).unwrap();
        assert_eq!(ctx.criteria.len(), 6);
        let w_crime = ctx.weight(&Criterion::new("completeness", "crimerank"));
        let w_type = ctx.weight(&Criterion::new("accuracy", "property.type"));
        let w_cons = ctx.weight(&Criterion::new("consistency", "property"));
        let w_bed = ctx.weight(&Criterion::new("completeness", "property.bedrooms"));
        assert!(w_crime > w_type, "crimerank {w_crime} should beat type {w_type}");
        assert!(w_cons > w_bed);
        let total: f64 = ctx.ahp.weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // With only 3 of 15 comparisons specified (the rest default to 1),
        // the matrix is mildly inconsistent — CR ≈ 0.147. That is expected
        // for sparse judgement sets; we only require it stays moderate.
        assert!(
            ctx.ahp.consistency_ratio < 0.2,
            "CR = {}",
            ctx.ahp.consistency_ratio
        );
    }

    #[test]
    fn uniform_context_weighs_equally() {
        let ctx = UserContext::uniform(vec![
            Criterion::new("completeness", "a"),
            Criterion::new("accuracy", "b"),
        ])
        .unwrap();
        assert!((ctx.weight(&Criterion::new("completeness", "a")) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn utility_weights_scores() {
        let ctx = UserContext::derive(&paper_fig2d_statements(), &[]).unwrap();
        let u_all = ctx.utility(|_| Some(1.0));
        assert!((u_all - 1.0).abs() < 1e-9);
        // an alternative strong only on the dominant criterion beats one
        // strong only on a dominated criterion
        let crime = Criterion::new("completeness", "crimerank");
        let ty = Criterion::new("accuracy", "property.type");
        let u_crime = ctx.utility(|c| if *c == crime { Some(1.0) } else { Some(0.0) });
        let u_type = ctx.utility(|c| if *c == ty { Some(1.0) } else { Some(0.0) });
        assert!(u_crime > u_type);
    }

    #[test]
    fn different_contexts_reorder_weights() {
        // paper §2.2: switching the analysis from crime to size makes
        // bedrooms completeness more important
        let crime_ctx = UserContext::derive(&paper_fig2d_statements(), &[]).unwrap();
        let size_stmts = vec![PairwiseStatement {
            more_important: "completeness(property.bedrooms)".into(),
            less_important: "accuracy(property.type)".into(),
            strength: "very strongly".into(),
        }];
        let size_ctx = UserContext::derive(
            &size_stmts,
            &[Criterion::new("completeness", "crimerank")],
        )
        .unwrap();
        let bed = Criterion::new("completeness", "property.bedrooms");
        assert!(size_ctx.weight(&bed) > crime_ctx.weight(&bed));
    }

    #[test]
    fn extra_criteria_participate() {
        let ctx = UserContext::derive(
            &paper_fig2d_statements(),
            &[Criterion::new("completeness", "property.price")],
        )
        .unwrap();
        assert_eq!(ctx.criteria.len(), 7);
        assert!(ctx.weight(&Criterion::new("completeness", "property.price")) > 0.0);
    }

    #[test]
    fn weight_table_sorted_desc() {
        let ctx = UserContext::derive(&paper_fig2d_statements(), &[]).unwrap();
        let table = ctx.weight_table();
        for w in table.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
