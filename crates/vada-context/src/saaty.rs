//! The Saaty 1–9 importance scale used by pairwise comparisons.

use vada_common::{Result, VadaError};

/// Verbal importance strengths, mapped to the Saaty scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strength {
    /// 1 — equally important.
    Equally,
    /// 3 — moderately more important.
    Moderately,
    /// 5 — strongly more important.
    Strongly,
    /// 7 — very strongly more important.
    VeryStrongly,
    /// 9 — extremely more important.
    Extremely,
}

impl Strength {
    /// The Saaty scale value.
    pub fn scale(&self) -> f64 {
        match self {
            Strength::Equally => 1.0,
            Strength::Moderately => 3.0,
            Strength::Strongly => 5.0,
            Strength::VeryStrongly => 7.0,
            Strength::Extremely => 9.0,
        }
    }

    /// Parse the verbal form used in user-context statements. Accepts the
    /// bare adverb (`"strongly"`) and the full phrase
    /// (`"strongly more important than"`).
    pub fn parse(s: &str) -> Result<Strength> {
        let norm = s.trim().to_ascii_lowercase();
        let head = norm
            .strip_suffix("more important than")
            .unwrap_or(&norm)
            .trim();
        match head {
            "equally" | "equally important" => Ok(Strength::Equally),
            "moderately" => Ok(Strength::Moderately),
            "strongly" => Ok(Strength::Strongly),
            "very strongly" => Ok(Strength::VeryStrongly),
            "extremely" => Ok(Strength::Extremely),
            other => Err(VadaError::Context(format!(
                "unknown importance strength `{other}` (expected equally / moderately / strongly / very strongly / extremely)"
            ))),
        }
    }

    /// The verbal form.
    pub fn phrase(&self) -> &'static str {
        match self {
            Strength::Equally => "equally important",
            Strength::Moderately => "moderately more important than",
            Strength::Strongly => "strongly more important than",
            Strength::VeryStrongly => "very strongly more important than",
            Strength::Extremely => "extremely more important than",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_values() {
        assert_eq!(Strength::Equally.scale(), 1.0);
        assert_eq!(Strength::Moderately.scale(), 3.0);
        assert_eq!(Strength::Strongly.scale(), 5.0);
        assert_eq!(Strength::VeryStrongly.scale(), 7.0);
        assert_eq!(Strength::Extremely.scale(), 9.0);
    }

    #[test]
    fn parse_bare_and_full_phrase() {
        assert_eq!(Strength::parse("strongly").unwrap(), Strength::Strongly);
        assert_eq!(
            Strength::parse("very strongly more important than").unwrap(),
            Strength::VeryStrongly
        );
        assert_eq!(
            Strength::parse("  Moderately ").unwrap(),
            Strength::Moderately
        );
        assert!(Strength::parse("kinda").is_err());
    }

    #[test]
    fn phrase_round_trips() {
        for s in [
            Strength::Equally,
            Strength::Moderately,
            Strength::Strongly,
            Strength::VeryStrongly,
            Strength::Extremely,
        ] {
            assert_eq!(Strength::parse(s.phrase()).unwrap(), s);
        }
    }
}
