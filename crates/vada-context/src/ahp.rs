//! Analytic Hierarchy Process: derive criterion weights from a reciprocal
//! pairwise-comparison matrix and measure the consistency of the user's
//! judgements.
//!
//! Weights are computed with the geometric-mean (logarithmic least squares)
//! method; the principal eigenvalue for the consistency index is estimated
//! from the derived weights (`λ_max = mean_i (A·w)_i / w_i`), which is exact
//! for consistent matrices and a standard approximation otherwise.

use vada_common::{Result, VadaError};

/// Random-consistency indices for matrix sizes 1..=10 (Saaty).
const RANDOM_INDEX: [f64; 11] = [
    0.0, 0.0, 0.0, 0.58, 0.90, 1.12, 1.24, 1.32, 1.41, 1.45, 1.49,
];

/// A reciprocal pairwise-comparison matrix over named criteria.
#[derive(Debug, Clone)]
pub struct PairwiseMatrix {
    criteria: Vec<String>,
    /// row-major `a[i][j]` = importance of criterion i relative to j.
    values: Vec<Vec<f64>>,
}

impl PairwiseMatrix {
    /// An identity (all-equal) matrix over the given criteria.
    pub fn new(criteria: Vec<String>) -> Result<PairwiseMatrix> {
        if criteria.is_empty() {
            return Err(VadaError::Context("no criteria".into()));
        }
        let mut seen = std::collections::HashSet::new();
        for c in &criteria {
            if !seen.insert(c.as_str()) {
                return Err(VadaError::Context(format!("duplicate criterion `{c}`")));
            }
        }
        let n = criteria.len();
        Ok(PairwiseMatrix { criteria, values: vec![vec![1.0; n]; n] })
    }

    /// The criteria, in matrix order.
    pub fn criteria(&self) -> &[String] {
        &self.criteria
    }

    /// Number of criteria.
    pub fn len(&self) -> usize {
        self.criteria.len()
    }

    /// Whether the matrix is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.criteria.is_empty()
    }

    fn index_of(&self, criterion: &str) -> Result<usize> {
        self.criteria
            .iter()
            .position(|c| c == criterion)
            .ok_or_else(|| VadaError::Context(format!("unknown criterion `{criterion}`")))
    }

    /// Record that `more` is `scale`× more important than `less`
    /// (reciprocal is set automatically).
    pub fn set(&mut self, more: &str, less: &str, scale: f64) -> Result<()> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(VadaError::Context(format!("invalid scale {scale}")));
        }
        let i = self.index_of(more)?;
        let j = self.index_of(less)?;
        if i == j {
            return Err(VadaError::Context(format!(
                "criterion `{more}` compared with itself"
            )));
        }
        self.values[i][j] = scale;
        self.values[j][i] = 1.0 / scale;
        Ok(())
    }

    /// The comparison value between two criteria.
    pub fn get(&self, a: &str, b: &str) -> Result<f64> {
        Ok(self.values[self.index_of(a)?][self.index_of(b)?])
    }

    /// Derive weights and the consistency ratio.
    pub fn solve(&self) -> AhpResult {
        let n = self.len();
        // geometric mean of each row
        let mut weights: Vec<f64> = self
            .values
            .iter()
            .map(|row| {
                let log_sum: f64 = row.iter().map(|v| v.ln()).sum();
                (log_sum / n as f64).exp()
            })
            .collect();
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        // λ_max estimate
        let mut lambda = 0.0;
        for i in 0..n {
            let row_dot: f64 = (0..n).map(|j| self.values[i][j] * weights[j]).sum();
            lambda += row_dot / weights[i];
        }
        lambda /= n as f64;
        let ci = if n > 1 { (lambda - n as f64) / (n as f64 - 1.0) } else { 0.0 };
        let ri = RANDOM_INDEX
            .get(n)
            .copied()
            .unwrap_or(*RANDOM_INDEX.last().expect("non-empty table"));
        let cr = if ri == 0.0 { 0.0 } else { ci / ri };
        AhpResult {
            criteria: self.criteria.clone(),
            weights,
            lambda_max: lambda,
            consistency_index: ci,
            consistency_ratio: cr,
        }
    }
}

/// Derived weights plus consistency diagnostics.
#[derive(Debug, Clone)]
pub struct AhpResult {
    /// Criteria, aligned with `weights`.
    pub criteria: Vec<String>,
    /// Normalised weights (sum to 1).
    pub weights: Vec<f64>,
    /// Estimated principal eigenvalue.
    pub lambda_max: f64,
    /// Consistency index `(λ_max − n) / (n − 1)`.
    pub consistency_index: f64,
    /// Consistency ratio `CI / RI`; ≤ 0.1 is conventionally acceptable.
    pub consistency_ratio: f64,
}

impl AhpResult {
    /// The weight of a criterion.
    pub fn weight(&self, criterion: &str) -> Option<f64> {
        self.criteria
            .iter()
            .position(|c| c == criterion)
            .map(|i| self.weights[i])
    }

    /// Whether the judgements are acceptably consistent (CR ≤ 0.1).
    pub fn is_consistent(&self) -> bool {
        self.consistency_ratio <= 0.1 + 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identity_matrix_gives_equal_weights() {
        let m = PairwiseMatrix::new(names(&["a", "b", "c"])).unwrap();
        let r = m.solve();
        for w in &r.weights {
            assert!((w - 1.0 / 3.0).abs() < 1e-9);
        }
        assert!(r.is_consistent());
        assert!((r.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dominant_criterion_gets_larger_weight() {
        let mut m = PairwiseMatrix::new(names(&["crime", "type"])).unwrap();
        m.set("crime", "type", 7.0).unwrap();
        let r = m.solve();
        assert!(r.weight("crime").unwrap() > 0.8);
        assert!((r.weight("crime").unwrap() - 7.0 * r.weight("type").unwrap()).abs() < 1e-6);
    }

    #[test]
    fn consistent_transitive_judgements() {
        // a = 2b, b = 2c, a = 4c: perfectly consistent
        let mut m = PairwiseMatrix::new(names(&["a", "b", "c"])).unwrap();
        m.set("a", "b", 2.0).unwrap();
        m.set("b", "c", 2.0).unwrap();
        m.set("a", "c", 4.0).unwrap();
        let r = m.solve();
        assert!(r.consistency_ratio.abs() < 1e-9);
        let wa = r.weight("a").unwrap();
        let wb = r.weight("b").unwrap();
        assert!((wa / wb - 2.0).abs() < 1e-9);
    }

    #[test]
    fn contradictory_judgements_flagged() {
        // a > b, b > c, c > a strongly: a cycle, badly inconsistent
        let mut m = PairwiseMatrix::new(names(&["a", "b", "c"])).unwrap();
        m.set("a", "b", 5.0).unwrap();
        m.set("b", "c", 5.0).unwrap();
        m.set("c", "a", 5.0).unwrap();
        let r = m.solve();
        assert!(!r.is_consistent(), "CR = {}", r.consistency_ratio);
    }

    #[test]
    fn reciprocal_enforced() {
        let mut m = PairwiseMatrix::new(names(&["a", "b"])).unwrap();
        m.set("a", "b", 3.0).unwrap();
        assert!((m.get("b", "a").unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(PairwiseMatrix::new(vec![]).is_err());
        assert!(PairwiseMatrix::new(names(&["a", "a"])).is_err());
        let mut m = PairwiseMatrix::new(names(&["a", "b"])).unwrap();
        assert!(m.set("a", "a", 3.0).is_err());
        assert!(m.set("a", "zz", 3.0).is_err());
        assert!(m.set("a", "b", -1.0).is_err());
        assert!(m.set("a", "b", f64::NAN).is_err());
    }
}
