//! Property-based tests for AHP: weights are a distribution, respect
//! dominance, and consistent matrices have zero consistency index.

use proptest::prelude::*;

use vada_context::PairwiseMatrix;

fn names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("c{i}")).collect()
}

proptest! {
    #[test]
    fn weights_form_a_distribution(
        n in 2usize..8,
        entries in proptest::collection::vec((0usize..8, 0usize..8, 1u8..10), 0..16)
    ) {
        let ns = names(n);
        let mut m = PairwiseMatrix::new(ns.clone()).unwrap();
        for (i, j, s) in entries {
            if i < n && j < n && i != j {
                m.set(&ns[i], &ns[j], s as f64).unwrap();
            }
        }
        let r = m.solve();
        let total: f64 = r.weights.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(r.weights.iter().all(|w| *w > 0.0));
    }

    #[test]
    fn single_dominant_judgement_orders_weights(n in 2usize..7, scale in 2u8..10) {
        let ns = names(n);
        let mut m = PairwiseMatrix::new(ns.clone()).unwrap();
        m.set(&ns[0], &ns[1], scale as f64).unwrap();
        let r = m.solve();
        prop_assert!(
            r.weight(&ns[0]).unwrap() > r.weight(&ns[1]).unwrap(),
            "dominant criterion must outweigh the dominated one"
        );
    }

    #[test]
    fn consistent_chains_have_zero_ci(n in 3usize..6, base in 1u8..3) {
        // w_i = base^i gives a perfectly consistent matrix a_ij = w_i / w_j
        let ns = names(n);
        let mut m = PairwiseMatrix::new(ns.clone()).unwrap();
        let w: Vec<f64> = (0..n).map(|i| (base as f64).powi(i as i32)).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(&ns[i], &ns[j], w[i] / w[j]).unwrap();
            }
        }
        let r = m.solve();
        prop_assert!(r.consistency_index.abs() < 1e-6, "CI = {}", r.consistency_index);
        // derived weights proportional to the generating weights
        for i in 1..n {
            let ratio = r.weights[i - 1] / r.weights[i];
            prop_assert!((ratio - w[i - 1] / w[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn strengthening_a_judgement_never_decreases_the_winner(
        n in 2usize..6, s1 in 2u8..5, extra in 1u8..5
    ) {
        let ns = names(n);
        let mut weak = PairwiseMatrix::new(ns.clone()).unwrap();
        weak.set(&ns[0], &ns[1], s1 as f64).unwrap();
        let mut strong = PairwiseMatrix::new(ns.clone()).unwrap();
        strong.set(&ns[0], &ns[1], (s1 + extra) as f64).unwrap();
        let ww = weak.solve().weight(&ns[0]).unwrap();
        let ws = strong.solve().weight(&ns[0]).unwrap();
        prop_assert!(ws >= ww - 1e-12, "weight fell from {ww} to {ws} when judgement strengthened");
    }
}
