//! Property-based tests for fusion: union-find invariants, blocking
//! partition laws, and survivorship conservation.

use proptest::prelude::*;

use vada_common::{Parallelism, Relation, Schema, Tuple, Value};
use vada_fusion::{
    block_by_keys, block_by_keys_with, blocking_stats, fuse_clusters, Survivorship, UnionFind,
};

proptest! {
    #[test]
    fn union_find_equivalence_relation(
        n in 2usize..40,
        unions in proptest::collection::vec((0usize..40, 0usize..40), 0..60)
    ) {
        let mut uf = UnionFind::new(n);
        for (a, b) in unions {
            if a < n && b < n {
                uf.union(a, b);
                // reflexive + symmetric by construction
                prop_assert!(uf.connected(a, b));
                prop_assert!(uf.connected(b, a));
            }
        }
        // clusters partition 0..n
        let clusters = uf.clusters();
        let mut all: Vec<usize> = clusters.concat();
        all.sort();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        // transitivity: members of one cluster are pairwise connected
        for cluster in &clusters {
            for w in cluster.windows(2) {
                prop_assert!(uf.connected(w[0], w[1]));
            }
        }
    }

    #[test]
    fn blocking_partitions_rows(keys in proptest::collection::vec("[a-c]{1,2}", 1..30)) {
        let schema = Schema::all_str("r", &["k"]);
        let mut rel = Relation::empty(schema);
        for k in &keys {
            rel.push(Tuple::new(vec![Value::str(k)])).unwrap();
        }
        let blocks = block_by_keys(&rel, &["k"]).unwrap();
        let mut all: Vec<usize> = blocks.concat();
        all.sort();
        prop_assert_eq!(all, (0..keys.len()).collect::<Vec<_>>());
        // rows sharing a key share a block
        for block in &blocks {
            let vals: std::collections::HashSet<&str> =
                block.iter().map(|&r| keys[r].as_str()).collect();
            prop_assert_eq!(vals.len(), 1, "mixed keys in one block");
        }
    }

    #[test]
    fn blocking_completeness_over_nullable_keys(
        rows in proptest::collection::vec(
            (proptest::option::of("[a-c]{1,2}"), proptest::option::of("[x-z]{1}")),
            1..40,
        )
    ) {
        let schema = Schema::all_str("r", &["k1", "k2"]);
        let mut rel = Relation::empty(schema);
        for (a, b) in &rows {
            rel.push(Tuple::new(vec![
                a.as_deref().map(Value::str).unwrap_or(Value::Null),
                b.as_deref().map(Value::str).unwrap_or(Value::Null),
            ])).unwrap();
        }
        let blocks = block_by_keys(&rel, &["k1", "k2"]).unwrap();
        // completeness: two rows with equal non-null key attributes (same
        // null pattern, same values) always land in the same block
        let block_of: std::collections::HashMap<usize, usize> = blocks
            .iter()
            .enumerate()
            .flat_map(|(bi, b)| b.iter().map(move |&r| (r, bi)))
            .collect();
        for i in 0..rows.len() {
            for j in i + 1..rows.len() {
                if rows[i] == rows[j] && (rows[i].0.is_some() || rows[i].1.is_some()) {
                    prop_assert_eq!(
                        block_of[&i], block_of[&j],
                        "rows {} and {} share keys {:?} but not a block", i, j, rows[i]
                    );
                }
            }
        }
        // blocking never creates work: candidate pairs within blocks are a
        // subset of the full cross product
        let stats = blocking_stats(&blocks, rel.len());
        prop_assert!(stats.candidate_pairs <= stats.total_pairs);
        prop_assert_eq!(stats.blocks, blocks.len());
        // parallel key extraction is indistinguishable from sequential
        for n in [2usize, 3, 8] {
            let par = block_by_keys_with(&rel, &["k1", "k2"], Parallelism::Threads(n)).unwrap();
            prop_assert_eq!(&par, &blocks, "Threads({}) diverged", n);
        }
    }

    #[test]
    fn fusion_conserves_clusters(
        rows in proptest::collection::vec(("[a-b]{1}", proptest::option::of(0i64..5)), 1..20)
    ) {
        let schema = Schema::all_str("r", &["k", "v"]);
        let mut rel = Relation::empty(schema);
        for (k, v) in &rows {
            rel.push(Tuple::new(vec![
                Value::str(k),
                v.map(Value::Int).unwrap_or(Value::Null),
            ])).unwrap();
        }
        let blocks = block_by_keys(&rel, &["k"]).unwrap();
        for rule in [Survivorship::MostComplete, Survivorship::Majority, Survivorship::TrustWeighted] {
            let (fused, report) = fuse_clusters(&rel, &blocks, rule, None).unwrap();
            prop_assert_eq!(fused.len(), blocks.len());
            prop_assert_eq!(report.input_rows, rel.len());
            prop_assert_eq!(report.duplicates_removed(), rel.len() - blocks.len());
            // every surviving value existed in the cluster (no invention)
            for (cluster, out) in blocks.iter().zip(fused.iter()) {
                for (col, value) in out.iter().enumerate() {
                    if !value.is_null() {
                        prop_assert!(
                            cluster.iter().any(|&r| &rel.tuples()[r][col] == value),
                            "fusion invented {value:?}"
                        );
                    }
                }
            }
        }
    }
}
