//! Weighted record similarity over typed fields.

use vada_common::text::{jaro_winkler, normalize};
use vada_common::{Result, Tuple, Value};

/// How a field is compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// Jaro-Winkler over the normal forms.
    Text,
    /// `1 − |a − b| / max(|a|, |b|)` for numeric values (numeric strings
    /// are parsed).
    Numeric,
    /// 1 when equal (normal forms), else 0.
    Exact,
}

/// One compared field with its weight.
#[derive(Debug, Clone)]
pub struct FieldSpec {
    /// Column index in the tuples being compared.
    pub col: usize,
    /// Relative weight.
    pub weight: f64,
    /// Comparison kind.
    pub kind: FieldKind,
}

fn numeric_of(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        Value::Str(s) => s.trim().parse().ok(),
        _ => None,
    }
}

fn field_similarity(kind: FieldKind, a: &Value, b: &Value) -> Option<f64> {
    if a.is_null() || b.is_null() {
        return None;
    }
    match kind {
        FieldKind::Exact => Some(f64::from(normalize(&a.to_string()) == normalize(&b.to_string()))),
        FieldKind::Text => Some(jaro_winkler(&normalize(&a.to_string()), &normalize(&b.to_string()))),
        FieldKind::Numeric => {
            let (x, y) = (numeric_of(a)?, numeric_of(b)?);
            let denom = x.abs().max(y.abs());
            if denom == 0.0 {
                Some(1.0)
            } else {
                Some((1.0 - (x - y).abs() / denom).max(0.0))
            }
        }
    }
}

/// Weighted similarity of two tuples over the given fields; comparisons
/// where either side is null are skipped (weights renormalised). Returns 0
/// when no field is comparable.
pub fn record_similarity(spec: &[FieldSpec], a: &Tuple, b: &Tuple) -> Result<f64> {
    let mut total_weight = 0.0;
    let mut acc = 0.0;
    for f in spec {
        let (va, vb) = (&a[f.col], &b[f.col]);
        if let Some(sim) = field_similarity(f.kind, va, vb) {
            acc += f.weight * sim;
            total_weight += f.weight;
        }
    }
    Ok(if total_weight == 0.0 { 0.0 } else { acc / total_weight })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::tuple;

    fn spec() -> Vec<FieldSpec> {
        vec![
            FieldSpec { col: 0, weight: 2.0, kind: FieldKind::Text },
            FieldSpec { col: 1, weight: 1.0, kind: FieldKind::Numeric },
            FieldSpec { col: 2, weight: 1.0, kind: FieldKind::Exact },
        ]
    }

    #[test]
    fn identical_records_score_one() {
        let t = tuple!["12 high st", "250000", "M1 1AA"];
        assert!((record_similarity(&spec(), &t, &t).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn near_duplicates_score_high() {
        let a = tuple!["12 high st", "250000", "M1 1AA"];
        let b = tuple!["12 High St.", "251000", "M1 1AA"];
        let s = record_similarity(&spec(), &a, &b).unwrap();
        assert!(s > 0.95, "{s}");
    }

    #[test]
    fn different_records_score_low() {
        let a = tuple!["12 high st", "250000", "M1 1AA"];
        let b = tuple!["99 park rd", "780000", "EH1 1AA"];
        let s = record_similarity(&spec(), &a, &b).unwrap();
        assert!(s < 0.6, "{s}");
    }

    #[test]
    fn nulls_skip_fields_and_renormalise() {
        let a = tuple!["12 high st", "250000", "M1 1AA"];
        let b = vada_common::Tuple::new(vec![
            Value::str("12 high st"),
            Value::Null,
            Value::str("M1 1AA"),
        ]);
        let s = record_similarity(&spec(), &a, &b).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_null_pairs_score_zero() {
        let a = vada_common::Tuple::new(vec![Value::Null, Value::Null, Value::Null]);
        assert_eq!(record_similarity(&spec(), &a, &a).unwrap(), 0.0);
    }

    #[test]
    fn numeric_similarity_is_relative() {
        let spec = vec![FieldSpec { col: 0, weight: 1.0, kind: FieldKind::Numeric }];
        let s_close = record_similarity(&spec, &tuple![100], &tuple![110]).unwrap();
        let s_far = record_similarity(&spec, &tuple![100], &tuple![200]).unwrap();
        assert!(s_close > s_far);
        assert_eq!(record_similarity(&spec, &tuple![0], &tuple![0]).unwrap(), 1.0);
    }
}
