//! Union-find clustering of above-threshold record pairs within blocks.

use vada_common::par::{self, Parallelism};
use vada_common::sharding::Sharding;
use vada_common::{Relation, Result, Tuple};

use crate::blocking::{block_by_keys_sharded, block_by_keys_with};
use crate::similarity::{record_similarity, FieldSpec};

/// Disjoint-set forest with path compression and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        UnionFind { parent: (0..n).collect(), size: vec![1; n] }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Extract clusters (each sorted, clusters ordered by smallest member).
    pub fn clusters(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        let mut out: Vec<Vec<usize>> = by_root.into_values().collect();
        out.sort_by_key(|c| c[0]);
        out
    }
}

/// Clustering configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Blocking key attributes.
    pub block_keys: Vec<String>,
    /// Field comparison spec.
    pub fields: Vec<FieldSpec>,
    /// Pair-similarity threshold for a duplicate edge.
    pub threshold: f64,
}

/// Detect duplicate clusters in a relation: blocking, pairwise similarity
/// within blocks, union of above-threshold pairs. Returns clusters of row
/// indices (singletons included). Parallelism follows the `VADA_THREADS`
/// override; see [`cluster_relation_with`].
pub fn cluster_relation(cfg: &ClusterConfig, rel: &Relation) -> Result<Vec<Vec<usize>>> {
    cluster_relation_with(cfg, rel, Parallelism::from_env())
}

/// [`cluster_relation`] with explicit parallelism: candidate pairs are
/// enumerated in block order, scored across workers, and unioned in the
/// same pair order — so the union-find evolves exactly as in the
/// sequential loop and the clusters are identical at any worker count.
pub fn cluster_relation_with(
    cfg: &ClusterConfig,
    rel: &Relation,
    par: Parallelism,
) -> Result<Vec<Vec<usize>>> {
    cluster_relation_scored(cfg, rel, par, &|a, b| record_similarity(&cfg.fields, a, b))
}

/// [`cluster_relation_with`] with an injected pair scorer, the seam used by
/// failure-injection tests and custom similarity metrics. A scorer that
/// errors (or panics — captured, never a hang) surfaces the failure for the
/// lowest-indexed candidate pair, naming the `fusion/pairwise` stage.
pub fn cluster_relation_scored(
    cfg: &ClusterConfig,
    rel: &Relation,
    par: Parallelism,
    scorer: &(dyn Fn(&Tuple, &Tuple) -> Result<f64> + Sync),
) -> Result<Vec<Vec<usize>>> {
    let keys: Vec<&str> = cfg.block_keys.iter().map(|s| s.as_str()).collect();
    let blocks = block_by_keys_with(rel, &keys, par)?;
    cluster_blocks_scored(cfg, rel, &blocks, par, scorer)
}

/// [`cluster_relation_with`] over a sharded blocking scan (see
/// [`block_by_keys_sharded`]): blocking runs per shard, and since the
/// sharded blocks are byte-identical to the monolithic ones, the pairwise
/// stage — and therefore the clusters — are unchanged at any shard count.
pub fn cluster_relation_sharded(
    cfg: &ClusterConfig,
    rel: &Relation,
    sharding: Sharding,
    par: Parallelism,
) -> Result<Vec<Vec<usize>>> {
    let keys: Vec<&str> = cfg.block_keys.iter().map(|s| s.as_str()).collect();
    let blocks = block_by_keys_sharded(rel, &keys, sharding, par)?;
    cluster_blocks_scored(cfg, rel, &blocks, par, &|a, b| record_similarity(&cfg.fields, a, b))
}

/// Score and union candidate pairs over precomputed blocks — the shared
/// tail of the monolithic and sharded clustering paths.
fn cluster_blocks_scored(
    cfg: &ClusterConfig,
    rel: &Relation,
    blocks: &[Vec<usize>],
    par: Parallelism,
    scorer: &(dyn Fn(&Tuple, &Tuple) -> Result<f64> + Sync),
) -> Result<Vec<Vec<usize>>> {
    // Candidate pairs are quadratic in block size, so they are streamed in
    // bounded rounds rather than materialised: extra memory stays O(round)
    // even for a degenerate single-block key. Rounds cover the pair
    // sequence in block order, scores apply in that same order, and a
    // failing round returns before any later round starts — so clusters
    // and the first error are unchanged by the round boundaries.
    const PAIRS_PER_ROUND: usize = 1 << 16;
    let tuples = rel.tuples();
    let mut uf = UnionFind::new(rel.len());
    let mut round: Vec<(usize, usize)> = Vec::new();
    let score_round = |round: &[(usize, usize)], uf: &mut UnionFind| -> Result<()> {
        let sims = par::par_try_map(par, "fusion/pairwise", round, |_, &(a, b)| {
            scorer(&tuples[a], &tuples[b])
        })?;
        for (&(a, b), sim) in round.iter().zip(&sims) {
            if *sim >= cfg.threshold {
                uf.union(a, b);
            }
        }
        Ok(())
    };
    for block in blocks {
        for (i, &a) in block.iter().enumerate() {
            for &b in &block[i + 1..] {
                round.push((a, b));
                if round.len() == PAIRS_PER_ROUND {
                    score_round(&round, &mut uf)?;
                    round.clear();
                }
            }
        }
    }
    score_round(&round, &mut uf)?;
    Ok(uf.clusters())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::FieldKind;
    use vada_common::{tuple, Schema};

    #[test]
    fn union_find_invariants() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already connected");
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        let clusters = uf.clusters();
        assert_eq!(clusters[0], vec![0, 1, 2]);
        assert_eq!(clusters.len(), 4);
    }

    #[test]
    fn clustering_finds_near_duplicates_in_blocks() {
        let rel = Relation::from_tuples(
            Schema::all_str("r", &["street", "price", "postcode"]),
            vec![
                tuple!["12 high st", "250000", "M1 1AA"],
                tuple!["12 High St.", "250500", "M1 1AA"],
                tuple!["99 park rd", "400000", "M1 1AA"],
                tuple!["12 high st", "250000", "EH1 1AA"], // other block
            ],
        )
        .unwrap();
        let cfg = ClusterConfig {
            block_keys: vec!["postcode".into()],
            fields: vec![
                FieldSpec { col: 0, weight: 2.0, kind: FieldKind::Text },
                FieldSpec { col: 1, weight: 1.0, kind: FieldKind::Numeric },
            ],
            threshold: 0.9,
        };
        let clusters = cluster_relation(&cfg, &rel).unwrap();
        // {0,1}, {2}, {3}
        assert_eq!(clusters.len(), 3);
        assert!(clusters.iter().any(|c| c == &vec![0, 1]));
    }

    #[test]
    fn no_duplicates_yields_singletons() {
        let rel = Relation::from_tuples(
            Schema::all_str("r", &["street", "postcode"]),
            vec![tuple!["a st", "M1 1AA"], tuple!["b rd", "EH1 1AA"]],
        )
        .unwrap();
        let cfg = ClusterConfig {
            block_keys: vec!["postcode".into()],
            fields: vec![FieldSpec { col: 0, weight: 1.0, kind: FieldKind::Text }],
            threshold: 0.9,
        };
        let clusters = cluster_relation(&cfg, &rel).unwrap();
        assert_eq!(clusters.len(), 2);
    }
}
