//! Survivorship: collapsing duplicate clusters into single tuples.

use std::collections::HashMap;

use vada_common::{Relation, Result, Tuple, Value};

/// Survivorship rule applied per cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Survivorship {
    /// Keep the single most complete row (fewest nulls; ties: first row).
    MostComplete,
    /// Per attribute: the most frequent non-null value (ties: value of the
    /// earliest contributing row).
    Majority,
    /// Per attribute: the non-null value from the most trusted row
    /// (`trust[row]`, higher wins; ties: earliest row).
    TrustWeighted,
}

/// What fusion did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FusionReport {
    /// Input rows.
    pub input_rows: usize,
    /// Output rows (clusters).
    pub output_rows: usize,
    /// Clusters with more than one member.
    pub merged_clusters: usize,
}

impl FusionReport {
    /// Rows removed by fusion.
    pub fn duplicates_removed(&self) -> usize {
        self.input_rows - self.output_rows
    }
}

/// Fuse `rel`'s duplicate `clusters` into one tuple each.
///
/// `trust` supplies per-row trust scores for
/// [`Survivorship::TrustWeighted`] (defaults to uniform when `None`).
pub fn fuse_clusters(
    rel: &Relation,
    clusters: &[Vec<usize>],
    rule: Survivorship,
    trust: Option<&[f64]>,
) -> Result<(Relation, FusionReport)> {
    let arity = rel.schema().arity();
    let mut out = Relation::empty(rel.schema().clone());
    let mut merged = 0usize;
    for cluster in clusters {
        if cluster.len() > 1 {
            merged += 1;
        }
        let tuple = match rule {
            Survivorship::MostComplete => {
                let &best = cluster
                    .iter()
                    .min_by_key(|&&r| (rel.tuples()[r].null_count(), r))
                    .expect("clusters are non-empty");
                rel.tuples()[best].clone()
            }
            Survivorship::Majority => {
                let mut values = Vec::with_capacity(arity);
                for col in 0..arity {
                    let mut counts: HashMap<&Value, (usize, usize)> = HashMap::new();
                    for &r in cluster {
                        let v = &rel.tuples()[r][col];
                        if v.is_null() {
                            continue;
                        }
                        let e = counts.entry(v).or_insert((0, r));
                        e.0 += 1;
                        e.1 = e.1.min(r);
                    }
                    let winner = counts
                        .iter()
                        .max_by(|a, b| a.1 .0.cmp(&b.1 .0).then(b.1 .1.cmp(&a.1 .1)))
                        .map(|(v, _)| (*v).clone())
                        .unwrap_or(Value::Null);
                    values.push(winner);
                }
                Tuple::new(values)
            }
            Survivorship::TrustWeighted => {
                let uniform = vec![1.0; rel.len()];
                let trust = trust.unwrap_or(&uniform);
                let mut values = Vec::with_capacity(arity);
                for col in 0..arity {
                    let winner = cluster
                        .iter()
                        .filter(|&&r| !rel.tuples()[r][col].is_null())
                        .max_by(|&&a, &&b| {
                            trust[a].total_cmp(&trust[b]).then(b.cmp(&a))
                        })
                        .map(|&r| rel.tuples()[r][col].clone())
                        .unwrap_or(Value::Null);
                    values.push(winner);
                }
                Tuple::new(values)
            }
        };
        out.push(tuple)?;
    }
    let report = FusionReport {
        input_rows: rel.len(),
        output_rows: out.len(),
        merged_clusters: merged,
    };
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::{tuple, Schema};

    fn rel() -> Relation {
        Relation::from_tuples(
            Schema::all_str("r", &["street", "price", "beds"]),
            vec![
                // cluster {0,1,2}: same property three ways
                Tuple::new(vec![Value::str("12 high st"), Value::str("250000"), Value::Null]),
                tuple!["12 high st", "250000", "3"],
                tuple!["12 hgih st", "250000", "3"],
                // cluster {3}
                tuple!["9 park rd", "400000", "2"],
            ],
        )
        .unwrap()
    }

    fn clusters() -> Vec<Vec<usize>> {
        vec![vec![0, 1, 2], vec![3]]
    }

    #[test]
    fn most_complete_picks_fullest_row() {
        let (fused, report) =
            fuse_clusters(&rel(), &clusters(), Survivorship::MostComplete, None).unwrap();
        assert_eq!(fused.len(), 2);
        assert_eq!(report.duplicates_removed(), 2);
        assert_eq!(report.merged_clusters, 1);
        // row 1 is complete and earliest among complete rows
        assert_eq!(fused.tuples()[0], rel().tuples()[1]);
    }

    #[test]
    fn majority_votes_per_attribute() {
        let (fused, _) = fuse_clusters(&rel(), &clusters(), Survivorship::Majority, None).unwrap();
        let t = &fused.tuples()[0];
        assert_eq!(t[0], Value::str("12 high st")); // 2-vs-1 over the typo
        assert_eq!(t[2], Value::str("3")); // nulls don't vote
    }

    #[test]
    fn trust_weighted_prefers_trusted_source() {
        let trust = vec![0.1, 0.2, 0.9, 0.5];
        let (fused, _) =
            fuse_clusters(&rel(), &clusters(), Survivorship::TrustWeighted, Some(&trust)).unwrap();
        // the typo'd row is most trusted: its street wins
        assert_eq!(fused.tuples()[0][0], Value::str("12 hgih st"));
    }

    #[test]
    fn singleton_clusters_pass_through() {
        let (fused, _) = fuse_clusters(&rel(), &clusters(), Survivorship::Majority, None).unwrap();
        assert_eq!(fused.tuples()[1], rel().tuples()[3]);
    }

    #[test]
    fn all_null_column_stays_null() {
        let rel = Relation::from_tuples(
            Schema::all_str("r", &["a"]),
            vec![
                Tuple::new(vec![Value::Null]),
                Tuple::new(vec![Value::Null]),
            ],
        )
        .unwrap();
        let (fused, _) =
            fuse_clusters(&rel, &[vec![0, 1]], Survivorship::Majority, None).unwrap();
        assert!(fused.tuples()[0][0].is_null());
    }
}
