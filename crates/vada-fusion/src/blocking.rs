//! Key-based blocking: restrict pairwise comparison to rows sharing a
//! blocking key.

use std::collections::BTreeMap;

use vada_common::par::{self, Parallelism};
use vada_common::sharding::{blocking_key, rows_by_shard, shard_of_key, Sharding};
use vada_common::{HashPartitioner, Partitioner, Relation, Result, Tuple};

/// Group row indices by the normalised concatenation of the given key
/// attributes. Rows whose key attributes are all null go into singleton
/// blocks (they cannot be safely compared with anything). Parallelism
/// follows the `VADA_THREADS` override; see [`block_by_keys_with`].
pub fn block_by_keys(rel: &Relation, key_attrs: &[&str]) -> Result<Vec<Vec<usize>>> {
    block_by_keys_with(rel, key_attrs, Parallelism::from_env())
}

/// [`block_by_keys`] with explicit parallelism: each worker extracts keys
/// for one contiguous row chunk into its own map (reusing a scratch buffer
/// for the normal form instead of allocating per cell), and the per-worker
/// maps merge in chunk order. Row chunks ascend, so every block's row list
/// comes out in ascending row order — identical to the sequential scan at
/// any worker count.
pub fn block_by_keys_with(
    rel: &Relation,
    key_attrs: &[&str],
    par: Parallelism,
) -> Result<Vec<Vec<usize>>> {
    let cols: Vec<usize> = key_attrs
        .iter()
        .map(|a| rel.schema().require(a))
        .collect::<Result<_>>()?;
    let chunks = par::par_chunks(par, "fusion/block_keys", rel.tuples(), |base, slice| {
        let mut blocks: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut singletons: Vec<usize> = Vec::new();
        let mut key = String::new();
        for (off, t) in slice.iter().enumerate() {
            if extract_key(t, &cols, &mut key) {
                if let Some(rows) = blocks.get_mut(key.as_str()) {
                    rows.push(base + off);
                } else {
                    blocks.insert(key.clone(), vec![base + off]);
                }
            } else {
                singletons.push(base + off);
            }
        }
        Ok((blocks, singletons))
    })?;
    let mut blocks: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut singletons: Vec<Vec<usize>> = Vec::new();
    for (chunk_blocks, chunk_singletons) in chunks {
        for (k, rows) in chunk_blocks {
            blocks.entry(k).or_default().extend(rows);
        }
        singletons.extend(chunk_singletons.into_iter().map(|r| vec![r]));
    }
    let mut out: Vec<Vec<usize>> = blocks.into_values().collect();
    out.extend(singletons);
    Ok(out)
}

/// Build the blocking key of `t` over `cols` into `key` (cleared first):
/// the normal forms of the non-null key cells joined by `|`. Returns
/// `false` when every key cell is null (singleton row). Delegates to
/// [`vada_common::sharding::blocking_key`] — the same definition the
/// blocking-key partitioner hashes, which is what guarantees a sharded
/// blocking scan sees every member of every block it owns.
fn extract_key(t: &Tuple, cols: &[usize], key: &mut String) -> bool {
    blocking_key(t, cols, key)
}

/// [`block_by_keys_with`] over a sharded scan: rows are partitioned by the
/// blocking-key-aware [`KeyPartitioner`] (co-blocked rows land in the same
/// shard, all-null-key singletons spread by whole-tuple hash), each shard
/// blocks its own rows as one scheduling unit, and the per-shard block
/// maps merge back. Because a key's rows never straddle shards, the shard
/// maps have disjoint key spaces and their sorted union — plus the
/// singleton lists merged in ascending row order — is byte-identical to
/// the monolithic blocking at any shard count and parallelism level.
/// [`Sharding::Off`] delegates to the unsharded path outright.
pub fn block_by_keys_sharded(
    rel: &Relation,
    key_attrs: &[&str],
    sharding: Sharding,
    par: Parallelism,
) -> Result<Vec<Vec<usize>>> {
    if !sharding.is_sharded() {
        return block_by_keys_with(rel, key_attrs, par);
    }
    let cols: Vec<usize> = key_attrs
        .iter()
        .map(|a| rel.schema().require(a))
        .collect::<Result<_>>()?;
    let shards = sharding.shard_count();
    // one normalisation pass computes each row's key (None = all-null
    // singleton); the shard assignment hashes the precomputed key with the
    // same formula KeyPartitioner uses, and the per-shard scans below group
    // by the precomputed keys instead of re-normalising
    let keys: Vec<Option<String>> =
        par::par_map(par, "fusion/shard_block_assign", rel.tuples(), |_, t| {
            let mut key = String::new();
            extract_key(t, &cols, &mut key).then_some(key)
        })?;
    let assignment: Vec<usize> = keys
        .iter()
        .zip(rel.tuples())
        .map(|(key, t)| match key {
            Some(k) => shard_of_key(k, shards),
            None => HashPartitioner.shard_of(t, shards),
        })
        .collect();
    let by_shard = rows_by_shard(&assignment, shards);
    let scans = par::par_shards(par, "fusion/shard_block_scan", shards, |s| {
        let mut blocks: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut singletons: Vec<usize> = Vec::new();
        for &row in &by_shard[s] {
            match &keys[row] {
                Some(key) => blocks.entry(key.as_str()).or_default().push(row),
                None => singletons.push(row),
            }
        }
        Ok((blocks, singletons))
    })?;
    let mut blocks: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut singletons: Vec<usize> = Vec::new();
    for (shard_blocks, shard_singletons) in scans {
        for (k, rows) in shard_blocks {
            debug_assert!(!blocks.contains_key(k), "key `{k}` straddled shards");
            blocks.insert(k, rows);
        }
        singletons.extend(shard_singletons);
    }
    singletons.sort_unstable();
    let mut out: Vec<Vec<usize>> = blocks.into_values().collect();
    out.extend(singletons.into_iter().map(|r| vec![r]));
    Ok(out)
}

/// Statistics about a blocking: how much pairwise work it saves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockingStats {
    /// Number of blocks.
    pub blocks: usize,
    /// Size of the largest block.
    pub max_block: usize,
    /// Candidate pairs after blocking.
    pub candidate_pairs: usize,
    /// Pairs a full cross product would compare.
    pub total_pairs: usize,
}

/// Compute statistics for a blocking over `n` rows.
pub fn blocking_stats(blocks: &[Vec<usize>], n: usize) -> BlockingStats {
    let candidate_pairs = blocks.iter().map(|b| b.len() * (b.len() - 1) / 2).sum();
    BlockingStats {
        blocks: blocks.len(),
        max_block: blocks.iter().map(|b| b.len()).max().unwrap_or(0),
        candidate_pairs,
        total_pairs: n * n.saturating_sub(1) / 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::{tuple, Schema, Tuple, Value};

    fn rel() -> Relation {
        Relation::from_tuples(
            Schema::all_str("r", &["street", "postcode"]),
            vec![
                tuple!["1 high st", "M1 1AA"],
                tuple!["1 High St.", "M1 1AA"],
                tuple!["9 park rd", "EH1 1AA"],
                Tuple::new(vec![Value::str("x"), Value::Null]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn blocks_group_equal_keys() {
        let blocks = block_by_keys(&rel(), &["postcode"]).unwrap();
        assert_eq!(blocks.len(), 3);
        let sizes: Vec<usize> = blocks.iter().map(|b| b.len()).collect();
        assert!(sizes.contains(&2));
    }

    #[test]
    fn all_null_keys_become_singletons() {
        let blocks = block_by_keys(&rel(), &["postcode"]).unwrap();
        let singleton = blocks.iter().find(|b| b == &&vec![3usize]);
        assert!(singleton.is_some());
    }

    #[test]
    fn stats_measure_savings() {
        let blocks = block_by_keys(&rel(), &["postcode"]).unwrap();
        let stats = blocking_stats(&blocks, 4);
        assert_eq!(stats.total_pairs, 6);
        assert_eq!(stats.candidate_pairs, 1);
        assert_eq!(stats.max_block, 2);
    }

    #[test]
    fn unknown_key_errors() {
        assert!(block_by_keys(&rel(), &["nope"]).is_err());
    }

    #[test]
    fn sharded_blocking_is_identical_to_monolithic() {
        // a bigger fixture with shared keys, nulls, and near-duplicates
        let mut big = Relation::empty(Schema::all_str("r", &["street", "postcode"]));
        for i in 0..200 {
            let postcode = if i % 13 == 0 {
                Value::Null
            } else {
                Value::str(format!("M{} {}AA", i % 11, i % 3))
            };
            big.push(Tuple::new(vec![Value::str(format!("{} high st", i / 2)), postcode]))
                .unwrap();
        }
        let mono = block_by_keys_with(&big, &["postcode"], Parallelism::Sequential).unwrap();
        for shards in [2usize, 4, 9] {
            for par in [Parallelism::Sequential, Parallelism::Threads(4)] {
                let got =
                    block_by_keys_sharded(&big, &["postcode"], Sharding::Shards(shards), par)
                        .unwrap();
                assert_eq!(got, mono, "shards={shards} {par:?}");
            }
        }
        let off =
            block_by_keys_sharded(&big, &["postcode"], Sharding::Off, Parallelism::Sequential)
                .unwrap();
        assert_eq!(off, mono);
    }

    #[test]
    fn every_row_in_exactly_one_block() {
        let blocks = block_by_keys(&rel(), &["postcode"]).unwrap();
        let mut seen: Vec<usize> = blocks.concat();
        seen.sort();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }
}
