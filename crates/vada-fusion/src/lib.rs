//! # vada-fusion
//!
//! Duplicate detection and data fusion (paper §2: "a data fusion
//! transducer may start to evaluate when duplicates have been detected").
//!
//! The result of executing a mapping is a union over overlapping sources,
//! so the same real-world property typically appears several times with
//! slightly different values. The pipeline here is the classic one:
//!
//! 1. [`blocking`] — group rows by a cheap key (the scenario blocks on
//!    `postcode`) so similarity is only computed within blocks;
//! 2. [`similarity`] — weighted record similarity over typed fields;
//! 3. [`cluster`] — union-find clustering of above-threshold pairs;
//! 4. [`fuse`] — survivorship: collapse each cluster to one tuple
//!    (most-complete / majority / trust-weighted).

pub mod blocking;
pub mod cluster;
pub mod fuse;
pub mod similarity;

pub use blocking::{
    block_by_keys, block_by_keys_sharded, block_by_keys_with, blocking_stats, BlockingStats,
};
pub use cluster::{
    cluster_relation, cluster_relation_scored, cluster_relation_sharded, cluster_relation_with,
    ClusterConfig, UnionFind,
};
pub use fuse::{fuse_clusters, FusionReport, Survivorship};
pub use similarity::{record_similarity, FieldKind, FieldSpec};
