//! Defect models for the extraction simulator.
//!
//! Web-extraction output is dirty in characteristic ways; each knob below
//! injects one defect class the VADA components must cope with:
//!
//! * `missing_rate` — extraction simply failed for a field (completeness).
//! * `typo_rate` — character-level noise in strings (matching, repair).
//! * `bedroom_area_rate` — the paper's §2.3 example: "automatic web data
//!   extraction may be using the area of the master bedroom as the number
//!   of bedrooms" (feedback).
//! * `price_format_rate` — `£250,000` instead of `250000` (type coercion).
//! * `wrong_type_rate` — property type mislabelled (accuracy).

use rand::Rng;

/// Per-source defect probabilities. All in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorModel {
    /// Probability a field is extracted as empty.
    pub missing_rate: f64,
    /// Probability a string field gets a typo.
    pub typo_rate: f64,
    /// Probability the bedroom count is replaced by a room area in m².
    pub bedroom_area_rate: f64,
    /// Probability the price is rendered as `£1,234,567`.
    pub price_format_rate: f64,
    /// Probability the property type is mislabelled.
    pub wrong_type_rate: f64,
}

impl ErrorModel {
    /// A clean source (no defects) — useful as a baseline.
    pub const CLEAN: ErrorModel = ErrorModel {
        missing_rate: 0.0,
        typo_rate: 0.0,
        bedroom_area_rate: 0.0,
        price_format_rate: 0.0,
        wrong_type_rate: 0.0,
    };

    /// Defaults roughly matching messy real-world extraction.
    pub fn realistic() -> ErrorModel {
        ErrorModel {
            missing_rate: 0.08,
            typo_rate: 0.05,
            bedroom_area_rate: 0.10,
            price_format_rate: 0.15,
            wrong_type_rate: 0.05,
        }
    }

    /// Scale every rate by `factor` (clamped to `[0, 1]`).
    pub fn scaled(&self, factor: f64) -> ErrorModel {
        let c = |r: f64| (r * factor).clamp(0.0, 1.0);
        ErrorModel {
            missing_rate: c(self.missing_rate),
            typo_rate: c(self.typo_rate),
            bedroom_area_rate: c(self.bedroom_area_rate),
            price_format_rate: c(self.price_format_rate),
            wrong_type_rate: c(self.wrong_type_rate),
        }
    }
}

/// Inject a single random typo (substitution, deletion or transposition).
pub fn typo(rng: &mut impl Rng, s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return s.to_string();
    }
    let pos = rng.gen_range(0..chars.len());
    let mut out = chars.clone();
    match rng.gen_range(0..3) {
        0 => {
            // substitution with a nearby letter
            out[pos] = (b'a' + rng.gen_range(0..26u8)) as char;
        }
        1 => {
            out.remove(pos);
        }
        _ => {
            if pos + 1 < out.len() {
                out.swap(pos, pos + 1);
            } else {
                out[pos] = (b'a' + rng.gen_range(0..26u8)) as char;
            }
        }
    }
    out.into_iter().collect()
}

/// Render a price with currency symbol and thousands separators.
pub fn format_price_pretty(price: i64) -> String {
    let digits = price.abs().to_string();
    let mut grouped = String::new();
    for (i, c) in digits.chars().enumerate() {
        let rem = digits.len() - i;
        grouped.push(c);
        if rem > 1 && (rem - 1).is_multiple_of(3) {
            grouped.push(',');
        }
    }
    format!("£{grouped}")
}

/// Parse a price that may carry currency formatting back to an integer.
/// (The wrangling pipeline's format-transformation step uses this.)
pub fn parse_price(raw: &str) -> Option<i64> {
    let cleaned: String = raw
        .trim()
        .chars()
        .filter(|c| c.is_ascii_digit() || *c == '-')
        .collect();
    if cleaned.is_empty() {
        return None;
    }
    cleaned.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn typo_changes_string() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut changed = 0;
        for _ in 0..50 {
            if typo(&mut rng, "high street") != "high street" {
                changed += 1;
            }
        }
        assert!(changed > 40); // transpositions of equal chars may no-op
        assert_eq!(typo(&mut rng, ""), "");
    }

    #[test]
    fn price_formatting_round_trip() {
        assert_eq!(format_price_pretty(250_000), "£250,000");
        assert_eq!(format_price_pretty(1_234_567), "£1,234,567");
        assert_eq!(format_price_pretty(999), "£999");
        assert_eq!(parse_price("£250,000"), Some(250_000));
        assert_eq!(parse_price(" 42 "), Some(42));
        assert_eq!(parse_price("n/a"), None);
    }

    #[test]
    fn scaling_clamps() {
        let m = ErrorModel::realistic().scaled(100.0);
        assert!(m.missing_rate <= 1.0);
        let z = ErrorModel::realistic().scaled(0.0);
        assert_eq!(z, ErrorModel::CLEAN);
    }
}
