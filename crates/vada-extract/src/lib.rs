//! # vada-extract
//!
//! The extraction substrate of the reproduction. The paper's demonstration
//! consumes (i) property listings extracted from deep-web estate-agent
//! sites by DIADEM and (ii) UK open-government data. Neither is available
//! offline, so this crate builds the closest synthetic equivalent
//! (DESIGN.md §2):
//!
//! * a **ground-truth universe** of properties with UK-shaped addresses and
//!   postcodes ([`universe`], [`postcodes`]);
//! * an **extraction simulator** that derives source relations
//!   (`rightmove`, `onthemarket`) from the universe through configurable
//!   defect models — missing values, typos, the paper's "area of the master
//!   bedroom reported as the number of bedrooms" error, price format drift,
//!   and per-source attribute naming ([`sources`], [`errors`]);
//! * **open-government data**: a deprivation table (postcode → crime rank)
//!   with configurable coverage, and a complete address list usable as
//!   reference data ([`sources`]);
//! * a **feedback oracle** that plays the data scientist: it aligns result
//!   tuples back to the ground truth and produces correct/incorrect
//!   annotations under a budget, which lets the experiments sweep feedback
//!   volume ([`oracle`]).
//!
//! All generation is deterministic in the seed.

pub mod errors;
pub mod oracle;
pub mod postcodes;
pub mod sources;
pub mod universe;

pub use errors::ErrorModel;
pub use oracle::{score_result, Oracle, ResultQuality};
pub use sources::{Scenario, ScenarioConfig};
pub use universe::{GroundProperty, Universe, UniverseConfig};
