//! Ground-truth alignment, result scoring, and the feedback oracle that
//! simulates the data scientist of the demonstration (paper §3 step 3).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use vada_common::text::normalize;
use vada_common::{Relation, Value};
use vada_kb::{FeedbackRecord, FeedbackTarget, Verdict};

use crate::universe::{GroundProperty, Universe};

/// Cell-level quality of a result relation against the ground truth.
#[derive(Debug, Clone)]
pub struct ResultQuality {
    /// Result rows.
    pub rows: usize,
    /// Rows that could be aligned to a ground-truth property.
    pub aligned: usize,
    /// Distinct ground-truth properties covered.
    pub properties_covered: usize,
    /// Per-attribute accuracy over aligned rows (correct / non-null).
    pub attr_accuracy: BTreeMap<String, f64>,
    /// Per-attribute completeness (non-null / rows).
    pub attr_completeness: BTreeMap<String, f64>,
    /// Cell precision: correct cells / non-null cells, over all rows.
    pub precision: f64,
    /// Cell recall: correct cells of the best row per property /
    /// (universe size × attribute count).
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// The expected value of a target attribute for a ground-truth property
/// (`None` when the ground truth itself has no value — never the case in
/// our universe).
fn expected(u: &Universe, p: &GroundProperty, attr: &str) -> Option<Value> {
    match attr {
        "type" => Some(Value::str(&p.ptype)),
        "description" => Some(Value::str(&p.description)),
        "street" => Some(Value::str(&p.street)),
        "postcode" => Some(Value::str(&p.postcode)),
        "bedrooms" => Some(Value::Int(p.bedrooms)),
        "price" => Some(Value::Int(p.price)),
        "crimerank" => u.crime_rank(&p.postcode).map(Value::Int),
        _ => None,
    }
}

/// Whether a result cell matches the expected value (strings compare on
/// their normal form; numbers numerically, including numeric strings).
fn cell_correct(got: &Value, want: &Value) -> bool {
    if got == want {
        return true;
    }
    match (got, want) {
        (Value::Str(a), Value::Str(b)) => normalize(a) == normalize(b),
        (Value::Str(a), Value::Int(b)) => a.trim().parse::<i64>() == Ok(*b),
        (Value::Int(a), Value::Str(b)) => b.trim().parse::<i64>() == Ok(*a),
        _ => false,
    }
}

/// Align one result row to the universe via its street/postcode cells.
fn align_row<'u>(u: &'u Universe, rel: &Relation, row: usize) -> Option<&'u GroundProperty> {
    let schema = rel.schema();
    let street = schema
        .index_of("street")
        .and_then(|i| rel.tuples()[row][i].as_str().map(|s| s.to_string()))
        .unwrap_or_default();
    let postcode = schema
        .index_of("postcode")
        .and_then(|i| rel.tuples()[row][i].as_str().map(|s| s.to_string()))?;
    u.align(&street, &postcode)
}

/// Score a result relation cell-by-cell against the ground truth.
pub fn score_result(u: &Universe, result: &Relation) -> ResultQuality {
    let attrs: Vec<String> = result
        .schema()
        .attr_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut correct_cells = 0usize;
    let mut non_null_cells = 0usize;
    let mut attr_correct: BTreeMap<String, usize> = BTreeMap::new();
    let mut attr_non_null: BTreeMap<String, usize> = BTreeMap::new();
    let mut aligned_rows = 0usize;
    // best (max correct cells) row per property
    let mut best_per_property: BTreeMap<usize, usize> = BTreeMap::new();

    for (row, t) in result.iter().enumerate() {
        let ground = align_row(u, result, row);
        if let Some(p) = ground {
            aligned_rows += 1;
            let mut row_correct = 0usize;
            for (i, attr) in attrs.iter().enumerate() {
                let got = &t[i];
                if !got.is_null() {
                    non_null_cells += 1;
                    *attr_non_null.entry(attr.clone()).or_default() += 1;
                    if let Some(want) = expected(u, p, attr) {
                        if cell_correct(got, &want) {
                            correct_cells += 1;
                            row_correct += 1;
                            *attr_correct.entry(attr.clone()).or_default() += 1;
                        }
                    }
                }
            }
            let entry = best_per_property.entry(p.id).or_insert(0);
            *entry = (*entry).max(row_correct);
        } else {
            // unalignable rows: their non-null cells count against precision
            for (i, _) in attrs.iter().enumerate() {
                if !t[i].is_null() {
                    non_null_cells += 1;
                }
            }
        }
    }

    let precision = if non_null_cells == 0 {
        0.0
    } else {
        correct_cells as f64 / non_null_cells as f64
    };
    let ideal_cells = u.properties.len() * attrs.len();
    let recall_cells: usize = best_per_property.values().sum();
    let recall = if ideal_cells == 0 {
        0.0
    } else {
        recall_cells as f64 / ideal_cells as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };

    let mut attr_accuracy = BTreeMap::new();
    let mut attr_completeness = BTreeMap::new();
    for attr in &attrs {
        let nn = attr_non_null.get(attr).copied().unwrap_or(0);
        let c = attr_correct.get(attr).copied().unwrap_or(0);
        attr_accuracy.insert(
            attr.clone(),
            if nn == 0 { 0.0 } else { c as f64 / nn as f64 },
        );
        attr_completeness.insert(
            attr.clone(),
            if result.is_empty() { 0.0 } else { nn as f64 / result.len() as f64 },
        );
    }

    ResultQuality {
        rows: result.len(),
        aligned: aligned_rows,
        properties_covered: best_per_property.len(),
        attr_accuracy,
        attr_completeness,
        precision,
        recall,
        f1,
    }
}

/// The feedback oracle: annotates result cells under a budget, playing the
/// data scientist who flags values as correct or incorrect through the UI.
#[derive(Debug)]
pub struct Oracle<'u> {
    universe: &'u Universe,
    next_id: usize,
}

impl<'u> Oracle<'u> {
    /// An oracle over the given universe.
    pub fn new(universe: &'u Universe) -> Oracle<'u> {
        Oracle { universe, next_id: 0 }
    }

    /// Annotate up to `budget` cells of `result`, chosen uniformly at
    /// random (seeded). Aligned rows get attribute-level verdicts; rows
    /// that cannot be aligned to any ground property get one tuple-level
    /// `Incorrect`.
    pub fn annotate(&mut self, result: &Relation, budget: usize, seed: u64) -> Vec<FeedbackRecord> {
        let mut rng = StdRng::seed_from_u64(seed);
        let attrs: Vec<String> = result
            .schema()
            .attr_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        // candidate annotations: (row, Some(attr)) or (row, None) for tuple level
        let mut candidates: Vec<(usize, Option<usize>)> = Vec::new();
        for row in 0..result.len() {
            if align_row(self.universe, result, row).is_some() {
                for (i, _) in attrs.iter().enumerate() {
                    // a user can only judge a *value*; empty cells are a
                    // completeness problem, not annotatable as incorrect
                    if !result.tuples()[row][i].is_null() {
                        candidates.push((row, Some(i)));
                    }
                }
            } else {
                candidates.push((row, None));
            }
        }
        candidates.shuffle(&mut rng);
        candidates.truncate(budget);

        let mut out = Vec::with_capacity(candidates.len());
        for (row, attr_idx) in candidates {
            let id = format!("f{}", self.next_id);
            self.next_id += 1;
            match attr_idx {
                None => out.push(FeedbackRecord {
                    id,
                    target: FeedbackTarget::Tuple {
                        relation: result.name().to_string(),
                        row,
                    },
                    verdict: Verdict::Incorrect,
                }),
                Some(i) => {
                    let p = align_row(self.universe, result, row)
                        .expect("candidate rows are aligned");
                    let got = &result.tuples()[row][i];
                    let want = expected(self.universe, p, &attrs[i]);
                    let verdict = match (&want, got) {
                        (Some(w), g) if !g.is_null() && cell_correct(g, w) => Verdict::Correct,
                        _ => Verdict::Incorrect,
                    };
                    out.push(FeedbackRecord {
                        id,
                        target: FeedbackTarget::Attribute {
                            relation: result.name().to_string(),
                            row,
                            attr: attrs[i].clone(),
                        },
                        verdict,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::{target_schema, Scenario, ScenarioConfig};
    use crate::universe::UniverseConfig;
    use vada_common::Tuple;

    /// Build a perfect result straight from the ground truth.
    fn perfect_result(u: &Universe) -> Relation {
        let mut rel = Relation::empty(target_schema());
        for p in &u.properties {
            rel.push(Tuple::new(vec![
                Value::str(&p.ptype),
                Value::str(&p.description),
                Value::str(&p.street),
                Value::str(&p.postcode),
                Value::Int(p.bedrooms),
                Value::Int(p.price),
                u.crime_rank(&p.postcode).map(Value::Int).unwrap_or(Value::Null),
            ]))
            .unwrap();
        }
        rel
    }

    fn small_universe() -> Universe {
        Universe::generate(UniverseConfig { properties: 60, seed: 5 })
    }

    #[test]
    fn perfect_result_scores_one() {
        let u = small_universe();
        let q = score_result(&u, &perfect_result(&u));
        assert_eq!(q.aligned, q.rows);
        assert!(q.precision > 0.999, "precision {}", q.precision);
        assert!(q.recall > 0.999, "recall {}", q.recall);
        assert!(q.f1 > 0.999);
    }

    #[test]
    fn corrupted_cells_lower_precision() {
        let u = small_universe();
        let mut rel = perfect_result(&u);
        // wreck the bedrooms column of every row
        let idx = rel.schema().index_of("bedrooms").unwrap();
        for row in 0..rel.len() {
            let t = rel.tuples()[row].with_value(idx, Value::Int(99));
            rel.replace(row, t).unwrap();
        }
        let q = score_result(&u, &rel);
        assert!(q.precision < 0.9);
        assert!(q.attr_accuracy["bedrooms"] < 0.01);
        assert!(q.attr_accuracy["price"] > 0.99);
    }

    #[test]
    fn missing_rows_lower_recall() {
        let u = small_universe();
        let mut rel = perfect_result(&u);
        rel.retain({
            let mut i = 0;
            move |_| {
                i += 1;
                i % 2 == 0
            }
        });
        let q = score_result(&u, &rel);
        assert!(q.recall < 0.6);
        assert!(q.precision > 0.99);
    }

    #[test]
    fn oracle_verdicts_match_ground_truth() {
        let u = small_universe();
        let mut rel = perfect_result(&u);
        let idx = rel.schema().index_of("price").unwrap();
        let bad = rel.tuples()[0].with_value(idx, Value::Int(1));
        rel.replace(0, bad).unwrap();
        let mut oracle = Oracle::new(&u);
        let fb = oracle.annotate(&rel, 10_000, 1);
        // every cell annotated; find the bad one
        let bad_price = fb.iter().find(|f| {
            matches!(&f.target, FeedbackTarget::Attribute { row: 0, attr, .. } if attr == "price")
        });
        assert_eq!(bad_price.unwrap().verdict, Verdict::Incorrect);
        let good = fb.iter().find(|f| {
            matches!(&f.target, FeedbackTarget::Attribute { row: 1, attr, .. } if attr == "price")
        });
        assert_eq!(good.unwrap().verdict, Verdict::Correct);
    }

    #[test]
    fn oracle_respects_budget_and_is_seeded() {
        let u = small_universe();
        let rel = perfect_result(&u);
        let a = Oracle::new(&u).annotate(&rel, 5, 3);
        let b = Oracle::new(&u).annotate(&rel, 5, 3);
        assert_eq!(a.len(), 5);
        assert_eq!(a, b);
        let c = Oracle::new(&u).annotate(&rel, 5, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn scenario_sources_score_below_perfect() {
        // sanity: a raw (dirty) source projected into the target shape
        // scores clearly below the clean ground truth
        let s = Scenario::generate(ScenarioConfig::default());
        let mut rel = Relation::empty(target_schema());
        for t in s.rightmove.iter() {
            rel.push(Tuple::new(vec![
                t[4].clone(),
                t[5].clone(),
                t[1].clone(),
                t[2].clone(),
                t[3].clone(),
                t[0].clone(),
                Value::Null,
            ]))
            .unwrap();
        }
        let q = score_result(&s.universe, &rel);
        assert!(q.precision < 0.98);
        assert!(q.recall < 0.8); // crimerank missing + sampling
    }
}
