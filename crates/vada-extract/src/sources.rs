//! The demonstration scenario generator (paper Fig 2): source relations
//! `rightmove` and `onthemarket` derived from the universe through defect
//! models, open-government `deprivation` data, the `address` reference
//! list, and the target schema.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vada_common::{AttrType, Relation, Schema, Tuple, Value};

use crate::errors::{self, ErrorModel};
use crate::universe::{GroundProperty, Universe, UniverseConfig, PROPERTY_TYPES};

/// Scenario generation parameters.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Universe parameters.
    pub universe: UniverseConfig,
    /// Fraction of ground properties each source lists (independently).
    pub source_fraction: f64,
    /// Probability a listed property appears twice in the same source
    /// (with independent defects) — exercises duplicate detection.
    pub duplicate_rate: f64,
    /// Fraction of postcode districts present in the deprivation table.
    pub deprivation_coverage: f64,
    /// Defect model for the `rightmove` source.
    pub rightmove_errors: ErrorModel,
    /// Defect model for the `onthemarket` source.
    pub onthemarket_errors: ErrorModel,
    /// When true, `onthemarket` uses different attribute names
    /// (`asking_price`, `beds`, ...) so schema matching has real work to do
    /// (the paper notes attribute names are only consistent "for ease of
    /// comprehension").
    pub varied_attribute_names: bool,
    /// Seed for sampling and defect injection (separate from the universe
    /// seed so the same world can be extracted in different ways).
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            universe: UniverseConfig::default(),
            source_fraction: 0.7,
            duplicate_rate: 0.05,
            deprivation_coverage: 0.8,
            rightmove_errors: ErrorModel::realistic(),
            onthemarket_errors: ErrorModel::realistic().scaled(1.4),
            varied_attribute_names: true,
            seed: 7,
        }
    }
}

/// The generated demonstration scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The ground-truth world.
    pub universe: Universe,
    /// Source: rightmove listings.
    pub rightmove: Relation,
    /// Source: onthemarket listings.
    pub onthemarket: Relation,
    /// Open-government data: postcode → crime rank (partial coverage).
    pub deprivation: Relation,
    /// Reference data: the complete address list (street, city, postcode).
    pub address: Relation,
    /// Config used.
    pub config: ScenarioConfig,
}

/// The paper's target schema (Fig 2(b)):
/// `property(type, description, street, postcode, bedrooms, price, crimerank)`.
pub fn target_schema() -> Schema {
    Schema::new(
        "property",
        [
            ("type", AttrType::Str),
            ("description", AttrType::Str),
            ("street", AttrType::Str),
            ("postcode", AttrType::Str),
            ("bedrooms", AttrType::Int),
            ("price", AttrType::Int),
            ("crimerank", AttrType::Int),
        ],
    )
    .expect("static schema is valid")
}

/// Attribute names used by each source. `rightmove` keeps the paper's
/// names; `onthemarket` varies when `varied_attribute_names` is set.
pub fn source_attrs(varied: bool) -> (Vec<&'static str>, Vec<&'static str>) {
    let rightmove = vec!["price", "street", "postcode", "bedrooms", "type", "description"];
    let onthemarket = if varied {
        vec!["asking_price", "street_name", "post_code", "beds", "property_type", "details"]
    } else {
        rightmove.clone()
    };
    (rightmove, onthemarket)
}

impl Scenario {
    /// Generate the full scenario.
    pub fn generate(config: ScenarioConfig) -> Scenario {
        let universe = Universe::generate(config.universe.clone());
        let mut rng = StdRng::seed_from_u64(config.seed);
        let (rm_attrs, otm_attrs) = source_attrs(config.varied_attribute_names);

        let rightmove = extract_source(
            "rightmove",
            &rm_attrs,
            &universe,
            &config.rightmove_errors,
            config.source_fraction,
            config.duplicate_rate,
            &mut rng,
        );
        let onthemarket = extract_source(
            "onthemarket",
            &otm_attrs,
            &universe,
            &config.onthemarket_errors,
            config.source_fraction,
            config.duplicate_rate,
            &mut rng,
        );

        // deprivation: one row per *postcode district* with coverage sampling
        let mut deprivation = Relation::empty(Schema::new(
            "deprivation",
            [("postcode", AttrType::Str), ("crime", AttrType::Str)],
        ).expect("static schema"));
        for (district, rank) in &universe.crime_by_district {
            if rng.gen_bool(config.deprivation_coverage.clamp(0.0, 1.0)) {
                deprivation
                    .push(Tuple::new(vec![
                        Value::str(district),
                        Value::str(rank.to_string()),
                    ]))
                    .expect("arity 2");
            }
        }

        // address reference data: complete, clean
        let mut address = Relation::empty(Schema::new(
            "address",
            [
                ("street", AttrType::Str),
                ("city", AttrType::Str),
                ("postcode", AttrType::Str),
            ],
        ).expect("static schema"));
        for p in &universe.properties {
            address
                .push(Tuple::new(vec![
                    Value::str(&p.street),
                    Value::str(&p.city),
                    Value::str(&p.postcode),
                ]))
                .expect("arity 3");
        }

        Scenario { universe, rightmove, onthemarket, deprivation, address, config }
    }
}

/// Extract one source relation from the universe under a defect model.
fn extract_source(
    name: &str,
    attrs: &[&str],
    universe: &Universe,
    errors: &ErrorModel,
    fraction: f64,
    duplicate_rate: f64,
    rng: &mut StdRng,
) -> Relation {
    let schema = Schema::new(name, attrs.iter().map(|a| (a.to_string(), AttrType::Str)))
        .expect("source attrs unique");
    let mut rel = Relation::empty(schema);
    for p in &universe.properties {
        if !rng.gen_bool(fraction.clamp(0.0, 1.0)) {
            continue;
        }
        let n = if rng.gen_bool(duplicate_rate.clamp(0.0, 1.0)) { 2 } else { 1 };
        for _ in 0..n {
            rel.push(extract_row(p, errors, rng)).expect("row arity");
        }
    }
    rel
}

/// Extract one row (canonical column order: price, street, postcode,
/// bedrooms, type, description) with defects applied.
fn extract_row(p: &GroundProperty, e: &ErrorModel, rng: &mut StdRng) -> Tuple {
    let mut field = |canonical: Field| -> Value {
        if rng.gen_bool(e.missing_rate) {
            return Value::Null;
        }
        match canonical {
            Field::Price => {
                if rng.gen_bool(e.price_format_rate) {
                    Value::str(errors::format_price_pretty(p.price))
                } else {
                    Value::str(p.price.to_string())
                }
            }
            Field::Street => {
                let mut s = p.street.clone();
                if rng.gen_bool(e.typo_rate) {
                    s = errors::typo(rng, &s);
                }
                Value::str(s)
            }
            Field::Postcode => {
                let mut s = p.postcode.clone();
                if rng.gen_bool(e.typo_rate) {
                    s = errors::typo(rng, &s);
                }
                Value::str(s)
            }
            Field::Bedrooms => {
                if rng.gen_bool(e.bedroom_area_rate) {
                    // the paper's defect: master-bedroom area in m² instead
                    // of the bedroom count
                    Value::str(rng.gen_range(9..35i64).to_string())
                } else {
                    Value::str(p.bedrooms.to_string())
                }
            }
            Field::Type => {
                if rng.gen_bool(e.wrong_type_rate) {
                    let wrong: Vec<&&str> =
                        PROPERTY_TYPES.iter().filter(|t| **t != p.ptype).collect();
                    Value::str(*wrong[rng.gen_range(0..wrong.len())])
                } else {
                    Value::str(&p.ptype)
                }
            }
            Field::Description => Value::str(&p.description),
        }
    };
    Tuple::new(vec![
        field(Field::Price),
        field(Field::Street),
        field(Field::Postcode),
        field(Field::Bedrooms),
        field(Field::Type),
        field(Field::Description),
    ])
}

#[derive(Clone, Copy)]
enum Field {
    Price,
    Street,
    Postcode,
    Bedrooms,
    Type,
    Description,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario::generate(ScenarioConfig::default())
    }

    #[test]
    fn generation_deterministic() {
        let a = scenario();
        let b = scenario();
        assert_eq!(a.rightmove.tuples(), b.rightmove.tuples());
        assert_eq!(a.deprivation.tuples(), b.deprivation.tuples());
    }

    #[test]
    fn sources_sample_the_universe() {
        let s = scenario();
        let n = s.universe.properties.len() as f64;
        let rm = s.rightmove.len() as f64;
        assert!(rm > n * 0.5 && rm < n * 0.95, "rightmove size {rm} of {n}");
        // varied names by default
        assert_eq!(s.onthemarket.schema().attr_names()[0], "asking_price");
        assert_eq!(s.rightmove.schema().attr_names()[0], "price");
    }

    #[test]
    fn consistent_names_mode() {
        let s = Scenario::generate(ScenarioConfig {
            varied_attribute_names: false,
            ..Default::default()
        });
        assert_eq!(
            s.onthemarket.schema().attr_names(),
            s.rightmove.schema().attr_names()
        );
    }

    #[test]
    fn clean_model_reproduces_ground_truth() {
        let s = Scenario::generate(ScenarioConfig {
            rightmove_errors: ErrorModel::CLEAN,
            duplicate_rate: 0.0,
            source_fraction: 1.0,
            ..Default::default()
        });
        assert_eq!(s.rightmove.len(), s.universe.properties.len());
        for (t, p) in s.rightmove.iter().zip(&s.universe.properties) {
            assert_eq!(t[0], Value::str(p.price.to_string()));
            assert_eq!(t[1], Value::str(&p.street));
            assert_eq!(t[3], Value::str(p.bedrooms.to_string()));
        }
    }

    #[test]
    fn deprivation_covers_districts_partially() {
        let s = scenario();
        let districts = s.universe.crime_by_district.len();
        let covered = s.deprivation.len();
        assert!(covered < districts, "coverage should be partial");
        assert!(covered as f64 > districts as f64 * 0.5);
    }

    #[test]
    fn address_reference_is_complete_and_clean() {
        let s = scenario();
        assert_eq!(s.address.len(), s.universe.properties.len());
        for a in ["street", "city", "postcode"] {
            assert_eq!(s.address.completeness(a).unwrap(), 1.0);
        }
    }

    #[test]
    fn defects_present_at_realistic_rates() {
        let s = scenario();
        // some nulls somewhere
        let nulls: usize = s.rightmove.iter().map(|t| t.null_count()).sum();
        assert!(nulls > 0);
        // some pretty-formatted prices
        let pretty = s
            .rightmove
            .iter()
            .filter(|t| t[0].as_str().is_some_and(|s| s.starts_with('£')))
            .count();
        assert!(pretty > 0);
        // some bedroom-area errors (bedrooms > 6)
        let area_beds = s
            .rightmove
            .iter()
            .filter(|t| {
                t[3].as_str()
                    .and_then(|s| s.parse::<i64>().ok())
                    .is_some_and(|b| b > 6)
            })
            .count();
        assert!(area_beds > 0);
    }

    #[test]
    fn target_schema_matches_paper() {
        let t = target_schema();
        assert_eq!(
            t.attr_names(),
            vec!["type", "description", "street", "postcode", "bedrooms", "price", "crimerank"]
        );
        assert_eq!(t.name, "property");
    }
}
