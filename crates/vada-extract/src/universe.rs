//! The ground-truth universe: properties, addresses, and crime statistics
//! that the synthetic sources are derived from and that the oracle and
//! experiment scoring align against.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vada_common::text::normalize;

use crate::postcodes::{self, City, CITIES};

/// Property types used in the scenario.
pub const PROPERTY_TYPES: &[&str] = &["detached", "semi-detached", "terraced", "flat"];

const STREET_STEMS: &[&str] = &[
    "high", "church", "station", "park", "victoria", "mill", "london", "green", "spring",
    "queens", "kings", "albert", "grove", "north", "south", "west", "east", "oak", "elm",
    "cedar",
];
const STREET_SUFFIXES: &[&str] = &["street", "road", "lane", "avenue", "close", "drive"];

/// One ground-truth property.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundProperty {
    /// Stable id (index into the universe).
    pub id: usize,
    /// Street address, e.g. `12 high street`.
    pub street: String,
    /// City name.
    pub city: String,
    /// Full postcode.
    pub postcode: String,
    /// True number of bedrooms.
    pub bedrooms: i64,
    /// True asking price in GBP.
    pub price: i64,
    /// Property type (one of [`PROPERTY_TYPES`]).
    pub ptype: String,
    /// Listing description.
    pub description: String,
}

/// Universe generation parameters.
#[derive(Debug, Clone)]
pub struct UniverseConfig {
    /// Number of ground-truth properties.
    pub properties: usize,
    /// RNG seed — everything is deterministic in it.
    pub seed: u64,
}

impl Default for UniverseConfig {
    fn default() -> Self {
        UniverseConfig { properties: 200, seed: 42 }
    }
}

/// The ground-truth world.
#[derive(Debug, Clone)]
pub struct Universe {
    /// All properties.
    pub properties: Vec<GroundProperty>,
    /// Crime rank per postcode district (lower = more deprived), as in the
    /// English indices of deprivation.
    pub crime_by_district: BTreeMap<String, i64>,
    /// Config it was generated from.
    pub config: UniverseConfig,
    /// Alignment index: `(normalised street, postcode)` → property id.
    index: BTreeMap<(String, String), usize>,
}

impl Universe {
    /// Generate a universe.
    pub fn generate(config: UniverseConfig) -> Universe {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut properties = Vec::with_capacity(config.properties);
        let mut index = BTreeMap::new();
        let mut crime_by_district = BTreeMap::new();

        let mut i = 0usize;
        while properties.len() < config.properties {
            let city: &City = &CITIES[rng.gen_range(0..CITIES.len())];
            let postcode = postcodes::generate(&mut rng, city);
            let number = rng.gen_range(1..200);
            let street = format!(
                "{} {} {}",
                number,
                STREET_STEMS[rng.gen_range(0..STREET_STEMS.len())],
                STREET_SUFFIXES[rng.gen_range(0..STREET_SUFFIXES.len())],
            );
            let key = (normalize(&street), postcode.clone());
            if index.contains_key(&key) {
                continue; // addresses must be unique for alignment
            }
            let bedrooms = rng.gen_range(1..=6i64);
            let ptype = PROPERTY_TYPES[rng.gen_range(0..PROPERTY_TYPES.len())].to_string();
            let type_factor = match ptype.as_str() {
                "detached" => 1.5,
                "semi-detached" => 1.15,
                "terraced" => 0.95,
                _ => 0.8,
            };
            let base = 90_000.0 + 55_000.0 * bedrooms as f64;
            let noise = rng.gen_range(0.85..1.15);
            let price = (base * city.price_level * type_factor * noise / 500.0).round() as i64 * 500;
            let description = format!(
                "a {bedrooms} bedroom {ptype} property on {street}, {city_name}",
                city_name = city.name
            );
            crime_by_district
                .entry(postcodes::district(&postcode).to_string())
                .or_insert_with(|| rng.gen_range(1..=10_000i64));
            index.insert(key, i);
            properties.push(GroundProperty {
                id: i,
                street,
                city: city.name.to_string(),
                postcode,
                bedrooms,
                price,
                ptype,
                description,
            });
            i += 1;
        }
        Universe { properties, crime_by_district, config, index }
    }

    /// Align an address to a ground-truth property. Lookup is by
    /// `(normalised street, postcode)`; if the street does not match
    /// exactly (e.g. it was corrupted by the extraction simulator), falls
    /// back to the unique property in the same postcode, if any.
    pub fn align(&self, street: &str, postcode: &str) -> Option<&GroundProperty> {
        if let Some(&id) = self.index.get(&(normalize(street), postcode.to_string())) {
            return Some(&self.properties[id]);
        }
        let mut in_postcode = self.properties.iter().filter(|p| p.postcode == postcode);
        match (in_postcode.next(), in_postcode.next()) {
            (Some(p), None) => Some(p),
            _ => None,
        }
    }

    /// The crime rank of a full postcode (via its district).
    pub fn crime_rank(&self, postcode: &str) -> Option<i64> {
        self.crime_by_district
            .get(postcodes::district(postcode))
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Universe::generate(UniverseConfig::default());
        let b = Universe::generate(UniverseConfig::default());
        assert_eq!(a.properties, b.properties);
        assert_eq!(a.crime_by_district, b.crime_by_district);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Universe::generate(UniverseConfig { seed: 1, ..Default::default() });
        let b = Universe::generate(UniverseConfig { seed: 2, ..Default::default() });
        assert_ne!(a.properties, b.properties);
    }

    #[test]
    fn properties_have_valid_postcodes_and_prices() {
        let u = Universe::generate(UniverseConfig::default());
        assert_eq!(u.properties.len(), 200);
        for p in &u.properties {
            assert!(crate::postcodes::is_valid(&p.postcode), "{}", p.postcode);
            assert!(p.price > 50_000 && p.price < 2_000_000, "price {}", p.price);
            assert!((1..=6).contains(&p.bedrooms));
            assert!(PROPERTY_TYPES.contains(&p.ptype.as_str()));
            assert!(u.crime_rank(&p.postcode).is_some());
        }
    }

    #[test]
    fn align_exact_and_fallback() {
        let u = Universe::generate(UniverseConfig::default());
        let p = &u.properties[0];
        assert_eq!(u.align(&p.street, &p.postcode).unwrap().id, p.id);
        // corrupted street still aligns when the postcode is unique
        let same_pc = u.properties.iter().filter(|q| q.postcode == p.postcode).count();
        if same_pc == 1 {
            assert_eq!(u.align("GARBAGE", &p.postcode).unwrap().id, p.id);
        }
        assert!(u.align(&p.street, "ZZ1 1AA").is_none());
    }

    #[test]
    fn addresses_are_unique() {
        let u = Universe::generate(UniverseConfig { properties: 500, seed: 7 });
        let mut seen = std::collections::HashSet::new();
        for p in &u.properties {
            assert!(seen.insert((normalize(&p.street), p.postcode.clone())));
        }
    }
}
