//! UK-shaped postcode generation and manipulation.
//!
//! Format: `<AREA><DISTRICT> <SECTOR><UNIT>`, e.g. `M13 9PL` — area is the
//! city's letter code, district a small number, sector one digit, unit two
//! letters.

use rand::Rng;

/// A city with its postcode area code and a price multiplier used by the
/// universe generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct City {
    /// City name (lower case).
    pub name: &'static str,
    /// Postcode area prefix, e.g. `M` for Manchester.
    pub area: &'static str,
    /// Relative price level (1.0 = national average).
    pub price_level: f64,
    /// Number of postcode districts the city spans.
    pub districts: u8,
}

/// The cities of the synthetic universe. Manchester, Edinburgh and Oxford
/// lead the list as a nod to the paper's author institutions.
pub const CITIES: &[City] = &[
    City { name: "manchester", area: "M", price_level: 1.0, districts: 20 },
    City { name: "edinburgh", area: "EH", price_level: 1.2, districts: 17 },
    City { name: "oxford", area: "OX", price_level: 1.5, districts: 14 },
    City { name: "leeds", area: "LS", price_level: 0.9, districts: 18 },
    City { name: "birmingham", area: "B", price_level: 0.85, districts: 21 },
    City { name: "bristol", area: "BS", price_level: 1.15, districts: 16 },
];

/// Generate a full postcode in the given city.
pub fn generate(rng: &mut impl Rng, city: &City) -> String {
    let district = rng.gen_range(1..=city.districts);
    let sector = rng.gen_range(0..=9);
    let unit: String = (0..2)
        .map(|_| (b'A' + rng.gen_range(0..26u8)) as char)
        .collect();
    format!("{}{} {}{}", city.area, district, sector, unit)
}

/// The outward code (area + district), e.g. `M13` from `M13 9PL`.
pub fn district(postcode: &str) -> &str {
    postcode.split_whitespace().next().unwrap_or(postcode)
}

/// The city (by area code) a postcode belongs to, if any.
pub fn city_of(postcode: &str) -> Option<&'static City> {
    let outward = district(postcode);
    let area: String = outward.chars().take_while(|c| c.is_ascii_alphabetic()).collect();
    // longest-match: `BS` must not resolve to `B`
    CITIES
        .iter()
        .filter(|c| c.area == area)
        .max_by_key(|c| c.area.len())
}

/// Whether a string is a well-formed postcode of our universe.
pub fn is_valid(postcode: &str) -> bool {
    let mut parts = postcode.split(' ');
    let (Some(outward), Some(inward), None) = (parts.next(), parts.next(), parts.next()) else {
        return false;
    };
    let area: String = outward.chars().take_while(|c| c.is_ascii_alphabetic()).collect();
    let digits = &outward[area.len()..];
    let city = match CITIES.iter().find(|c| c.area == area) {
        Some(c) => c,
        None => return false,
    };
    let district_ok = digits
        .parse::<u8>()
        .map(|d| d >= 1 && d <= city.districts)
        .unwrap_or(false);
    let inward_ok = inward.len() == 3
        && inward.as_bytes()[0].is_ascii_digit()
        && inward[1..].chars().all(|c| c.is_ascii_uppercase());
    district_ok && inward_ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generated_postcodes_are_valid() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for city in CITIES {
            for _ in 0..50 {
                let pc = generate(&mut rng, city);
                assert!(is_valid(&pc), "invalid generated postcode {pc}");
                assert_eq!(city_of(&pc).unwrap().name, city.name);
            }
        }
    }

    #[test]
    fn district_extraction() {
        assert_eq!(district("M13 9PL"), "M13");
        assert_eq!(district("EH8 9AB"), "EH8");
        assert_eq!(district("nonsense"), "nonsense");
    }

    #[test]
    fn area_longest_match() {
        assert_eq!(city_of("BS3 1AA").unwrap().name, "bristol");
        assert_eq!(city_of("B3 1AA").unwrap().name, "birmingham");
        assert!(city_of("ZZ1 1AA").is_none());
    }

    #[test]
    fn validity_rejects_malformed() {
        assert!(is_valid("M13 9PL"));
        assert!(!is_valid("M13"));
        assert!(!is_valid("M99 9PL")); // Manchester has 20 districts
        assert!(!is_valid("M13 9pl"));
        assert!(!is_valid("M13  9PL"));
        assert!(!is_valid("XX13 9PL"));
    }
}
