//! Encoding of the knowledge-base event vocabulary — [`DeltaChange`],
//! [`DeltaEvent`], schemas, relation kinds — on top of the canonical value
//! codec in [`vada_common::codec`]. These are the payloads the WAL frames
//! and the snapshot body are assembled from.

use vada_common::codec::{
    decode_tuples, encode_tuples, put_str, put_u32, put_u64, put_u8, Reader,
};
use vada_common::{AttrType, Relation, Result, Schema, VadaError};

use crate::catalog::RelationKind;
use crate::delta::{DeltaChange, DeltaEvent};

/// Map a decoded aspect string back to the `&'static str` the journal
/// carries. The journal compares aspects by value but stores them as
/// static strings; replay must produce the *same* statics so a reopened
/// journal is indistinguishable from the uninterrupted one.
pub fn static_aspect(s: &str) -> Result<&'static str> {
    const ASPECTS: &[&str] = &[
        "relations",
        "result",
        "intermediates",
        "target",
        "matches",
        "mappings",
        "selection",
        "cfds",
        "quality",
        "feedback",
        "user_context",
        "data_context",
        "staged",
    ];
    ASPECTS
        .iter()
        .find(|a| **a == s)
        .copied()
        .ok_or_else(|| VadaError::Storage(format!("unknown journal aspect `{s}`")))
}

// ---------------------------------------------------------------------
// schemas & relation kinds
// ---------------------------------------------------------------------

/// Append a schema: name, then `(attr name, type tag)` pairs.
pub fn encode_schema(schema: &Schema, out: &mut Vec<u8>) {
    put_str(out, &schema.name);
    put_u32(out, schema.attributes().len() as u32);
    for a in schema.attributes() {
        put_str(out, &a.name);
        put_str(out, a.ty.name());
    }
}

/// Decode a schema.
pub fn decode_schema(r: &mut Reader<'_>) -> Result<Schema> {
    let name = r.str()?.to_string();
    let n = r.u32()? as usize;
    let mut attrs = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let attr = r.str()?.to_string();
        let ty = AttrType::parse(r.str()?)?;
        attrs.push((attr, ty));
    }
    Schema::new(name, attrs)
}

const KIND_SOURCE: u8 = 0;
const KIND_CONTEXT: u8 = 1;
const KIND_RESULT: u8 = 2;
const KIND_INTERMEDIATE: u8 = 3;

/// Append a relation kind tag.
pub fn encode_kind(kind: RelationKind, out: &mut Vec<u8>) {
    put_u8(
        out,
        match kind {
            RelationKind::Source => KIND_SOURCE,
            RelationKind::Context => KIND_CONTEXT,
            RelationKind::Result => KIND_RESULT,
            RelationKind::Intermediate => KIND_INTERMEDIATE,
        },
    );
}

/// Decode a relation kind tag.
pub fn decode_kind(r: &mut Reader<'_>) -> Result<RelationKind> {
    match r.u8()? {
        KIND_SOURCE => Ok(RelationKind::Source),
        KIND_CONTEXT => Ok(RelationKind::Context),
        KIND_RESULT => Ok(RelationKind::Result),
        KIND_INTERMEDIATE => Ok(RelationKind::Intermediate),
        other => Err(VadaError::Storage(format!("unknown relation kind tag {other}"))),
    }
}

// ---------------------------------------------------------------------
// stored relations
// ---------------------------------------------------------------------

/// A full relation as persisted: its catalog kind, schema, and rows.
/// Carried by WAL records whose [`DeltaChange`] does not name its rows
/// (`RelationAdded` / `RelationReplaced`) and by every snapshot entry.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRelation {
    /// The catalog role of the relation.
    pub kind: RelationKind,
    /// Schema (which carries the relation name).
    pub schema: Schema,
    /// All rows, in catalog order.
    pub rows: Vec<vada_common::Tuple>,
}

impl StoredRelation {
    /// Capture a catalog entry.
    pub fn capture(kind: RelationKind, rel: &Relation) -> StoredRelation {
        StoredRelation {
            kind,
            schema: rel.schema().clone(),
            rows: rel.tuples().to_vec(),
        }
    }

    /// Rebuild the relation.
    pub fn into_relation(self) -> Result<(RelationKind, Relation)> {
        Ok((self.kind, Relation::from_tuples(self.schema, self.rows)?))
    }
}

/// Append a stored relation.
pub fn encode_stored_relation(rel: &StoredRelation, out: &mut Vec<u8>) {
    encode_kind(rel.kind, out);
    encode_schema(&rel.schema, out);
    encode_tuples(&rel.rows, out);
}

/// Decode a stored relation.
pub fn decode_stored_relation(r: &mut Reader<'_>) -> Result<StoredRelation> {
    let kind = decode_kind(r)?;
    let schema = decode_schema(r)?;
    let rows = decode_tuples(r)?;
    Ok(StoredRelation { kind, schema, rows })
}

// ---------------------------------------------------------------------
// delta changes & events
// ---------------------------------------------------------------------

const CHANGE_ROWS_APPENDED: u8 = 0;
const CHANGE_RELATION_ADDED: u8 = 1;
const CHANGE_ROWS_REMOVED: u8 = 2;
const CHANGE_ROWS_REPLACED: u8 = 3;
const CHANGE_RELATION_REPLACED: u8 = 4;
const CHANGE_RELATION_REMOVED: u8 = 5;
const CHANGE_ASPECT_CHANGED: u8 = 6;

fn put_positions(out: &mut Vec<u8>, positions: &[usize]) {
    put_u32(out, positions.len() as u32);
    for p in positions {
        put_u64(out, *p as u64);
    }
}

fn read_positions(r: &mut Reader<'_>) -> Result<Vec<usize>> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        out.push(r.u64()? as usize);
    }
    Ok(out)
}

/// Append one delta change.
pub fn encode_change(change: &DeltaChange, out: &mut Vec<u8>) {
    match change {
        DeltaChange::RowsAppended { relation, rows } => {
            put_u8(out, CHANGE_ROWS_APPENDED);
            put_str(out, relation);
            encode_tuples(rows, out);
        }
        DeltaChange::RelationAdded { relation } => {
            put_u8(out, CHANGE_RELATION_ADDED);
            put_str(out, relation);
        }
        DeltaChange::RowsRemoved { relation, rows, positions } => {
            put_u8(out, CHANGE_ROWS_REMOVED);
            put_str(out, relation);
            encode_tuples(rows, out);
            put_positions(out, positions);
        }
        DeltaChange::RowsReplaced { relation, removed, added, positions, tail } => {
            put_u8(out, CHANGE_ROWS_REPLACED);
            put_str(out, relation);
            encode_tuples(removed, out);
            encode_tuples(added, out);
            put_positions(out, positions);
            put_u8(out, *tail as u8);
        }
        DeltaChange::RelationReplaced { relation } => {
            put_u8(out, CHANGE_RELATION_REPLACED);
            put_str(out, relation);
        }
        DeltaChange::RelationRemoved { relation } => {
            put_u8(out, CHANGE_RELATION_REMOVED);
            put_str(out, relation);
        }
        DeltaChange::AspectChanged { detail } => {
            put_u8(out, CHANGE_ASPECT_CHANGED);
            put_str(out, detail);
        }
    }
}

/// Decode one delta change.
pub fn decode_change(r: &mut Reader<'_>) -> Result<DeltaChange> {
    match r.u8()? {
        CHANGE_ROWS_APPENDED => Ok(DeltaChange::RowsAppended {
            relation: r.str()?.to_string(),
            rows: decode_tuples(r)?,
        }),
        CHANGE_RELATION_ADDED => Ok(DeltaChange::RelationAdded { relation: r.str()?.to_string() }),
        CHANGE_ROWS_REMOVED => Ok(DeltaChange::RowsRemoved {
            relation: r.str()?.to_string(),
            rows: decode_tuples(r)?,
            positions: read_positions(r)?,
        }),
        CHANGE_ROWS_REPLACED => Ok(DeltaChange::RowsReplaced {
            relation: r.str()?.to_string(),
            removed: decode_tuples(r)?,
            added: decode_tuples(r)?,
            positions: read_positions(r)?,
            tail: match r.u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(VadaError::Storage(format!("invalid tail byte {other}")));
                }
            },
        }),
        CHANGE_RELATION_REPLACED => {
            Ok(DeltaChange::RelationReplaced { relation: r.str()?.to_string() })
        }
        CHANGE_RELATION_REMOVED => {
            Ok(DeltaChange::RelationRemoved { relation: r.str()?.to_string() })
        }
        CHANGE_ASPECT_CHANGED => Ok(DeltaChange::AspectChanged { detail: r.str()?.to_string() }),
        other => Err(VadaError::Storage(format!("unknown delta-change tag {other}"))),
    }
}

/// Append one journal event.
pub fn encode_event(e: &DeltaEvent, out: &mut Vec<u8>) {
    put_u64(out, e.seq);
    put_str(out, e.aspect);
    encode_change(&e.change, out);
}

/// Decode one journal event (the aspect is mapped back to its static).
pub fn decode_event(r: &mut Reader<'_>) -> Result<DeltaEvent> {
    let seq = r.u64()?;
    let aspect = static_aspect(r.str()?)?;
    let change = decode_change(r)?;
    Ok(DeltaEvent { seq, aspect, change })
}

// ---------------------------------------------------------------------
// WAL records
// ---------------------------------------------------------------------

/// One write-ahead-log record: the journal event, plus — for events whose
/// change does not carry its rows (`RelationAdded`, `RelationReplaced`) —
/// the full new relation, so replay never needs state the log does not
/// hold.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The journalled event.
    pub event: DeltaEvent,
    /// The full relation for relation-level changes; `None` otherwise.
    pub payload: Option<StoredRelation>,
}

/// Encode a WAL record payload (the frame — length + CRC — is the WAL's
/// job, not the codec's).
pub fn encode_record(rec: &WalRecord, out: &mut Vec<u8>) {
    encode_event(&rec.event, out);
    match &rec.payload {
        None => put_u8(out, 0),
        Some(rel) => {
            put_u8(out, 1);
            encode_stored_relation(rel, out);
        }
    }
}

/// Decode a WAL record payload; the whole buffer must be consumed.
pub fn decode_record(buf: &[u8]) -> Result<WalRecord> {
    let mut r = Reader::new(buf);
    let event = decode_event(&mut r)?;
    let payload = match r.u8()? {
        0 => None,
        1 => Some(decode_stored_relation(&mut r)?),
        other => return Err(VadaError::Storage(format!("invalid payload flag {other}"))),
    };
    r.expect_done()?;
    Ok(WalRecord { event, payload })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::tuple;

    fn round_trip(change: DeltaChange) {
        let rec = WalRecord {
            event: DeltaEvent { seq: 42, aspect: "relations", change },
            payload: None,
        };
        let mut buf = Vec::new();
        encode_record(&rec, &mut buf);
        assert_eq!(decode_record(&buf).unwrap(), rec);
    }

    #[test]
    fn every_change_variant_round_trips() {
        round_trip(DeltaChange::RowsAppended {
            relation: "r".into(),
            rows: vec![tuple![1, "x"], tuple![2, "y"]],
        });
        round_trip(DeltaChange::RelationAdded { relation: "r".into() });
        round_trip(DeltaChange::RowsRemoved {
            relation: "r".into(),
            rows: vec![tuple![1]],
            positions: vec![3],
        });
        round_trip(DeltaChange::RowsReplaced {
            relation: "r".into(),
            removed: vec![tuple![1]],
            added: vec![tuple![2]],
            positions: vec![0],
            tail: true,
        });
        round_trip(DeltaChange::RelationReplaced { relation: "r".into() });
        round_trip(DeltaChange::RelationRemoved { relation: "r".into() });
        round_trip(DeltaChange::AspectChanged { detail: "matches".into() });
    }

    #[test]
    fn payload_round_trips() {
        let rel = Relation::from_tuples(
            Schema::all_str("s", &["a", "b"]),
            vec![tuple!["1", "2"]],
        )
        .unwrap();
        let rec = WalRecord {
            event: DeltaEvent {
                seq: 7,
                aspect: "relations",
                change: DeltaChange::RelationAdded { relation: "s".into() },
            },
            payload: Some(StoredRelation::capture(RelationKind::Source, &rel)),
        };
        let mut buf = Vec::new();
        encode_record(&rec, &mut buf);
        let back = decode_record(&buf).unwrap();
        assert_eq!(back, rec);
        let (kind, rebuilt) = back.payload.unwrap().into_relation().unwrap();
        assert_eq!(kind, RelationKind::Source);
        assert_eq!(rebuilt.tuples(), rel.tuples());
        assert_eq!(rebuilt.schema(), rel.schema());
    }

    #[test]
    fn unknown_aspect_rejected() {
        assert!(static_aspect("not-an-aspect").is_err());
        // every aspect the store can touch maps to its static
        for a in ["relations", "staged", "data_context", "selection"] {
            assert_eq!(static_aspect(a).unwrap(), a);
        }
    }
}
