//! Durable storage for the knowledge base: a canonical event codec, an
//! append-only CRC-framed write-ahead log, and atomic snapshots with log
//! compaction.
//!
//! A durable knowledge-base directory holds two files:
//!
//! - `snapshot.bin` — the last checkpoint ([`snapshot`]); may be absent if
//!   the log has never compacted.
//! - `wal.log` — every [`DeltaEvent`](crate::DeltaEvent) applied since the
//!   snapshot, one CRC-framed record each ([`wal`]).
//!
//! **Recovery** ([`KnowledgeBase::open`](crate::KnowledgeBase::open)) loads
//! the snapshot (if any), then replays the WAL's whole records, skipping any
//! with `seq <=` the snapshot version — the overlap a crash between
//! "snapshot renamed" and "log truncated" can leave behind. The recovered
//! catalog, journal window, watermarks, and lineage are byte-identical to
//! the pre-crash in-memory state as of the last fsynced record, so sharded
//! views and incremental sessions resume O(change).
//!
//! **Single writer.** A WAL directory belongs to one live `KnowledgeBase`
//! at a time. Reopening a directory restores the persisted lineage;
//! opening it while another instance still appends to the same lineage
//! would let the two histories diverge under one identity. Cloned bases
//! therefore drop the durable handle (and take a fresh lineage), exactly
//! like the journal's clone semantics.

pub mod codec;
pub mod snapshot;
pub mod wal;

pub use codec::{StoredRelation, WalRecord};
pub use snapshot::Snapshot;
pub use wal::Wal;

use std::path::{Path, PathBuf};

use vada_common::Result;

/// File name of the write-ahead log inside a durable KB directory.
pub const WAL_FILE: &str = "wal.log";
/// File name of the snapshot inside a durable KB directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// The store-side handle: the directory plus the open log.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    wal: Wal,
}

impl DurableStore {
    /// Initialise a durable directory with a fresh (empty) log, writing
    /// `snap` as its base snapshot first so the directory is complete at
    /// every instant.
    pub fn create(dir: impl Into<PathBuf>, snap: &Snapshot) -> Result<DurableStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        snapshot::write_snapshot(&dir, SNAPSHOT_FILE, snap)?;
        let wal = Wal::create(dir.join(WAL_FILE))?;
        Ok(DurableStore { dir, wal })
    }

    /// Open an existing durable directory: the snapshot (if any) plus the
    /// log's surviving records.
    pub fn open(dir: impl Into<PathBuf>) -> Result<(DurableStore, Option<Snapshot>, Vec<WalRecord>)> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let snap = snapshot::read_snapshot(&dir, SNAPSHOT_FILE)?;
        let (wal, records) = Wal::open(dir.join(WAL_FILE))?;
        Ok((DurableStore { dir, wal }, snap, records))
    }

    /// Append (and fsync) one record, returning the framed byte count.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64> {
        self.wal.append(record)
    }

    /// Compact: write `snap` as the new checkpoint (atomic rename), then
    /// reset the log to empty. A crash between the two steps leaves the
    /// new snapshot plus the old log — replay skips every record at or
    /// below the snapshot version, so the overlap is harmless.
    pub fn compact(&mut self, snap: &Snapshot) -> Result<()> {
        snapshot::write_snapshot(&self.dir, SNAPSHOT_FILE, snap)?;
        self.wal = Wal::create(self.dir.join(WAL_FILE))?;
        Ok(())
    }

    /// The durable directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}
