//! The append-only write-ahead log.
//!
//! File layout: an 8-byte header (`b"VADAWAL"` + the codec
//! [`FORMAT_VERSION`](vada_common::codec::FORMAT_VERSION)), then records,
//! each framed as
//!
//! ```text
//! u32 LE payload length | u32 LE CRC-32 (IEEE) of payload | payload bytes
//! ```
//!
//! **Durability contract.** [`Wal::append`] writes the frame and fsyncs
//! before returning: once a mutation is applied in memory, its record is on
//! disk. A crash can therefore only ever lose (or tear) the *suffix* the
//! process had not finished writing.
//!
//! **Torn tails.** On open the log is scanned record by record. A short
//! frame, a short payload, or a CRC mismatch at the tail is exactly what an
//! interrupted write leaves behind: the file is truncated back to the last
//! whole record and the open succeeds — a torn tail is detected and
//! discarded, never misread as data. A record that frames and checksums
//! correctly but fails to *decode* is different: the bytes were written
//! intact, so the file is from an incompatible or corrupt producer, and the
//! open fails with [`VadaError::Storage`] rather than silently dropping
//! acknowledged history.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use vada_common::codec::FORMAT_VERSION;
use vada_common::{Result, VadaError};

use super::codec::{decode_record, encode_record, WalRecord};

const MAGIC: &[u8; 7] = b"VADAWAL";
const HEADER_LEN: u64 = 8;
/// Sanity cap on a single record frame (64 MiB). A length field beyond it
/// is treated like any other torn tail: garbage, truncate.
const MAX_RECORD_LEN: u32 = 64 << 20;

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// An open write-ahead log, positioned at its end for appending.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
}

fn header() -> [u8; 8] {
    let mut h = [0u8; 8];
    h[..7].copy_from_slice(MAGIC);
    h[7] = FORMAT_VERSION;
    h
}

fn sync_parent_dir(path: &Path) {
    // Persist the directory entry itself (new or renamed file). Best
    // effort: not every platform lets a directory be fsynced.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

impl Wal {
    /// Create (or truncate to empty) the log at `path` and fsync it.
    pub fn create(path: impl Into<PathBuf>) -> Result<Wal> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(&header())?;
        file.sync_data()?;
        sync_parent_dir(&path);
        Ok(Wal { file, path })
    }

    /// Open the log at `path`, replaying its records. A missing file is
    /// created empty. Returns the log (positioned for appending) and every
    /// whole record, in write order; a torn tail is truncated away.
    pub fn open(path: impl Into<PathBuf>) -> Result<(Wal, Vec<WalRecord>)> {
        let path = path.into();
        if !path.exists() {
            return Ok((Wal::create(path)?, Vec::new()));
        }
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.len() < HEADER_LEN as usize {
            // even the header is torn: an interrupted create — start over
            drop(file);
            return Ok((Wal::create(path)?, Vec::new()));
        }
        if bytes[..7] != MAGIC[..] {
            return Err(VadaError::Storage(format!(
                "{}: not a VADA write-ahead log",
                path.display()
            )));
        }
        if bytes[7] != FORMAT_VERSION {
            return Err(VadaError::Storage(format!(
                "{}: unsupported WAL format version {}",
                path.display(),
                bytes[7]
            )));
        }

        let mut records = Vec::new();
        let mut offset = HEADER_LEN as usize; // end of the last whole record
        let mut pos = offset;
        let mut last_seq = 0u64;
        loop {
            if bytes.len() - pos < 8 {
                break; // torn or absent frame header
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
            if len > MAX_RECORD_LEN || bytes.len() - pos - 8 < len as usize {
                break; // implausible length or torn payload
            }
            let payload = &bytes[pos + 8..pos + 8 + len as usize];
            if crc32(payload) != crc {
                break; // torn mid-payload (overwritten garbage)
            }
            // the frame is intact: a decode failure now is corruption, not
            // a torn tail — refuse rather than drop acknowledged records
            let record = decode_record(payload).map_err(|e| {
                VadaError::Storage(format!(
                    "{}: record at offset {pos} is framed correctly but undecodable: {}",
                    path.display(),
                    e.message()
                ))
            })?;
            if record.event.seq <= last_seq {
                return Err(VadaError::Storage(format!(
                    "{}: record at offset {pos} breaks sequence monotonicity ({} after {})",
                    path.display(),
                    record.event.seq,
                    last_seq
                )));
            }
            last_seq = record.event.seq;
            records.push(record);
            pos += 8 + len as usize;
            offset = pos;
        }

        if offset < bytes.len() {
            file.set_len(offset as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(offset as u64))?;
        Ok((Wal { file, path }, records))
    }

    /// Append one record: frame, write, fsync. After this returns the
    /// record will survive a crash. Returns the framed byte count — the
    /// observability layer's `wal.bytes` currency.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64> {
        let mut payload = Vec::new();
        encode_record(record, &mut payload);
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        Ok(frame.len() as u64)
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{DeltaChange, DeltaEvent};
    use vada_common::tuple;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vada-wal-test-{}-{name}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn rec(seq: u64, n: usize) -> WalRecord {
        WalRecord {
            event: DeltaEvent {
                seq,
                aspect: "relations",
                change: DeltaChange::RowsAppended {
                    relation: "r".into(),
                    rows: (0..n).map(|i| tuple![i as i64, "payload"]).collect(),
                },
            },
            payload: None,
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // standard IEEE test vector
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_reopen() {
        let path = tmp("append");
        let mut wal = Wal::create(&path).unwrap();
        for s in 1..=5 {
            wal.append(&rec(s, s as usize)).unwrap();
        }
        drop(wal);
        let (_wal, records) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(records[4], rec(5, 5));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_truncation_recovers_a_prefix() {
        let path = tmp("trunc");
        let mut wal = Wal::create(&path).unwrap();
        let originals: Vec<WalRecord> = (1..=4).map(|s| rec(s, s as usize)).collect();
        for r in &originals {
            wal.append(r).unwrap();
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (_w, records) = Wal::open(&path).unwrap();
            assert!(
                originals.starts_with(&records),
                "cut at {cut}: recovered records must be a prefix"
            );
            // reopening after truncation is idempotent: the file now ends
            // at the last whole record
            let healed = std::fs::read(&path).unwrap();
            let (_w2, again) = Wal::open(&path).unwrap();
            assert_eq!(records, again);
            assert_eq!(std::fs::read(&path).unwrap(), healed);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_payload_with_valid_frame_is_rejected() {
        let path = tmp("corrupt");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(&rec(1, 1)).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // flip a payload byte and fix the CRC so the frame still verifies
        let len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let crc = crc32(&bytes[16..16 + len]);
        bytes[12..16].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = Wal::open(&path).unwrap_err();
        assert_eq!(err.kind(), "storage");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flipped_payload_byte_without_crc_fix_truncates() {
        let path = tmp("flip");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(&rec(1, 1)).unwrap();
        wal.append(&rec(2, 1)).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // tear the second record's payload
        std::fs::write(&path, &bytes).unwrap();
        let (_w, records) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![rec(1, 1)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_magic_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTAWAL!garbage").unwrap();
        assert_eq!(Wal::open(&path).unwrap_err().kind(), "storage");
        std::fs::remove_file(&path).unwrap();
    }
}
