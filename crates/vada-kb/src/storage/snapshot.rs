//! Snapshots: a whole-catalog checkpoint that lets the WAL be compacted.
//!
//! A snapshot captures everything replay needs to reconstruct the
//! *extensional* knowledge base byte-identically: the catalog (every
//! relation with its kind, schema, and rows), the version counter,
//! per-aspect versions, and the delta journal's full retained window plus
//! watermarks and lineage — so `drain_deltas_since` answers identically
//! before and after a reopen. Derived metadata (matches, mappings, CFDs,
//! feedback, …) is deliberately out of scope: it is re-derived by running
//! the wrangling pipeline over the recovered catalog.
//!
//! File layout: magic `b"VADASNP"` + format version, a `u32` CRC-32 of the
//! body, then the body. The file is written to a temp sibling and atomically
//! renamed over the old snapshot, so a crash mid-write leaves the previous
//! snapshot intact — there is never a moment with no valid snapshot on
//! disk once one has been written.

use std::fs::File;
use std::io::Write;
use std::path::Path;

use vada_common::codec::{put_str, put_u32, put_u64, Reader, FORMAT_VERSION};
use vada_common::{Result, VadaError};

use super::codec::{
    decode_event, decode_stored_relation, encode_event, encode_stored_relation, static_aspect,
    StoredRelation,
};
use super::wal::crc32;
use crate::delta::DeltaEvent;

const MAGIC: &[u8; 7] = b"VADASNP";

/// Everything a reopen restores before replaying the WAL.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The KB version (== the journal's `last_seq`) at capture time.
    pub version: u64,
    /// The journal lineage to restore, so consumer watermarks taken before
    /// the crash keep resolving against the reopened base.
    pub lineage: u64,
    /// The journal's pruned-through watermark.
    pub pruned_through: u64,
    /// The journal's retention capacity.
    pub capacity: u64,
    /// Per-aspect versions, sorted by aspect.
    pub aspect_versions: Vec<(String, u64)>,
    /// The journal's retained event window, oldest first.
    pub events: Vec<DeltaEvent>,
    /// Every catalog relation.
    pub relations: Vec<StoredRelation>,
}

fn encode_body(snap: &Snapshot) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, snap.version);
    put_u64(&mut out, snap.lineage);
    put_u64(&mut out, snap.pruned_through);
    put_u64(&mut out, snap.capacity);
    put_u32(&mut out, snap.aspect_versions.len() as u32);
    for (aspect, v) in &snap.aspect_versions {
        put_str(&mut out, aspect);
        put_u64(&mut out, *v);
    }
    put_u32(&mut out, snap.events.len() as u32);
    for e in &snap.events {
        encode_event(e, &mut out);
    }
    put_u32(&mut out, snap.relations.len() as u32);
    for rel in &snap.relations {
        encode_stored_relation(rel, &mut out);
    }
    out
}

fn decode_body(body: &[u8]) -> Result<Snapshot> {
    let mut r = Reader::new(body);
    let version = r.u64()?;
    let lineage = r.u64()?;
    let pruned_through = r.u64()?;
    let capacity = r.u64()?;
    let n = r.u32()? as usize;
    let mut aspect_versions = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        // validate against the aspect table now: a bad aspect surfaced at
        // decode time names the file, not a later panic deep in the store
        let aspect = static_aspect(r.str()?)?.to_string();
        aspect_versions.push((aspect, r.u64()?));
    }
    let n = r.u32()? as usize;
    let mut events = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        events.push(decode_event(&mut r)?);
    }
    let n = r.u32()? as usize;
    let mut relations = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        relations.push(decode_stored_relation(&mut r)?);
    }
    r.expect_done()?;
    Ok(Snapshot {
        version,
        lineage,
        pruned_through,
        capacity,
        aspect_versions,
        events,
        relations,
    })
}

/// Write `snap` to `<dir>/<file>` atomically (temp + rename), fsyncing the
/// file and its directory entry.
pub fn write_snapshot(dir: &Path, file: &str, snap: &Snapshot) -> Result<()> {
    let body = encode_body(snap);
    let mut bytes = Vec::with_capacity(body.len() + 12);
    bytes.extend_from_slice(MAGIC);
    bytes.push(FORMAT_VERSION);
    bytes.extend_from_slice(&crc32(&body).to_le_bytes());
    bytes.extend_from_slice(&body);

    let tmp = dir.join(format!("{file}.tmp"));
    let path = dir.join(file);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, &path)?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Read the snapshot at `<dir>/<file>`, or `None` if absent. Corruption
/// (bad magic, bad CRC, undecodable body) is an error: unlike a WAL tail,
/// a snapshot is written atomically, so a damaged one means the storage
/// medium lied and silently starting empty would lose acknowledged data.
pub fn read_snapshot(dir: &Path, file: &str) -> Result<Option<Snapshot>> {
    let path = dir.join(file);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < 12 || bytes[..7] != MAGIC[..] {
        return Err(VadaError::Storage(format!(
            "{}: not a VADA snapshot",
            path.display()
        )));
    }
    if bytes[7] != FORMAT_VERSION {
        return Err(VadaError::Storage(format!(
            "{}: unsupported snapshot format version {}",
            path.display(),
            bytes[7]
        )));
    }
    let crc = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let body = &bytes[12..];
    if crc32(body) != crc {
        return Err(VadaError::Storage(format!(
            "{}: snapshot checksum mismatch",
            path.display()
        )));
    }
    decode_body(body).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::RelationKind;
    use crate::delta::DeltaChange;
    use vada_common::{tuple, Relation, Schema};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vada-snap-test-{}-{name}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Snapshot {
        let rel = Relation::from_tuples(
            Schema::all_str("s", &["a"]),
            vec![tuple!["x"], tuple!["y"]],
        )
        .unwrap();
        Snapshot {
            version: 9,
            lineage: 3,
            pruned_through: 2,
            capacity: 4096,
            aspect_versions: vec![("relations".into(), 9), ("target".into(), 1)],
            events: vec![DeltaEvent {
                seq: 9,
                aspect: "relations",
                change: DeltaChange::RowsAppended {
                    relation: "s".into(),
                    rows: vec![tuple!["y"]],
                },
            }],
            relations: vec![StoredRelation::capture(RelationKind::Source, &rel)],
        }
    }

    #[test]
    fn round_trips() {
        let dir = tmpdir("rt");
        let snap = sample();
        write_snapshot(&dir, "snapshot.bin", &snap).unwrap();
        let back = read_snapshot(&dir, "snapshot.bin").unwrap().unwrap();
        assert_eq!(back, snap);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_is_none() {
        let dir = tmpdir("none");
        assert_eq!(read_snapshot(&dir, "snapshot.bin").unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_an_error_not_empty() {
        let dir = tmpdir("bad");
        write_snapshot(&dir, "snapshot.bin", &sample()).unwrap();
        let mut bytes = std::fs::read(dir.join("snapshot.bin")).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(dir.join("snapshot.bin"), &bytes).unwrap();
        assert_eq!(
            read_snapshot(&dir, "snapshot.bin").unwrap_err().kind(),
            "storage"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
