//! The knowledge-base **change journal**: every mutation of the
//! [`KnowledgeBase`](crate::KnowledgeBase) is recorded as a
//! [`DeltaEvent`] with a monotone sequence number equal to the KB version
//! the mutation produced, so any consumer can ask *"what changed since I
//! last ran?"* and pay O(change) instead of re-reading the whole base.
//!
//! Events distinguish **monotone** changes (rows appended to an existing
//! relation — the shape the incremental Datalog path can evaluate as a
//! delta) from **non-monotone** ones (a relation replaced or removed, or a
//! metadata aspect rewritten), which force consumers back to a full run.
//!
//! ```
//! use vada_common::{tuple, Relation, Schema};
//! use vada_kb::{DeltaChange, KnowledgeBase};
//!
//! let mut kb = KnowledgeBase::new();
//! let mut src = Relation::empty(Schema::all_str("listings", &["price"]));
//! src.push(tuple!["100"]).unwrap();
//! kb.register_source(src.clone());
//! let seen = kb.version();
//!
//! // appending rows and re-registering is recorded as a monotone delta
//! src.push(tuple!["200"]).unwrap();
//! kb.register_source(src);
//! let events = kb.drain_deltas_since(seen).expect("within the window");
//! match &events[0].change {
//!     DeltaChange::RowsAppended { relation, rows } => {
//!         assert_eq!(relation, "listings");
//!         assert_eq!(rows.len(), 1);
//!     }
//!     other => panic!("expected an append, got {other:?}"),
//! }
//! ```
//!
//! The journal keeps a bounded window of recent events; a consumer whose
//! watermark has fallen out of the window gets `None` from
//! [`KnowledgeBase::drain_deltas_since`](crate::KnowledgeBase::drain_deltas_since)
//! and must fall back to a full run — the same contract as a non-monotone
//! event, so staleness can never produce wrong results.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use vada_common::Tuple;

/// What one knowledge-base mutation did, at the granularity the
/// incremental evaluation path consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaChange {
    /// Rows were appended to an existing relation (schema unchanged, old
    /// rows a prefix of the new ones). Monotone: consumers may feed
    /// `rows` straight through a semi-naive delta pass.
    RowsAppended {
        /// Relation name.
        relation: String,
        /// The appended suffix, in insertion order.
        rows: Vec<Tuple>,
    },
    /// A brand-new relation was registered. Recorded without its rows —
    /// a consumer that cares about a relation it has never seen must read
    /// it from the catalog anyway, and copying whole relations into the
    /// journal would double ingestion memory.
    RelationAdded {
        /// Relation name.
        relation: String,
    },
    /// Rows were removed from an existing relation
    /// ([`KnowledgeBase::remove_rows`](crate::KnowledgeBase::remove_rows)):
    /// the remaining rows keep their relative order. Not monotone, but
    /// *row-level*: a retraction-capable consumer can feed `rows` through
    /// its deletion path instead of re-reading the relation, and a
    /// position-tracking consumer (the sharded store) can route each
    /// removal to the exact row it hit — tuples alone cannot distinguish
    /// which of several equal rows went.
    RowsRemoved {
        /// Relation name.
        relation: String,
        /// The removed tuples, in ascending (pre-removal) row order.
        rows: Vec<Tuple>,
        /// The pre-removal indices of `rows` (same order, ascending).
        positions: Vec<usize>,
    },
    /// Rows were rewritten in place
    /// ([`KnowledgeBase::update_source`](crate::KnowledgeBase::update_source)).
    /// Row-level like [`DeltaChange::RowsRemoved`]; `tail` is `true` when
    /// every rewritten row sat in the final positions of the relation, in
    /// which case retract-old + append-new reproduces the new scan order
    /// exactly (a mid-relation rewrite changes the scan order, which an
    /// append can never reproduce).
    RowsReplaced {
        /// Relation name.
        relation: String,
        /// The previous contents of the rewritten rows, ascending row order.
        removed: Vec<Tuple>,
        /// The new contents of the rewritten rows, ascending row order.
        added: Vec<Tuple>,
        /// The indices of the rewritten rows (same order, ascending; the
        /// rewrite is in place, so pre- and post-edit indices coincide).
        positions: Vec<usize>,
        /// Whether the rewritten rows were the trailing rows.
        tail: bool,
    },
    /// A relation was replaced with content that is not an extension of
    /// what was there (rows retracted or rewritten, or the schema
    /// changed). Non-monotone.
    RelationReplaced {
        /// Relation name.
        relation: String,
    },
    /// A relation was removed from the catalog. Non-monotone.
    RelationRemoved {
        /// Relation name.
        relation: String,
    },
    /// A metadata aspect changed (matches, mappings, CFDs, feedback,
    /// quality, contexts, selection, staged documents…). Non-monotone for
    /// relation consumers, but carries the aspect so consumers can ignore
    /// aspects they do not read.
    AspectChanged {
        /// Short human-readable detail (e.g. the mutating operation).
        detail: String,
    },
}

impl DeltaChange {
    /// Whether the change is a pure fact insertion.
    pub fn is_monotone(&self) -> bool {
        matches!(self, DeltaChange::RowsAppended { .. })
    }

    /// Whether the change names the exact rows it touched (appends,
    /// removals, in-place rewrites) — the granularity the retraction-capable
    /// incremental path consumes. Relation-level events (`RelationAdded`,
    /// `RelationReplaced`, `RelationRemoved`) are not row-level.
    pub fn is_row_level(&self) -> bool {
        matches!(
            self,
            DeltaChange::RowsAppended { .. }
                | DeltaChange::RowsRemoved { .. }
                | DeltaChange::RowsReplaced { .. }
        )
    }

    /// The relation this change touches, if it is relation-level.
    pub fn relation(&self) -> Option<&str> {
        match self {
            DeltaChange::RowsAppended { relation, .. }
            | DeltaChange::RowsRemoved { relation, .. }
            | DeltaChange::RowsReplaced { relation, .. }
            | DeltaChange::RelationAdded { relation }
            | DeltaChange::RelationReplaced { relation }
            | DeltaChange::RelationRemoved { relation } => Some(relation),
            DeltaChange::AspectChanged { .. } => None,
        }
    }
}

/// One journalled mutation.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaEvent {
    /// The knowledge-base version this mutation produced. Strictly
    /// monotone across the journal.
    pub seq: u64,
    /// The aspect the mutation bumped (see
    /// [`KnowledgeBase::aspect_version`](crate::KnowledgeBase::aspect_version)).
    pub aspect: &'static str,
    /// What changed.
    pub change: DeltaChange,
}

/// Default cap on retained events. Generous enough for many orchestration
/// steps between two runs of the same consumer, small enough that the
/// journal never dominates KB memory.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// Process-unique lineage ids (see [`DeltaJournal::lineage`]).
static NEXT_LINEAGE: AtomicU64 = AtomicU64::new(1);

/// A bounded, monotone-sequence journal of [`DeltaEvent`]s.
#[derive(Debug)]
pub struct DeltaJournal {
    events: VecDeque<DeltaEvent>,
    /// Highest sequence number that has been pruned out of the window
    /// (0 when nothing was pruned).
    pruned_through: u64,
    /// Highest sequence number ever recorded (0 when none).
    last_seq: u64,
    /// Process-unique lineage id; see [`DeltaJournal::lineage`].
    lineage: u64,
    capacity: usize,
}

impl Default for DeltaJournal {
    fn default() -> Self {
        DeltaJournal {
            events: VecDeque::new(),
            pruned_through: 0,
            last_seq: 0,
            lineage: NEXT_LINEAGE.fetch_add(1, Ordering::Relaxed),
            capacity: DEFAULT_JOURNAL_CAPACITY,
        }
    }
}

/// Cloning a journal starts a **new lineage**: the clone's history can
/// diverge from the original's under the same sequence numbers, so a
/// watermark taken against one must never be replayed against the other.
/// Consumers that cache a watermark must cache [`DeltaJournal::lineage`]
/// beside it and fall back to a full read when it changes.
impl Clone for DeltaJournal {
    fn clone(&self) -> Self {
        DeltaJournal {
            events: self.events.clone(),
            pruned_through: self.pruned_through,
            last_seq: self.last_seq,
            lineage: NEXT_LINEAGE.fetch_add(1, Ordering::Relaxed),
            capacity: self.capacity,
        }
    }
}

impl DeltaJournal {
    /// An empty journal with a custom retention window.
    pub fn with_capacity(capacity: usize) -> DeltaJournal {
        DeltaJournal { capacity: capacity.max(1), ..DeltaJournal::default() }
    }

    /// Rebuild a journal from persisted state — the storage recovery path.
    ///
    /// Unlike [`Clone`], this restores the **persisted lineage**: the point
    /// of recovery is that watermarks consumers took before the crash keep
    /// resolving against the reopened base. The process-wide lineage
    /// counter is advanced past it so journals created later in this
    /// process can never collide with the restored identity. (The converse
    /// hazard — reopening a directory while the original instance still
    /// appends to the same lineage — is excluded by the storage layer's
    /// single-writer contract.)
    pub(crate) fn restore(
        lineage: u64,
        pruned_through: u64,
        last_seq: u64,
        capacity: usize,
        events: Vec<DeltaEvent>,
    ) -> DeltaJournal {
        NEXT_LINEAGE.fetch_max(lineage + 1, Ordering::Relaxed);
        DeltaJournal {
            events: events.into(),
            pruned_through,
            last_seq,
            lineage,
            capacity: capacity.max(1),
        }
    }

    /// The retention capacity of the bounded window.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record a mutation. `seq` must be strictly greater than any
    /// previously recorded sequence (the KB version counter guarantees
    /// this).
    pub fn record(&mut self, seq: u64, aspect: &'static str, change: DeltaChange) {
        debug_assert!(
            self.events.back().is_none_or(|e| e.seq < seq),
            "journal sequence numbers must be strictly monotone"
        );
        self.events.push_back(DeltaEvent { seq, aspect, change });
        self.last_seq = seq;
        while self.events.len() > self.capacity {
            let dropped = self.events.pop_front().expect("len > capacity >= 1");
            self.pruned_through = dropped.seq;
        }
    }

    /// The events with `seq > version`, oldest first — or `None` when the
    /// journal cannot prove that slice is complete, in which case the
    /// consumer must fall back to a full read. Two ways to lose the proof:
    ///
    /// - the bounded window has pruned past `version` (some event with
    ///   `seq > version` was dropped — retraction events are as prunable as
    ///   any other, and a consumer that misses one would silently keep
    ///   deleted rows alive);
    /// - `version` lies *ahead* of everything this journal ever recorded
    ///   (a watermark taken from a different lineage, e.g. a knowledge base
    ///   that advanced and was then rolled back to an earlier clone): the
    ///   empty slice would falsely claim "nothing changed".
    pub fn events_since(&self, version: u64) -> Option<Vec<DeltaEvent>> {
        if version < self.pruned_through || version > self.last_seq {
            return None;
        }
        Some(
            self.events
                .iter()
                .filter(|e| e.seq > version)
                .cloned()
                .collect(),
        )
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Highest pruned sequence number (0 when nothing was pruned yet).
    pub fn pruned_through(&self) -> u64 {
        self.pruned_through
    }

    /// Highest sequence number ever recorded (0 when none).
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Process-unique identity of this journal's history. Sequence numbers
    /// alone cannot distinguish two histories that diverged from a common
    /// clone point — the watermark guard in [`events_since`](Self::events_since)
    /// only catches a rolled-back journal until it re-advances past the
    /// watermark. Cloning a [`KnowledgeBase`](crate::KnowledgeBase) (and
    /// hence its journal) therefore assigns the clone a fresh lineage;
    /// consumers cache this beside their watermark and treat a mismatch
    /// like a pruned window (full read).
    pub fn lineage(&self) -> u64 {
        self.lineage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::tuple;

    fn append(rel: &str, n: usize) -> DeltaChange {
        DeltaChange::RowsAppended {
            relation: rel.into(),
            rows: (0..n).map(|i| tuple![i as i64]).collect(),
        }
    }

    #[test]
    fn events_since_filters_by_seq() {
        let mut j = DeltaJournal::default();
        j.record(1, "relations", append("a", 1));
        j.record(2, "matches", DeltaChange::AspectChanged { detail: "add_match".into() });
        j.record(5, "relations", append("a", 2));
        let since2 = j.events_since(2).unwrap();
        assert_eq!(since2.len(), 1);
        assert_eq!(since2[0].seq, 5);
        assert_eq!(j.events_since(0).unwrap().len(), 3);
        assert!(j.events_since(5).unwrap().is_empty());
    }

    #[test]
    fn window_overflow_returns_none() {
        let mut j = DeltaJournal::with_capacity(2);
        j.record(1, "relations", append("a", 1));
        j.record(2, "relations", append("a", 1));
        j.record(3, "relations", append("a", 1));
        // seq 1 was pruned: a consumer at version 0 cannot be served
        assert_eq!(j.pruned_through(), 1);
        assert!(j.events_since(0).is_none());
        // a consumer at version 1 (or later) still can
        assert_eq!(j.events_since(1).unwrap().len(), 2);
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn monotonicity_classification() {
        assert!(append("r", 1).is_monotone());
        assert!(!DeltaChange::RelationAdded { relation: "r".into() }.is_monotone());
        assert!(!DeltaChange::RelationReplaced { relation: "r".into() }.is_monotone());
        assert!(!DeltaChange::RelationRemoved { relation: "r".into() }.is_monotone());
        assert!(!DeltaChange::AspectChanged { detail: "x".into() }.is_monotone());
        assert_eq!(append("r", 1).relation(), Some("r"));
        assert_eq!(
            DeltaChange::AspectChanged { detail: "x".into() }.relation(),
            None
        );
        // row-level but not monotone: the retraction shapes
        let removed = DeltaChange::RowsRemoved {
            relation: "r".into(),
            rows: vec![tuple![1]],
            positions: vec![0],
        };
        let replaced = DeltaChange::RowsReplaced {
            relation: "r".into(),
            removed: vec![tuple![1]],
            added: vec![tuple![2]],
            positions: vec![0],
            tail: true,
        };
        assert!(!removed.is_monotone() && removed.is_row_level());
        assert!(!replaced.is_monotone() && replaced.is_row_level());
        assert_eq!(removed.relation(), Some("r"));
        assert_eq!(replaced.relation(), Some("r"));
        assert!(append("r", 1).is_row_level());
        assert!(!DeltaChange::RelationReplaced { relation: "r".into() }.is_row_level());
    }

    #[test]
    fn pruned_retraction_event_returns_none_not_a_partial_slice() {
        // regression: a consumer whose watermark predates a *pruned*
        // retraction event must get None — a partial slice would silently
        // keep the retracted rows alive in its materialization
        let mut j = DeltaJournal::with_capacity(2);
        j.record(
            1,
            "relations",
            DeltaChange::RowsRemoved {
                relation: "a".into(),
                rows: vec![tuple![7]],
                positions: vec![0],
            },
        );
        j.record(2, "relations", append("a", 1));
        j.record(3, "relations", append("a", 1));
        // the retraction at seq 1 has been pruned: a consumer at version 0
        // would miss it entirely
        assert_eq!(j.pruned_through(), 1);
        assert!(j.events_since(0).is_none());
        // a consumer that already saw seq 1 is still served the appends
        let tail = j.events_since(1).unwrap();
        assert_eq!(tail.len(), 2);
        assert!(tail.iter().all(|e| e.change.is_monotone()));
    }

    #[test]
    fn window_arithmetic_at_the_exact_default_capacity_boundary() {
        // Audit pin for the 4096-event window (issue: suspected
        // `events_since`/`pruned_through` off-by-one at the boundary).
        // The audited invariants, pinned at window, window-1, window+1:
        //  - pruning starts with event `capacity + 1`, not `capacity`;
        //  - after pruning, `pruned_through` equals the dropped seq, and a
        //    consumer *at* that watermark is still served (it already saw
        //    the dropped event), while one strictly below it is not;
        //  - the retained window is exactly `capacity` events.
        let cap = DEFAULT_JOURNAL_CAPACITY as u64;
        let mut j = DeltaJournal::default();
        for s in 1..cap {
            j.record(s, "staged", DeltaChange::AspectChanged { detail: "staged".into() });
        }
        // window - 1 events: nothing pruned, watermark 0 fully served
        assert_eq!(j.pruned_through(), 0);
        assert_eq!(j.events_since(0).unwrap().len(), (cap - 1) as usize);

        // exactly `window` events: still nothing pruned
        j.record(cap, "staged", DeltaChange::AspectChanged { detail: "staged".into() });
        assert_eq!(j.pruned_through(), 0);
        assert_eq!(j.len(), cap as usize);
        assert_eq!(j.events_since(0).unwrap().len(), cap as usize);

        // window + 1: seq 1 is dropped; watermark 0 loses service, the
        // watermark equal to pruned_through keeps it
        j.record(cap + 1, "staged", DeltaChange::AspectChanged { detail: "staged".into() });
        assert_eq!(j.pruned_through(), 1);
        assert_eq!(j.len(), cap as usize);
        assert!(j.events_since(0).is_none());
        assert_eq!(j.events_since(1).unwrap().len(), cap as usize);
        assert_eq!(j.events_since(2).unwrap().len(), (cap - 1) as usize);
    }

    #[test]
    fn restore_rebuilds_watermarks_and_advances_the_lineage_counter() {
        let mut j = DeltaJournal::with_capacity(2);
        for s in 1..=3 {
            j.record(s, "relations", append("a", 1));
        }
        let events: Vec<DeltaEvent> = j.events_since(j.pruned_through()).unwrap();
        let restored = DeltaJournal::restore(
            j.lineage(),
            j.pruned_through(),
            j.last_seq(),
            2,
            events,
        );
        assert_eq!(restored.lineage(), j.lineage());
        assert_eq!(restored.pruned_through(), j.pruned_through());
        assert_eq!(restored.last_seq(), j.last_seq());
        assert_eq!(restored.capacity(), 2);
        for v in 0..=4 {
            assert_eq!(restored.events_since(v), j.events_since(v), "watermark {v}");
        }
        // new journals never reuse the restored identity
        assert!(DeltaJournal::default().lineage() > restored.lineage());
    }

    #[test]
    fn future_watermark_returns_none_not_an_empty_slice() {
        // regression: a watermark ahead of everything this journal recorded
        // (e.g. taken before a knowledge base was rolled back to an earlier
        // clone) must not be answered with Some(empty) — that would claim
        // "nothing changed" about a base the consumer has never seen
        let mut j = DeltaJournal::default();
        j.record(1, "relations", append("a", 1));
        j.record(2, "relations", append("a", 1));
        assert_eq!(j.last_seq(), 2);
        assert_eq!(j.events_since(2).unwrap().len(), 0);
        assert!(j.events_since(3).is_none());
        assert!(DeltaJournal::default().events_since(1).is_none());
    }
}
