//! The knowledge-base **change journal**: every mutation of the
//! [`KnowledgeBase`](crate::KnowledgeBase) is recorded as a
//! [`DeltaEvent`] with a monotone sequence number equal to the KB version
//! the mutation produced, so any consumer can ask *"what changed since I
//! last ran?"* and pay O(change) instead of re-reading the whole base.
//!
//! Events distinguish **monotone** changes (rows appended to an existing
//! relation — the shape the incremental Datalog path can evaluate as a
//! delta) from **non-monotone** ones (a relation replaced or removed, or a
//! metadata aspect rewritten), which force consumers back to a full run.
//!
//! ```
//! use vada_common::{tuple, Relation, Schema};
//! use vada_kb::{DeltaChange, KnowledgeBase};
//!
//! let mut kb = KnowledgeBase::new();
//! let mut src = Relation::empty(Schema::all_str("listings", &["price"]));
//! src.push(tuple!["100"]).unwrap();
//! kb.register_source(src.clone());
//! let seen = kb.version();
//!
//! // appending rows and re-registering is recorded as a monotone delta
//! src.push(tuple!["200"]).unwrap();
//! kb.register_source(src);
//! let events = kb.drain_deltas_since(seen).expect("within the window");
//! match &events[0].change {
//!     DeltaChange::RowsAppended { relation, rows } => {
//!         assert_eq!(relation, "listings");
//!         assert_eq!(rows.len(), 1);
//!     }
//!     other => panic!("expected an append, got {other:?}"),
//! }
//! ```
//!
//! The journal keeps a bounded window of recent events; a consumer whose
//! watermark has fallen out of the window gets `None` from
//! [`KnowledgeBase::drain_deltas_since`](crate::KnowledgeBase::drain_deltas_since)
//! and must fall back to a full run — the same contract as a non-monotone
//! event, so staleness can never produce wrong results.

use std::collections::VecDeque;

use vada_common::Tuple;

/// What one knowledge-base mutation did, at the granularity the
/// incremental evaluation path consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaChange {
    /// Rows were appended to an existing relation (schema unchanged, old
    /// rows a prefix of the new ones). Monotone: consumers may feed
    /// `rows` straight through a semi-naive delta pass.
    RowsAppended {
        /// Relation name.
        relation: String,
        /// The appended suffix, in insertion order.
        rows: Vec<Tuple>,
    },
    /// A brand-new relation was registered. Recorded without its rows —
    /// a consumer that cares about a relation it has never seen must read
    /// it from the catalog anyway, and copying whole relations into the
    /// journal would double ingestion memory.
    RelationAdded {
        /// Relation name.
        relation: String,
    },
    /// A relation was replaced with content that is not an extension of
    /// what was there (rows retracted or rewritten, or the schema
    /// changed). Non-monotone.
    RelationReplaced {
        /// Relation name.
        relation: String,
    },
    /// A relation was removed from the catalog. Non-monotone.
    RelationRemoved {
        /// Relation name.
        relation: String,
    },
    /// A metadata aspect changed (matches, mappings, CFDs, feedback,
    /// quality, contexts, selection, staged documents…). Non-monotone for
    /// relation consumers, but carries the aspect so consumers can ignore
    /// aspects they do not read.
    AspectChanged {
        /// Short human-readable detail (e.g. the mutating operation).
        detail: String,
    },
}

impl DeltaChange {
    /// Whether the change is a pure fact insertion.
    pub fn is_monotone(&self) -> bool {
        matches!(self, DeltaChange::RowsAppended { .. })
    }

    /// The relation this change touches, if it is relation-level.
    pub fn relation(&self) -> Option<&str> {
        match self {
            DeltaChange::RowsAppended { relation, .. }
            | DeltaChange::RelationAdded { relation }
            | DeltaChange::RelationReplaced { relation }
            | DeltaChange::RelationRemoved { relation } => Some(relation),
            DeltaChange::AspectChanged { .. } => None,
        }
    }
}

/// One journalled mutation.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaEvent {
    /// The knowledge-base version this mutation produced. Strictly
    /// monotone across the journal.
    pub seq: u64,
    /// The aspect the mutation bumped (see
    /// [`KnowledgeBase::aspect_version`](crate::KnowledgeBase::aspect_version)).
    pub aspect: &'static str,
    /// What changed.
    pub change: DeltaChange,
}

/// Default cap on retained events. Generous enough for many orchestration
/// steps between two runs of the same consumer, small enough that the
/// journal never dominates KB memory.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// A bounded, monotone-sequence journal of [`DeltaEvent`]s.
#[derive(Debug, Clone)]
pub struct DeltaJournal {
    events: VecDeque<DeltaEvent>,
    /// Highest sequence number that has been pruned out of the window
    /// (0 when nothing was pruned).
    pruned_through: u64,
    capacity: usize,
}

impl Default for DeltaJournal {
    fn default() -> Self {
        DeltaJournal {
            events: VecDeque::new(),
            pruned_through: 0,
            capacity: DEFAULT_JOURNAL_CAPACITY,
        }
    }
}

impl DeltaJournal {
    /// An empty journal with a custom retention window.
    pub fn with_capacity(capacity: usize) -> DeltaJournal {
        DeltaJournal { capacity: capacity.max(1), ..DeltaJournal::default() }
    }

    /// Record a mutation. `seq` must be strictly greater than any
    /// previously recorded sequence (the KB version counter guarantees
    /// this).
    pub fn record(&mut self, seq: u64, aspect: &'static str, change: DeltaChange) {
        debug_assert!(
            self.events.back().is_none_or(|e| e.seq < seq),
            "journal sequence numbers must be strictly monotone"
        );
        self.events.push_back(DeltaEvent { seq, aspect, change });
        while self.events.len() > self.capacity {
            let dropped = self.events.pop_front().expect("len > capacity >= 1");
            self.pruned_through = dropped.seq;
        }
    }

    /// The events with `seq > version`, oldest first — or `None` when the
    /// window no longer reaches back to `version` (some event with
    /// `seq > version` has been pruned), in which case the consumer must
    /// fall back to a full run.
    pub fn events_since(&self, version: u64) -> Option<Vec<DeltaEvent>> {
        if version < self.pruned_through {
            return None;
        }
        Some(
            self.events
                .iter()
                .filter(|e| e.seq > version)
                .cloned()
                .collect(),
        )
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Highest pruned sequence number (0 when nothing was pruned yet).
    pub fn pruned_through(&self) -> u64 {
        self.pruned_through
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::tuple;

    fn append(rel: &str, n: usize) -> DeltaChange {
        DeltaChange::RowsAppended {
            relation: rel.into(),
            rows: (0..n).map(|i| tuple![i as i64]).collect(),
        }
    }

    #[test]
    fn events_since_filters_by_seq() {
        let mut j = DeltaJournal::default();
        j.record(1, "relations", append("a", 1));
        j.record(2, "matches", DeltaChange::AspectChanged { detail: "add_match".into() });
        j.record(5, "relations", append("a", 2));
        let since2 = j.events_since(2).unwrap();
        assert_eq!(since2.len(), 1);
        assert_eq!(since2[0].seq, 5);
        assert_eq!(j.events_since(0).unwrap().len(), 3);
        assert!(j.events_since(5).unwrap().is_empty());
    }

    #[test]
    fn window_overflow_returns_none() {
        let mut j = DeltaJournal::with_capacity(2);
        j.record(1, "relations", append("a", 1));
        j.record(2, "relations", append("a", 1));
        j.record(3, "relations", append("a", 1));
        // seq 1 was pruned: a consumer at version 0 cannot be served
        assert_eq!(j.pruned_through(), 1);
        assert!(j.events_since(0).is_none());
        // a consumer at version 1 (or later) still can
        assert_eq!(j.events_since(1).unwrap().len(), 2);
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn monotonicity_classification() {
        assert!(append("r", 1).is_monotone());
        assert!(!DeltaChange::RelationAdded { relation: "r".into() }.is_monotone());
        assert!(!DeltaChange::RelationReplaced { relation: "r".into() }.is_monotone());
        assert!(!DeltaChange::RelationRemoved { relation: "r".into() }.is_monotone());
        assert!(!DeltaChange::AspectChanged { detail: "x".into() }.is_monotone());
        assert_eq!(append("r", 1).relation(), Some("r"));
        assert_eq!(
            DeltaChange::AspectChanged { detail: "x".into() }.relation(),
            None
        );
    }
}
