//! A lightweight provenance log: who wrote what into the knowledge base,
//! in what order. The demo's "browsable trace information" (paper §3) is
//! assembled from this log plus the orchestrator's execution trace.

/// One provenance entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvenanceEntry {
    /// Monotonic sequence number.
    pub seq: u64,
    /// The acting component (transducer name, `user`, `system`).
    pub actor: String,
    /// What happened, e.g. `add_match`, `register_source`.
    pub action: String,
    /// Free-form detail, e.g. the id of the record written.
    pub detail: String,
}

/// Append-only provenance log.
#[derive(Debug, Clone, Default)]
pub struct ProvenanceLog {
    entries: Vec<ProvenanceEntry>,
}

impl ProvenanceLog {
    /// Append an entry.
    pub fn log(&mut self, actor: impl Into<String>, action: impl Into<String>, detail: impl Into<String>) {
        let seq = self.entries.len() as u64;
        self.entries.push(ProvenanceEntry {
            seq,
            actor: actor.into(),
            action: action.into(),
            detail: detail.into(),
        });
    }

    /// All entries in order.
    pub fn entries(&self) -> &[ProvenanceEntry] {
        &self.entries
    }

    /// Entries by a given actor.
    pub fn by_actor<'a>(&'a self, actor: &'a str) -> impl Iterator<Item = &'a ProvenanceEntry> {
        self.entries.iter().filter(move |e| e.actor == actor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_is_ordered_and_filterable() {
        let mut log = ProvenanceLog::default();
        log.log("schema_matcher", "add_match", "m0");
        log.log("user", "feedback", "f0");
        log.log("schema_matcher", "add_match", "m1");
        assert_eq!(log.entries().len(), 3);
        assert_eq!(log.entries()[2].seq, 2);
        assert_eq!(log.by_actor("schema_matcher").count(), 2);
    }
}
