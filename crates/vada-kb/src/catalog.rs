//! The extensional-data catalog: named relations plus their role in the
//! wrangling process.

use std::collections::BTreeMap;

use vada_common::{Relation, Result, VadaError};

/// The role a relation plays in the wrangling process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelationKind {
    /// A data source (e.g. produced by web extraction).
    Source,
    /// A data-context relation (reference, master or example data).
    Context,
    /// A materialised wrangling result in the target schema.
    Result,
    /// Anything else (intermediate products).
    Intermediate,
}

impl RelationKind {
    /// Stable lower-case tag used in Datalog facts.
    pub fn tag(&self) -> &'static str {
        match self {
            RelationKind::Source => "source",
            RelationKind::Context => "context",
            RelationKind::Result => "result",
            RelationKind::Intermediate => "intermediate",
        }
    }
}

/// Named relations with roles. Iteration order is deterministic (sorted by
/// name) so orchestration traces are reproducible.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: BTreeMap<String, (RelationKind, Relation)>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register (or replace) a relation under its schema name.
    pub fn put(&mut self, kind: RelationKind, rel: Relation) {
        self.relations.insert(rel.name().to_string(), (kind, rel));
    }

    /// The relation named `name`, if present.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name).map(|(_, r)| r)
    }

    /// Mutable access to the relation named `name`.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name).map(|(_, r)| r)
    }

    /// The relation named `name`, or a schema error.
    pub fn require(&self, name: &str) -> Result<&Relation> {
        self.get(name)
            .ok_or_else(|| VadaError::Kb(format!("unknown relation `{name}`")))
    }

    /// The kind of the relation named `name`.
    pub fn kind(&self, name: &str) -> Option<RelationKind> {
        self.relations.get(name).map(|(k, _)| *k)
    }

    /// Names of relations of the given kind, sorted.
    pub fn names_of_kind(&self, kind: RelationKind) -> Vec<&str> {
        self.relations
            .iter()
            .filter(|(_, (k, _))| *k == kind)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// All `(name, kind)` pairs, sorted by name.
    pub fn entries(&self) -> impl Iterator<Item = (&str, RelationKind, &Relation)> {
        self.relations
            .iter()
            .map(|(n, (k, r))| (n.as_str(), *k, r))
    }

    /// Whether a relation with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Remove a relation; returns it if present.
    pub fn remove(&mut self, name: &str) -> Option<Relation> {
        self.relations.remove(name).map(|(_, r)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::{Schema, tuple};

    fn rel(name: &str) -> Relation {
        let mut r = Relation::empty(Schema::all_str(name, &["a"]));
        r.push(tuple!["x"]).unwrap();
        r
    }

    #[test]
    fn put_get_kind() {
        let mut c = Catalog::new();
        c.put(RelationKind::Source, rel("rightmove"));
        c.put(RelationKind::Context, rel("address"));
        assert!(c.contains("rightmove"));
        assert_eq!(c.kind("address"), Some(RelationKind::Context));
        assert_eq!(c.names_of_kind(RelationKind::Source), vec!["rightmove"]);
        assert!(c.require("missing").is_err());
    }

    #[test]
    fn replace_overwrites() {
        let mut c = Catalog::new();
        c.put(RelationKind::Source, rel("s"));
        let mut bigger = rel("s");
        bigger.push(tuple!["y"]).unwrap();
        c.put(RelationKind::Source, bigger);
        assert_eq!(c.get("s").unwrap().len(), 2);
    }

    #[test]
    fn entries_sorted_by_name() {
        let mut c = Catalog::new();
        c.put(RelationKind::Source, rel("zz"));
        c.put(RelationKind::Source, rel("aa"));
        let names: Vec<&str> = c.entries().map(|(n, _, _)| n).collect();
        assert_eq!(names, vec!["aa", "zz"]);
    }
}
