//! Typed metadata records exchanged between wrangling components.
//!
//! Each record type mirrors itself into Datalog facts (see
//! [`crate::store::KnowledgeBase`]) so that transducer input dependencies
//! can query them; the typed form is what component code consumes.

use vada_common::Value;

/// The kind of data-context relation (paper §2.2): reference data covers
/// the domain authoritatively, master data enumerates the entities the user
/// cares about, example data is an incomplete sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContextKind {
    /// Complete, authoritative domain data (e.g. the full postcode list).
    Reference,
    /// The complete list of entities of interest to the user.
    Master,
    /// A sample of entities with no completeness guarantee.
    Example,
}

impl ContextKind {
    /// Stable lower-case tag used in Datalog facts.
    pub fn tag(&self) -> &'static str {
        match self {
            ContextKind::Reference => "reference",
            ContextKind::Master => "master",
            ContextKind::Example => "example",
        }
    }

    /// Parse a tag produced by [`ContextKind::tag`].
    pub fn parse(s: &str) -> Option<ContextKind> {
        match s {
            "reference" => Some(ContextKind::Reference),
            "master" => Some(ContextKind::Master),
            "example" => Some(ContextKind::Example),
            _ => None,
        }
    }
}

/// An attribute correspondence produced by a matching transducer
/// (paper Table 1, Matching activity).
#[derive(Debug, Clone, PartialEq)]
pub struct MatchDef {
    /// Unique match id.
    pub id: String,
    /// Source relation name.
    pub src_rel: String,
    /// Source attribute name.
    pub src_attr: String,
    /// Target attribute name (target relation is implicit — one target
    /// schema per wrangle, as in the demo scenario).
    pub tgt_attr: String,
    /// Confidence score in `[0, 1]`.
    pub score: f64,
    /// Which matcher produced it (`schema` / `instance` / `combined`).
    pub matcher: String,
}

/// A candidate schema mapping: a Vadalog program that populates the target
/// relation from source relations (paper §2, Vadalog's mapping role).
#[derive(Debug, Clone, PartialEq)]
pub struct MappingDef {
    /// Unique mapping id.
    pub id: String,
    /// Target relation the mapping populates.
    pub target: String,
    /// The Vadalog rules (parseable by `vada-datalog`).
    pub rules: String,
    /// Source relations the mapping reads.
    pub sources: Vec<String>,
    /// Ids of the matches the mapping was generated from.
    pub matches_used: Vec<String>,
}

/// A conditional functional dependency `relation: (lhs, patterns) → (rhs,
/// pattern)` learned from data-context relations (paper §2.3, CFD Learning).
///
/// A `None` pattern is a wildcard (`_`), i.e. a variable-CFD position; a
/// `Some(v)` pattern is a constant-CFD position.
#[derive(Debug, Clone, PartialEq)]
pub struct CfdRule {
    /// Unique CFD id.
    pub id: String,
    /// Relation the dependency was learned on (a context relation); it is
    /// *checked* on any relation containing the named attributes.
    pub relation: String,
    /// Left-hand side: `(attribute, pattern)` pairs.
    pub lhs: Vec<(String, Option<Value>)>,
    /// Right-hand side attribute and pattern.
    pub rhs: (String, Option<Value>),
    /// Support: number of training tuples matching the LHS patterns.
    pub support: usize,
}

impl CfdRule {
    /// Human-readable rendering, e.g. `address: [postcode] -> city`.
    pub fn display(&self) -> String {
        let lhs: Vec<String> = self
            .lhs
            .iter()
            .map(|(a, p)| match p {
                Some(v) => format!("{a}={v}"),
                None => a.clone(),
            })
            .collect();
        let rhs = match &self.rhs.1 {
            Some(v) => format!("{}={v}", self.rhs.0),
            None => self.rhs.0.clone(),
        };
        format!("{}: [{}] -> {}", self.relation, lhs.join(", "), rhs)
    }
}

/// What a feedback annotation refers to (paper §2.3: "feedback can be at
/// the tuple level or the attribute level").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FeedbackTarget {
    /// A whole result tuple, identified by its row index in the result
    /// relation.
    Tuple {
        /// Result relation name.
        relation: String,
        /// Row index.
        row: usize,
    },
    /// One attribute value of a result tuple.
    Attribute {
        /// Result relation name.
        relation: String,
        /// Row index.
        row: usize,
        /// Attribute name.
        attr: String,
    },
}

/// The user's verdict on the annotated element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The value/tuple is correct.
    Correct,
    /// The value/tuple is incorrect.
    Incorrect,
}

impl Verdict {
    /// Stable tag used in Datalog facts.
    pub fn tag(&self) -> &'static str {
        match self {
            Verdict::Correct => "correct",
            Verdict::Incorrect => "incorrect",
        }
    }
}

/// A feedback annotation asserted into the knowledge base.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackRecord {
    /// Unique feedback id.
    pub id: String,
    /// What is annotated.
    pub target: FeedbackTarget,
    /// The verdict.
    pub verdict: Verdict,
}

/// A durable, value-level consequence of feedback: a veto on a cell value
/// (or a whole row) identified by key-attribute values rather than a row
/// index, so it survives result re-materialisation when mappings are
/// re-selected or re-executed.
#[derive(Debug, Clone, PartialEq)]
pub struct CellVeto {
    /// Key attribute/value pairs identifying the logical row.
    pub key: Vec<(String, Value)>,
    /// The vetoed attribute; `None` vetoes the whole row.
    pub attr: Option<String>,
    /// The specific vetoed value; `None` vetoes any value of the attribute.
    pub value: Option<Value>,
}

/// A quality metric value attached to an entity (source, mapping, result
/// attribute...).
#[derive(Debug, Clone, PartialEq)]
pub struct QualityFact {
    /// Entity kind: `source` / `mapping` / `result` / `attribute`.
    pub entity_kind: String,
    /// Entity identifier (relation name, mapping id, `rel.attr`, ...).
    pub entity: String,
    /// Metric name: `completeness` / `accuracy` / `consistency` / ...
    pub metric: String,
    /// Criterion qualifier, e.g. the attribute a completeness refers to.
    pub criterion: String,
    /// The value in `[0, 1]`.
    pub value: f64,
}

/// One pairwise-comparison statement of the user context (paper Fig. 2(d)),
/// e.g. *"completeness of crimerank is very strongly more important than
/// accuracy of type"*. Criteria are `metric(scope)` strings; the strength
/// vocabulary maps to the Saaty 1–9 scale in `vada-context`.
#[derive(Debug, Clone, PartialEq)]
pub struct PairwiseStatement {
    /// The more important criterion, e.g. `completeness(crimerank)`.
    pub more_important: String,
    /// The less important criterion, e.g. `accuracy(type)`.
    pub less_important: String,
    /// Strength vocabulary: `equally`, `moderately`, `strongly`,
    /// `very strongly`, `extremely`.
    pub strength: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_kind_round_trip() {
        for k in [ContextKind::Reference, ContextKind::Master, ContextKind::Example] {
            assert_eq!(ContextKind::parse(k.tag()), Some(k));
        }
        assert_eq!(ContextKind::parse("nope"), None);
    }

    #[test]
    fn cfd_display() {
        let cfd = CfdRule {
            id: "c0".into(),
            relation: "address".into(),
            lhs: vec![("postcode".into(), None), ("kind".into(), Some(Value::str("flat")))],
            rhs: ("city".into(), None),
            support: 10,
        };
        assert_eq!(cfd.display(), "address: [postcode, kind=flat] -> city");
    }

    #[test]
    fn verdict_tags() {
        assert_eq!(Verdict::Correct.tag(), "correct");
        assert_eq!(Verdict::Incorrect.tag(), "incorrect");
    }
}
