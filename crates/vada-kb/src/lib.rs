//! # vada-kb
//!
//! The VADA **Knowledge Base** (paper §2, pillar 2): the single repository
//! through which every wrangling component communicates.
//!
//! It holds three kinds of state:
//!
//! * **Extensional data** — source relations extracted from the web, data
//!   context relations (reference/master/example data), and materialised
//!   results, kept as [`vada_common::Relation`]s in the [`catalog`].
//! * **Metadata records** — schema matches, candidate mappings, learned
//!   CFDs, quality metrics, feedback annotations and user-context
//!   statements, kept as typed records (module [`meta`]).
//! * **A Datalog fact view** — every registration and metadata record is
//!   mirrored as facts in a [`vada_datalog::Database`] so that transducer
//!   *input dependencies* (Datalog queries, paper §2.3 and Table 1) can be
//!   evaluated directly against the knowledge base.
//!
//! Mutations bump a version counter per predicate; the orchestrator uses
//! these versions to decide which transducers have new inputs (paper §2.4).

pub mod catalog;
pub mod delta;
pub mod meta;
pub mod provenance;
pub mod shard;
pub mod storage;
pub mod store;

pub use catalog::{Catalog, RelationKind};
pub use delta::{DeltaChange, DeltaEvent, DeltaJournal};
pub use shard::{ShardedRelation, ShardedStore, SyncMode, SyncReport};
pub use storage::{Snapshot, StoredRelation, WalRecord};
pub use meta::{
    CellVeto,
    CfdRule, ContextKind, FeedbackRecord, FeedbackTarget, MappingDef, MatchDef, PairwiseStatement,
    QualityFact, Verdict,
};
pub use store::KnowledgeBase;
