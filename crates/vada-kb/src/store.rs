//! The [`KnowledgeBase`] facade: typed state plus the Datalog fact view.

use std::collections::BTreeMap;
use std::path::Path;

use parking_lot::Mutex;
use vada_common::obs::{key as obs_key, Obs};
use vada_common::{QueryCaching, Relation, Result, Schema, Tuple, VadaError, Value};
use vada_datalog::ast::Program;
use vada_datalog::cache::IndexCache;
use vada_datalog::engine::{Database, Engine};
use vada_datalog::parser::parse_query;

use crate::catalog::{Catalog, RelationKind};
use crate::delta::{DeltaChange, DeltaEvent, DeltaJournal};
use crate::storage::{self, Snapshot, StoredRelation, WalRecord};
use crate::meta::{
    CellVeto, CfdRule, ContextKind, FeedbackRecord, FeedbackTarget, MappingDef, MatchDef,
    PairwiseStatement, QualityFact, Verdict,
};
use crate::provenance::ProvenanceLog;

/// The VADA knowledge base. See the crate docs for the model.
#[derive(Debug)]
pub struct KnowledgeBase {
    catalog: Catalog,
    target_schema: Option<Schema>,
    matches: BTreeMap<String, MatchDef>,
    mappings: BTreeMap<String, MappingDef>,
    cfds: BTreeMap<String, CfdRule>,
    feedback: Vec<FeedbackRecord>,
    vetoes: Vec<CellVeto>,
    quality: Vec<QualityFact>,
    user_context: Vec<PairwiseStatement>,
    context_kinds: BTreeMap<String, ContextKind>,
    /// `(context relation, context attribute, target attribute)`
    context_bindings: Vec<(String, String, String)>,
    selected_mapping: Option<String>,
    /// Raw staged documents awaiting extraction: name → CSV text.
    staged: BTreeMap<String, String>,
    version: u64,
    aspect_versions: BTreeMap<&'static str, u64>,
    journal: DeltaJournal,
    provenance: ProvenanceLog,
    /// cached dependency view, patched from journal deltas (see
    /// [`KnowledgeBase::query`]).
    dep_cache: Mutex<DepCache>,
    /// Whether [`KnowledgeBase::query`] answers through the persistent
    /// [`IndexCache`] on the dependency view (`VADA_QUERY_CACHE`; see
    /// [`KnowledgeBase::set_query_caching`]).
    query_caching: QueryCaching,
    /// write-ahead log + snapshot directory, when durable (see
    /// [`KnowledgeBase::open`] / [`KnowledgeBase::persist_to`]).
    durable: Option<storage::DurableStore>,
    /// sticky first storage failure; set when a WAL append or compaction
    /// fails, at which point the log is detached (see
    /// [`KnowledgeBase::storage_health`]).
    storage_error: Option<VadaError>,
    /// The counter registry this base records into: dep-cache maintenance,
    /// query counts, journal events, WAL traffic. Starts as a local
    /// always-on collector so the stats shims ([`dep_cache_stats`]
    /// (KnowledgeBase::dep_cache_stats)) work stand-alone; the `Wrangler`
    /// rebases it onto the pipeline-wide registry via
    /// [`KnowledgeBase::set_obs`].
    obs: Obs,
}

/// The dependency fact view cache: the database as of `version`. The
/// rebuild/patch maintenance counters live on the [`Obs`] registry
/// (`kb.depcache.*`).
#[derive(Debug, Default)]
struct DepCache {
    /// `(kb version the view reflects, the view)`.
    entry: Option<(u64, Database)>,
    /// Persistent hash indexes over the view, probed by
    /// [`KnowledgeBase::query`] under [`QueryCaching::Persistent`]. Kept
    /// across journal-driven *patches* — the view object survives them,
    /// and `clear_predicate` bumps the patched predicates' reorder
    /// epochs, so a surviving index is extended or rebuilt exactly where
    /// needed — but dropped on a from-scratch *rebuild*, whose fresh
    /// [`Database`] restarts every epoch at zero and could otherwise
    /// alias stale row ids.
    index: IndexCache,
}

/// Every predicate of the dependency fact view, in the canonical build
/// order (see [`KnowledgeBase::build_dependency_db`]).
const ALL_DEPENDENCY_PREDICATES: &[&str] = &[
    "relation",
    "attr",
    "has_instances",
    "result_available",
    "target_relation",
    "target_attr",
    "match",
    "mapping",
    "selected_mapping",
    "cfd",
    "cfd_available",
    "quality",
    "feedback",
    "user_context",
    "data_context",
    "staged_document",
    "context_binding",
];

/// Which dependency-view predicates each journal aspect owns — the patch
/// granularity of the incremental view maintenance. `clear_mappings` also
/// resets the selection while bumping only `mappings`, so that aspect owns
/// `selected_mapping` too.
const ASPECT_PREDICATES: &[(&str, &[&str])] = &[
    ("relations", &["relation", "attr", "has_instances", "result_available"]),
    ("result", &["relation", "attr", "has_instances", "result_available"]),
    ("intermediates", &["relation", "attr", "has_instances", "result_available"]),
    ("target", &["target_relation", "target_attr"]),
    ("matches", &["match"]),
    ("mappings", &["mapping", "selected_mapping"]),
    ("selection", &["selected_mapping"]),
    ("cfds", &["cfd", "cfd_available"]),
    ("quality", &["quality"]),
    ("feedback", &["feedback"]),
    ("user_context", &["user_context"]),
    ("data_context", &["data_context", "context_binding"]),
    ("staged", &["staged_document"]),
];

/// The predicates to refresh for a set of changed aspects, deduplicated,
/// in canonical build order. An aspect missing from the table (a future
/// mutation site this map was not taught about) conservatively refreshes
/// everything rather than silently serving stale facts.
fn predicates_of_aspects(aspects: &std::collections::BTreeSet<&str>) -> Vec<&'static str> {
    let mut preds: std::collections::BTreeSet<&'static str> = Default::default();
    for aspect in aspects {
        match ASPECT_PREDICATES.iter().find(|(a, _)| a == aspect) {
            Some((_, owned)) => preds.extend(owned.iter().copied()),
            None => return ALL_DEPENDENCY_PREDICATES.to_vec(),
        }
    }
    ALL_DEPENDENCY_PREDICATES
        .iter()
        .copied()
        .filter(|p| preds.contains(p))
        .collect()
}

impl Clone for KnowledgeBase {
    fn clone(&self) -> Self {
        KnowledgeBase {
            catalog: self.catalog.clone(),
            target_schema: self.target_schema.clone(),
            matches: self.matches.clone(),
            mappings: self.mappings.clone(),
            cfds: self.cfds.clone(),
            feedback: self.feedback.clone(),
            vetoes: self.vetoes.clone(),
            quality: self.quality.clone(),
            user_context: self.user_context.clone(),
            context_kinds: self.context_kinds.clone(),
            context_bindings: self.context_bindings.clone(),
            selected_mapping: self.selected_mapping.clone(),
            staged: self.staged.clone(),
            version: self.version,
            aspect_versions: self.aspect_versions.clone(),
            journal: self.journal.clone(),
            provenance: self.provenance.clone(),
            dep_cache: Mutex::new(DepCache::default()),
            query_caching: self.query_caching,
            // a clone is a new lineage (see the journal's Clone impl), and
            // a WAL directory has exactly one writer: the clone is
            // in-memory only until persist_to is called on it
            durable: None,
            storage_error: None,
            // a clone is a new lineage for telemetry too: its events are
            // bookkeeping copies, not pipeline events, so it records into
            // a fresh local registry rather than the shared one
            obs: Obs::enabled(),
        }
    }
}

impl Default for KnowledgeBase {
    fn default() -> KnowledgeBase {
        KnowledgeBase {
            catalog: Default::default(),
            target_schema: None,
            matches: Default::default(),
            mappings: Default::default(),
            cfds: Default::default(),
            feedback: Vec::new(),
            vetoes: Vec::new(),
            quality: Vec::new(),
            user_context: Vec::new(),
            context_kinds: Default::default(),
            context_bindings: Vec::new(),
            selected_mapping: None,
            staged: Default::default(),
            version: 0,
            aspect_versions: Default::default(),
            journal: Default::default(),
            provenance: Default::default(),
            dep_cache: Mutex::new(DepCache::default()),
            query_caching: QueryCaching::from_env(),
            durable: None,
            storage_error: None,
            // always-on local registry: the stats accessors must work on a
            // stand-alone base; counter adds on the (cold) mutation/query
            // paths are a map increment under an uncontended lock
            obs: Obs::enabled(),
        }
    }
}

impl KnowledgeBase {
    /// An empty knowledge base.
    pub fn new() -> KnowledgeBase {
        KnowledgeBase::default()
    }

    /// Rebase this knowledge base onto a shared observability registry
    /// (the pipeline-wide collector): counters recorded so far are folded
    /// into the new registry so nothing is lost, then all further events
    /// record there.
    pub fn set_obs(&mut self, obs: Obs) {
        if obs.is_enabled() {
            obs.merge_counters_from(&self.obs);
            self.obs = obs;
        }
    }

    /// The observability registry this base records into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Choose whether [`KnowledgeBase::query`] keeps persistent hash
    /// indexes over the dependency view across calls (the
    /// `VADA_QUERY_CACHE` knob; the environment sets the default).
    /// Answers are byte-identical either way — caching only skips
    /// re-deriving index structure the view already proved.
    pub fn set_query_caching(&mut self, caching: QueryCaching) {
        if self.query_caching != caching {
            // flipping the knob must not let a warm cache linger where the
            // scan path would then mutate the view underneath it unseen
            self.dep_cache.lock().index.reset();
        }
        self.query_caching = caching;
    }

    /// The query-caching mode in effect (see
    /// [`KnowledgeBase::set_query_caching`]).
    pub fn query_caching(&self) -> QueryCaching {
        self.query_caching
    }

    /// An empty knowledge base with a custom journal retention window
    /// (tests and memory-tuned deployments; the default window is
    /// [`crate::delta::DEFAULT_JOURNAL_CAPACITY`]). The window also sets
    /// the WAL compaction cadence — see [`KnowledgeBase::persist_to`].
    pub fn with_journal_capacity(capacity: usize) -> KnowledgeBase {
        KnowledgeBase {
            journal: DeltaJournal::with_capacity(capacity),
            ..KnowledgeBase::default()
        }
    }

    fn touch(&mut self, aspect: &'static str) {
        self.touch_with(aspect, DeltaChange::AspectChanged { detail: aspect.to_string() });
    }

    fn touch_with(&mut self, aspect: &'static str, change: DeltaChange) {
        self.touch_full(aspect, change, None);
    }

    /// The single version-bump path: checkpoint if the journal window is
    /// about to prune, make the event durable, then record it. Relation
    /// mutators call this **before** touching the catalog (write-ahead:
    /// the event is fsync'd before it is applied), passing the full
    /// relation as `payload` when the change does not carry its rows.
    /// Metadata mutators apply first — their `AspectChanged` events carry
    /// no state, so replay has nothing to misorder.
    fn touch_full(
        &mut self,
        aspect: &'static str,
        change: DeltaChange,
        payload: Option<(RelationKind, &Relation)>,
    ) {
        if self.durable.is_some() && self.journal.len() >= self.journal.capacity() {
            // the incoming event would prune the in-memory window: compact
            // now, so the log never holds events the journal has forgotten
            // (recovery replays log records on top of the snapshot, and
            // both must describe the same window)
            let span = self.obs.span("wal/compact");
            span.attr("events", self.journal.len());
            let snap = self.snapshot_state();
            match self.durable.as_mut().expect("checked above").compact(&snap) {
                Ok(()) => self.obs.incr(obs_key::WAL_COMPACTIONS),
                Err(e) => {
                    span.attr("detached", "true");
                    self.obs.incr(obs_key::STORAGE_ERRORS);
                    self.storage_error.get_or_insert(e);
                    self.durable = None;
                }
            }
        }
        self.version += 1;
        self.aspect_versions.insert(aspect, self.version);
        if self.durable.is_some() {
            let span = self.obs.span("wal/append");
            span.attr("aspect", aspect);
            let record = WalRecord {
                event: DeltaEvent { seq: self.version, aspect, change: change.clone() },
                payload: payload.map(|(kind, rel)| StoredRelation::capture(kind, rel)),
            };
            match self.durable.as_mut().expect("checked above").append(&record) {
                Ok(bytes) => {
                    // one fsync per append under the current WAL contract
                    span.attr("bytes", bytes);
                    self.obs.incr(obs_key::WAL_APPENDS);
                    self.obs.incr(obs_key::WAL_FSYNCS);
                    self.obs.add(obs_key::WAL_BYTES, bytes);
                }
                Err(e) => {
                    // an un-fsyncable log must not silently pretend to be
                    // durable: detach it and hold the error for
                    // storage_health; in-memory operation continues
                    span.attr("detached", "true");
                    self.obs.incr(obs_key::STORAGE_ERRORS);
                    self.storage_error.get_or_insert(e);
                    self.durable = None;
                }
            }
        }
        self.journal.record(self.version, aspect, change);
        // structural: one journal event per version bump, at every knob
        self.obs.incr(obs_key::KB_EVENTS);
    }

    /// The full persistent image of the current extensional state — what a
    /// snapshot stores and what recovery restores.
    fn snapshot_state(&self) -> Snapshot {
        Snapshot {
            version: self.version,
            lineage: self.journal.lineage(),
            pruned_through: self.journal.pruned_through(),
            capacity: self.journal.capacity() as u64,
            aspect_versions: self
                .aspect_versions
                .iter()
                .map(|(a, v)| (a.to_string(), *v))
                .collect(),
            events: self
                .journal
                .events_since(self.journal.pruned_through())
                .expect("a journal can always serve its own pruned-through watermark"),
            relations: self
                .catalog
                .entries()
                .map(|(_, kind, rel)| StoredRelation::capture(kind, rel))
                .collect(),
        }
    }

    // ------------------------------------------------------------------
    // durability
    // ------------------------------------------------------------------

    /// Reopen a durable knowledge base from `dir`: load the snapshot (if
    /// any), replay the surviving WAL records on top, and keep appending
    /// to the same directory. The recovered catalog, journal window,
    /// watermarks, and lineage are byte-identical to the in-memory state
    /// as of the last fsync'd event, so consumers that cached a
    /// `(lineage, version)` watermark before the crash resume O(change).
    ///
    /// Derived metadata (matches, mappings, CFDs, feedback, contexts,
    /// staged documents…) is **not** persisted — it is re-derived by
    /// wrangling over the recovered catalog. Their `AspectChanged` events
    /// are still journalled and replayed, so aspect versions and the
    /// window are exact.
    ///
    /// A WAL directory has a single writer: do not open a directory that
    /// another live `KnowledgeBase` is still appending to.
    pub fn open(dir: impl AsRef<Path>) -> Result<KnowledgeBase> {
        let (durable, snap, records) = storage::DurableStore::open(dir.as_ref())?;
        let mut kb = KnowledgeBase::new();
        if let Some(snap) = snap {
            kb.load_snapshot(snap)?;
        }
        for record in records {
            // records at or below the snapshot version are the overlap an
            // interrupted compaction leaves (snapshot renamed, log not yet
            // reset): already part of the snapshot, skip
            if record.event.seq <= kb.version {
                continue;
            }
            kb.apply_replay(record)?;
        }
        kb.durable = Some(durable);
        Ok(kb)
    }

    /// Make this knowledge base durable under `dir` (created if needed):
    /// write the current state as the base snapshot, start a fresh WAL,
    /// and append every subsequent mutation to it. The journal's bounded
    /// window doubles as the compaction cadence: whenever the next event
    /// would prune the in-memory window, the log is compacted into a new
    /// snapshot first.
    pub fn persist_to(&mut self, dir: impl AsRef<Path>) -> Result<()> {
        let snap = self.snapshot_state();
        self.durable = Some(storage::DurableStore::create(dir.as_ref(), &snap)?);
        self.storage_error = None;
        Ok(())
    }

    /// Detach the write-ahead log (the files stay on disk; mutations stop
    /// being persisted).
    pub fn disable_durability(&mut self) {
        self.durable = None;
        self.storage_error = None;
    }

    /// The durable directory, when a WAL is attached.
    pub fn durable_dir(&self) -> Option<&Path> {
        self.durable.as_ref().map(|d| d.dir())
    }

    /// `Ok` while durability is healthy (or off). After a WAL append or
    /// compaction failure the log is detached — acknowledging writes a
    /// crash would lose is worse than degrading to in-memory — and this
    /// returns the sticky first error until durability is re-established
    /// via [`KnowledgeBase::persist_to`].
    pub fn storage_health(&self) -> Result<()> {
        match &self.storage_error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    fn load_snapshot(&mut self, snap: Snapshot) -> Result<()> {
        for stored in snap.relations {
            let (kind, rel) = stored.into_relation()?;
            self.catalog.put(kind, rel);
        }
        self.version = snap.version;
        self.aspect_versions = snap
            .aspect_versions
            .iter()
            .map(|(a, v)| Ok((storage::codec::static_aspect(a)?, *v)))
            .collect::<Result<_>>()?;
        self.journal = DeltaJournal::restore(
            snap.lineage,
            snap.pruned_through,
            snap.version,
            snap.capacity as usize,
            snap.events,
        );
        Ok(())
    }

    /// Re-apply one recovered WAL record: catalog effect, version,
    /// aspect version, journal entry — the same order the original
    /// mutation produced them.
    fn apply_replay(&mut self, record: WalRecord) -> Result<()> {
        let WalRecord { event, payload } = record;
        let DeltaEvent { seq, aspect, change } = event;
        let missing = |relation: &str| {
            VadaError::Storage(format!(
                "replay references unknown relation `{relation}` (log/snapshot mismatch)"
            ))
        };
        match (&change, payload) {
            (DeltaChange::RowsAppended { relation, rows }, _) => {
                let rel = self.catalog.get_mut(relation).ok_or_else(|| missing(relation))?;
                rel.extend(rows.iter().cloned())?;
            }
            (DeltaChange::RowsRemoved { relation, positions, .. }, _) => {
                let rel = self.catalog.get_mut(relation).ok_or_else(|| missing(relation))?;
                rel.remove_rows(positions)?;
            }
            (DeltaChange::RowsReplaced { relation, added, positions, .. }, _) => {
                let rel = self.catalog.get_mut(relation).ok_or_else(|| missing(relation))?;
                for (pos, tuple) in positions.iter().zip(added) {
                    rel.replace(*pos, tuple.clone())?;
                }
            }
            (
                DeltaChange::RelationAdded { .. } | DeltaChange::RelationReplaced { .. },
                Some(stored),
            ) => {
                let (kind, rel) = stored.into_relation()?;
                self.catalog.put(kind, rel);
            }
            (
                DeltaChange::RelationAdded { relation }
                | DeltaChange::RelationReplaced { relation },
                None,
            ) => {
                return Err(VadaError::Storage(format!(
                    "replay record {seq} for `{relation}` is missing its relation payload"
                )));
            }
            (DeltaChange::RelationRemoved { relation }, _) => {
                self.catalog.remove(relation);
            }
            // metadata state is not persisted; the event still advances
            // the version and the journal window below
            (DeltaChange::AspectChanged { .. }, _) => {}
        }
        self.version = seq;
        self.aspect_versions.insert(aspect, seq);
        self.journal.record(seq, aspect, change);
        Ok(())
    }

    /// Classify what registering `rel` under `kind` does to the catalog:
    /// a pure row append (monotone) or a replacement (non-monotone).
    fn relation_change(&self, kind: RelationKind, rel: &Relation) -> DeltaChange {
        let name = rel.name().to_string();
        match self.catalog.get(&name) {
            None => DeltaChange::RelationAdded { relation: name },
            Some(old)
                if self.catalog.kind(&name) == Some(kind)
                    && old.schema() == rel.schema()
                    && old.len() <= rel.len()
                    && old.tuples() == &rel.tuples()[..old.len()] =>
            {
                DeltaChange::RowsAppended {
                    relation: name,
                    rows: rel.tuples()[old.len()..].to_vec(),
                }
            }
            Some(_) => DeltaChange::RelationReplaced { relation: name },
        }
    }

    /// Global version counter; bumps on every mutation.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The change-journal entries recorded after `version`, oldest first —
    /// the consumer side of the delta journal. Returns `None` when the
    /// journal's bounded window no longer reaches back that far, in which
    /// case the caller must treat everything as changed (full run).
    ///
    /// Reading does not remove events (the window is pruned by capacity,
    /// not by consumption), so any number of consumers can each keep their
    /// own watermark — typically the [`KnowledgeBase::version`] observed at
    /// the end of their previous run.
    pub fn drain_deltas_since(&self, version: u64) -> Option<Vec<DeltaEvent>> {
        self.journal.events_since(version)
    }

    /// The change journal itself (read access).
    pub fn journal(&self) -> &DeltaJournal {
        &self.journal
    }

    /// The version at which `aspect` last changed (0 if never). Aspects:
    /// `relations`, `target`, `matches`, `mappings`, `cfds`, `feedback`,
    /// `quality`, `user_context`, `data_context`, `selection`, `result`.
    pub fn aspect_version(&self, aspect: &str) -> u64 {
        self.aspect_versions.get(aspect).copied().unwrap_or(0)
    }

    /// The provenance log.
    pub fn provenance(&self) -> &ProvenanceLog {
        &self.provenance
    }

    /// Append a provenance entry.
    pub fn log(&mut self, actor: &str, action: &str, detail: &str) {
        self.provenance.log(actor, action, detail);
    }

    // ------------------------------------------------------------------
    // extensional data
    // ------------------------------------------------------------------

    /// Register a source relation (web-extraction output). Re-registering
    /// a grown copy of an existing source (same schema, old rows a prefix)
    /// is journalled as a monotone row append, which the incremental
    /// evaluation path can consume as a delta.
    pub fn register_source(&mut self, rel: Relation) {
        self.register_relation(RelationKind::Source, "relations", rel);
    }

    /// The shared registration path: classify the change, journal it
    /// (write-ahead), then apply it to the catalog. Row-level changes
    /// carry their rows in the event; relation-level ones ship the full
    /// relation as the WAL payload.
    fn register_relation(&mut self, kind: RelationKind, aspect: &'static str, rel: Relation) {
        let change = self.relation_change(kind, &rel);
        let payload = if change.is_row_level() { None } else { Some((kind, &rel)) };
        self.touch_full(aspect, change, payload);
        self.catalog.put(kind, rel);
    }

    /// Remove the rows at the given (pre-removal) indices from a catalog
    /// relation, preserving the relative order of the remaining rows, and
    /// journal a row-level [`DeltaChange::RowsRemoved`] with the removed
    /// tuples — the shape the retraction-capable incremental path consumes
    /// without re-reading the relation. Returns the removed tuples in
    /// ascending row order. Removing zero rows is a no-op (no version bump).
    pub fn remove_rows(&mut self, name: &str, rows: &[usize]) -> Result<Vec<Tuple>> {
        let kind = self
            .catalog
            .kind(name)
            .ok_or_else(|| VadaError::Kb(format!("unknown relation `{name}`")))?;
        let rel = self.catalog.get(name).expect("kind implies presence");
        // validate and collect up front: the event must hit the log before
        // the catalog changes (write-ahead), so the apply below cannot be
        // allowed to fail
        let mut positions: Vec<usize> = rows.to_vec();
        positions.sort_unstable();
        positions.dedup();
        if let Some(&last) = positions.last() {
            if last >= rel.len() {
                return Err(VadaError::Schema(format!(
                    "row {last} out of range for `{}` ({} rows)",
                    name,
                    rel.len()
                )));
            }
        }
        if positions.is_empty() {
            return Ok(Vec::new());
        }
        let removed: Vec<Tuple> = positions.iter().map(|&r| rel.tuples()[r].clone()).collect();
        self.touch_full(
            Self::aspect_of_kind(kind),
            DeltaChange::RowsRemoved {
                relation: name.to_string(),
                rows: removed.clone(),
                positions: positions.clone(),
            },
            None,
        );
        self.catalog
            .get_mut(name)
            .expect("kind implies presence")
            .remove_rows(&positions)
            .expect("validated above");
        Ok(removed)
    }

    /// Rewrite rows of a source or context relation in place (`edits` pairs
    /// a pre-existing row index with its new tuple), journalling a
    /// row-level [`DeltaChange::RowsReplaced`] carrying both the previous
    /// and the new contents. The remaining rows keep their positions; the
    /// event's `tail` flag records whether every rewritten row sat in the
    /// trailing positions (the only case a retract-then-append consumer can
    /// replay without changing the scan order).
    pub fn update_source(&mut self, name: &str, edits: &[(usize, Tuple)]) -> Result<()> {
        let kind = self
            .catalog
            .kind(name)
            .ok_or_else(|| VadaError::Kb(format!("unknown relation `{name}`")))?;
        if edits.is_empty() {
            return Ok(());
        }
        let mut sorted: Vec<(usize, Tuple)> = edits.to_vec();
        sorted.sort_by_key(|(row, _)| *row);
        for pair in sorted.windows(2) {
            if pair[0].0 == pair[1].0 {
                return Err(VadaError::Kb(format!(
                    "duplicate row {} in update of `{name}`",
                    pair[0].0
                )));
            }
        }
        let rel = self.catalog.get(name).expect("kind implies presence");
        let len = rel.len();
        // validate everything up front: the event must be durable before
        // the first edit lands (write-ahead), and a mid-batch failure must
        // not leave half the edits applied with no journal event
        if let Some((row, _)) = sorted.iter().find(|(row, _)| *row >= len) {
            return Err(VadaError::Kb(format!("row {row} out of range for `{name}`")));
        }
        if let Some((_, t)) = sorted.iter().find(|(_, t)| t.arity() != rel.schema().arity()) {
            return Err(VadaError::Kb(format!(
                "arity {} does not match `{name}` in update",
                t.arity()
            )));
        }
        let removed: Vec<Tuple> = sorted.iter().map(|(row, _)| rel.tuples()[*row].clone()).collect();
        let tail = sorted
            .iter()
            .enumerate()
            .all(|(i, (row, _))| *row == len - sorted.len() + i);
        let positions: Vec<usize> = sorted.iter().map(|(row, _)| *row).collect();
        let added: Vec<Tuple> = sorted.iter().map(|(_, t)| t.clone()).collect();
        self.touch_full(
            Self::aspect_of_kind(kind),
            DeltaChange::RowsReplaced {
                relation: name.to_string(),
                removed,
                added,
                positions,
                tail,
            },
            None,
        );
        let rel = self.catalog.get_mut(name).expect("kind implies presence");
        for (row, tuple) in sorted {
            rel.replace(row, tuple).expect("range and arity validated above");
        }
        Ok(())
    }

    /// The journal aspect a row-level mutation of a relation of this kind
    /// bumps — the same aspect its registration path uses.
    fn aspect_of_kind(kind: RelationKind) -> &'static str {
        match kind {
            RelationKind::Source | RelationKind::Context => "relations",
            RelationKind::Result => "result",
            RelationKind::Intermediate => "intermediates",
        }
    }

    /// Register the target schema the user wants populated (paper Fig 2(b)).
    pub fn register_target_schema(&mut self, schema: Schema) {
        self.target_schema = Some(schema);
        self.touch("target");
    }

    /// The registered target schema.
    pub fn target_schema(&self) -> Option<&Schema> {
        self.target_schema.as_ref()
    }

    /// Associate a data-context relation with the target schema
    /// (paper §2.2): `bindings` maps context attributes to target
    /// attributes.
    pub fn register_data_context(
        &mut self,
        rel: Relation,
        kind: ContextKind,
        bindings: &[(&str, &str)],
    ) -> Result<()> {
        for (ctx_attr, _) in bindings {
            rel.schema().require(ctx_attr)?;
        }
        let name = rel.name().to_string();
        self.context_kinds.insert(name.clone(), kind);
        for (ctx_attr, tgt_attr) in bindings {
            self.context_bindings
                .push((name.clone(), ctx_attr.to_string(), tgt_attr.to_string()));
        }
        self.touch("data_context");
        self.register_relation(RelationKind::Context, "relations", rel);
        Ok(())
    }

    /// Stage a raw document (CSV text) for the extraction transducer to
    /// ingest; mirrors web-extraction output landing in the knowledge base
    /// before it becomes a source relation.
    pub fn stage_document(&mut self, name: impl Into<String>, text: impl Into<String>) {
        self.staged.insert(name.into(), text.into());
        self.touch("staged");
    }

    /// Staged documents, sorted by name.
    pub fn staged_documents(&self) -> impl Iterator<Item = (&str, &str)> {
        self.staged.iter().map(|(n, t)| (n.as_str(), t.as_str()))
    }

    /// Remove a staged document once ingested.
    pub fn unstage_document(&mut self, name: &str) -> Option<String> {
        let doc = self.staged.remove(name);
        if doc.is_some() {
            self.touch("staged");
        }
        doc
    }

    /// Store a materialised result relation (the wrangled target data).
    pub fn put_result(&mut self, rel: Relation) {
        self.register_relation(RelationKind::Result, "result", rel);
    }

    /// Store an intermediate relation. Intermediates bump their own aspect
    /// (`intermediates`), not `relations`, so they never re-trigger the
    /// schema-level transducers.
    pub fn put_intermediate(&mut self, rel: Relation) {
        self.register_relation(RelationKind::Intermediate, "intermediates", rel);
    }

    /// Drop an intermediate relation (e.g. consumed duplicate clusters).
    pub fn remove_intermediate(&mut self, name: &str) {
        if self.catalog.kind(name) == Some(RelationKind::Intermediate) {
            self.touch_full(
                "intermediates",
                DeltaChange::RelationRemoved { relation: name.to_string() },
                None,
            );
            self.catalog.remove(name);
        }
    }

    /// The extensional catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Relation lookup across the whole catalog.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.catalog.require(name)
    }

    /// Source relation names, sorted.
    pub fn source_names(&self) -> Vec<String> {
        self.catalog
            .names_of_kind(RelationKind::Source)
            .into_iter()
            .map(|s| s.to_string())
            .collect()
    }

    /// Context relation names with their kinds, sorted.
    pub fn context_relations(&self) -> Vec<(String, ContextKind)> {
        self.context_kinds
            .iter()
            .map(|(n, k)| (n.clone(), *k))
            .collect()
    }

    /// The `(context relation, context attr, target attr)` bindings.
    pub fn context_bindings(&self) -> &[(String, String, String)] {
        &self.context_bindings
    }

    // ------------------------------------------------------------------
    // matches
    // ------------------------------------------------------------------

    /// Add (or replace) a match.
    pub fn add_match(&mut self, m: MatchDef) {
        self.matches.insert(m.id.clone(), m);
        self.touch("matches");
    }

    /// All matches, sorted by id.
    pub fn matches(&self) -> impl Iterator<Item = &MatchDef> {
        self.matches.values()
    }

    /// The match with the given id.
    pub fn get_match(&self, id: &str) -> Option<&MatchDef> {
        self.matches.get(id)
    }

    /// Revise a match score (feedback propagation, paper §2.3).
    pub fn set_match_score(&mut self, id: &str, score: f64) -> Result<()> {
        let m = self
            .matches
            .get_mut(id)
            .ok_or_else(|| VadaError::Kb(format!("unknown match `{id}`")))?;
        m.score = score;
        self.touch("matches");
        Ok(())
    }

    /// Remove all matches (e.g. before re-matching with new evidence).
    pub fn clear_matches(&mut self) {
        self.matches.clear();
        self.touch("matches");
    }

    // ------------------------------------------------------------------
    // mappings
    // ------------------------------------------------------------------

    /// Add (or replace) a candidate mapping.
    pub fn add_mapping(&mut self, m: MappingDef) {
        self.mappings.insert(m.id.clone(), m);
        self.touch("mappings");
    }

    /// All candidate mappings, sorted by id.
    pub fn mappings(&self) -> impl Iterator<Item = &MappingDef> {
        self.mappings.values()
    }

    /// The mapping with the given id.
    pub fn get_mapping(&self, id: &str) -> Option<&MappingDef> {
        self.mappings.get(id)
    }

    /// Remove all candidate mappings.
    pub fn clear_mappings(&mut self) {
        self.mappings.clear();
        self.selected_mapping = None;
        self.touch("mappings");
    }

    /// Mark a mapping as the selected one.
    pub fn select_mapping(&mut self, id: &str) -> Result<()> {
        if !self.mappings.contains_key(id) {
            return Err(VadaError::Kb(format!("unknown mapping `{id}`")));
        }
        self.selected_mapping = Some(id.to_string());
        self.touch("selection");
        Ok(())
    }

    /// The currently selected mapping id.
    pub fn selected_mapping(&self) -> Option<&str> {
        self.selected_mapping.as_deref()
    }

    // ------------------------------------------------------------------
    // CFDs, quality, feedback, user context
    // ------------------------------------------------------------------

    /// Add a learned CFD.
    pub fn add_cfd(&mut self, cfd: CfdRule) {
        self.cfds.insert(cfd.id.clone(), cfd);
        self.touch("cfds");
    }

    /// All CFDs, sorted by id.
    pub fn cfds(&self) -> impl Iterator<Item = &CfdRule> {
        self.cfds.values()
    }

    /// Remove all CFDs.
    pub fn clear_cfds(&mut self) {
        self.cfds.clear();
        self.touch("cfds");
    }

    /// Record a quality metric value.
    pub fn add_quality(&mut self, q: QualityFact) {
        self.quality.push(q);
        self.touch("quality");
    }

    /// All quality facts.
    pub fn quality_facts(&self) -> &[QualityFact] {
        &self.quality
    }

    /// Remove quality facts for an entity kind (before recomputation).
    pub fn clear_quality(&mut self, entity_kind: &str) {
        self.quality.retain(|q| q.entity_kind != entity_kind);
        self.touch("quality");
    }

    /// Assert a feedback annotation (paper §2.3).
    pub fn add_feedback(&mut self, f: FeedbackRecord) {
        self.feedback.push(f);
        self.touch("feedback");
    }

    /// All feedback annotations.
    pub fn feedback(&self) -> &[FeedbackRecord] {
        &self.feedback
    }

    /// Record a durable cell/row veto derived from feedback.
    pub fn add_veto(&mut self, veto: CellVeto) {
        self.vetoes.push(veto);
        self.touch("feedback");
    }

    /// All recorded vetoes.
    pub fn vetoes(&self) -> &[CellVeto] {
        &self.vetoes
    }

    /// Replace the user context with the given pairwise statements
    /// (paper Fig 2(d)).
    pub fn set_user_context(&mut self, statements: Vec<PairwiseStatement>) {
        self.user_context = statements;
        self.touch("user_context");
    }

    /// The current user-context statements.
    pub fn user_context(&self) -> &[PairwiseStatement] {
        &self.user_context
    }

    // ------------------------------------------------------------------
    // the Datalog view & dependency queries
    // ------------------------------------------------------------------

    /// Evaluate a conjunctive dependency query (e.g. a transducer input
    /// dependency from paper Table 1) against the knowledge-base fact view.
    /// Returns the distinct bindings of the query's variables.
    ///
    /// The view is maintained **incrementally**: it is built once, then
    /// patched per query from the delta journal — only the predicates owned
    /// by aspects that actually changed are refreshed (see
    /// [`ASPECT_PREDICATES`]), so a run of metadata mutations never pays
    /// for re-enumerating the catalog's attribute facts and vice versa.
    /// Patching clears and re-inserts whole predicates from current state,
    /// which reproduces exactly the fact order of a from-scratch build; a
    /// journal window too stale to prove the change set falls back to a
    /// full rebuild.
    pub fn query(&self, query_src: &str) -> Result<Vec<Tuple>> {
        let q = parse_query(query_src)?;
        self.obs.incr(obs_key::KB_QUERIES);
        let mut cache = self.dep_cache.lock();
        match cache.entry.take() {
            Some((v, db)) if v == self.version => {
                cache.entry = Some((v, db));
            }
            Some((v, mut db)) => {
                match self.journal.events_since(v) {
                    Some(events) => {
                        let changed: std::collections::BTreeSet<&str> =
                            events.iter().map(|e| e.aspect).collect();
                        for pred in predicates_of_aspects(&changed) {
                            db.clear_predicate(pred);
                            self.insert_dependency_pred(&mut db, pred);
                        }
                        // the view object survives a patch, and
                        // clear_predicate bumped the patched predicates'
                        // reorder epochs: the index cache stays and
                        // self-repairs exactly where facts moved
                        self.obs.incr(obs_key::DEPCACHE_PATCHES);
                        cache.entry = Some((self.version, db));
                    }
                    None => {
                        self.invalidate_query_index(&mut cache);
                        self.obs.incr(obs_key::DEPCACHE_REBUILDS);
                        cache.entry = Some((self.version, self.build_dependency_db()));
                    }
                }
            }
            None => {
                self.invalidate_query_index(&mut cache);
                self.obs.incr(obs_key::DEPCACHE_REBUILDS);
                cache.entry = Some((self.version, self.build_dependency_db()));
            }
        }
        // split-borrow: the view is read while its index cache is refreshed
        let DepCache { entry, index } = &mut *cache;
        let (_, db) = entry.as_ref().expect("populated above");
        if self.query_caching.is_enabled() {
            // deliberately a fresh disabled-obs engine (like the scan arm):
            // datalog.* counters must not leak onto the kb registry from
            // here, so the cache outcome is recorded on self.obs instead
            let (rows, built) = Engine::default().eval_query_cached(&q, db, index)?;
            self.obs.incr(if built {
                obs_key::MAGIC_CACHE_MISSES
            } else {
                obs_key::MAGIC_CACHE_HITS
            });
            Ok(rows)
        } else {
            // the dependency view is a pure extensional fact base (no
            // program rules), so run_query short-circuits to direct query
            // evaluation: directed and undirected modes are trivially
            // identical here
            Engine::default().run_query(&Program { rules: Vec::new() }, db, &q)
        }
    }

    /// Drop the persistent query index (the dependency view is about to be
    /// rebuilt from scratch, so its reorder epochs restart and staleness
    /// would no longer be detectable), recording the invalidation if a
    /// warm cache was lost.
    fn invalidate_query_index(&self, cache: &mut DepCache) {
        if cache.index.reset() {
            self.obs.incr(obs_key::MAGIC_CACHE_INVALIDATIONS);
        }
    }

    /// `(from-scratch builds, journal-driven patches)` of the dependency
    /// view over this knowledge base's lifetime. A thin shim over the
    /// counter registry (`kb.depcache.rebuilds` / `kb.depcache.patches`)
    /// kept for the no-rebuild-on-unchanged-aspects regression tests.
    pub fn dep_cache_stats(&self) -> (u64, u64) {
        (
            self.obs.get(obs_key::DEPCACHE_REBUILDS),
            self.obs.get(obs_key::DEPCACHE_PATCHES),
        )
    }

    /// Whether a dependency query has at least one answer.
    pub fn query_satisfied(&self, query_src: &str) -> Result<bool> {
        Ok(!self.query(query_src)?.is_empty())
    }

    /// Build the Datalog fact view of the current knowledge-base state.
    ///
    /// Predicates exposed (arity in parentheses):
    /// `relation(name, kind, rows)`, `attr(rel, attr, pos, type)`,
    /// `target_relation(name)`, `target_attr(rel, attr, pos, type)`,
    /// `has_instances(rel)`, `match(id, src_rel, src_attr, tgt_attr, score,
    /// matcher)`, `mapping(id, target)`, `selected_mapping(id)`,
    /// `cfd(id, rel, rhs_attr, support)`, `cfd_available(rel)`,
    /// `quality(entity_kind, entity, metric, criterion, value)`,
    /// `feedback(id, kind, rel, row, attr, verdict)`,
    /// `user_context(more, less, strength)`, `data_context(rel, kind)`,
    /// `context_binding(ctx_rel, ctx_attr, tgt_attr)`,
    /// `result_available(rel)`, `staged_document(name)`.
    pub fn build_dependency_db(&self) -> Database {
        let mut db = Database::new();
        for pred in ALL_DEPENDENCY_PREDICATES {
            self.insert_dependency_pred(&mut db, pred);
        }
        db
    }

    /// Insert every fact of one dependency-view predicate from current
    /// state. The single definition of each predicate's contents: the
    /// from-scratch build and the journal-driven patch both call this, so
    /// a patched view is byte-identical (facts *and* their order) to a
    /// rebuilt one.
    fn insert_dependency_pred(&self, db: &mut Database, pred: &str) {
        match pred {
            "relation" => {
                for (name, kind, rel) in self.catalog.entries() {
                    db.insert(
                        "relation",
                        Tuple::new(vec![
                            Value::str(name),
                            Value::str(kind.tag()),
                            Value::Int(rel.len() as i64),
                        ]),
                    );
                }
            }
            "attr" => {
                for (name, _, rel) in self.catalog.entries() {
                    for (pos, a) in rel.schema().attributes().iter().enumerate() {
                        db.insert(
                            "attr",
                            Tuple::new(vec![
                                Value::str(name),
                                Value::str(&a.name),
                                Value::Int(pos as i64),
                                Value::str(a.ty.name()),
                            ]),
                        );
                    }
                }
            }
            "has_instances" => {
                for (name, _, rel) in self.catalog.entries() {
                    if !rel.is_empty() {
                        db.insert("has_instances", Tuple::new(vec![Value::str(name)]));
                    }
                }
            }
            "result_available" => {
                for (name, kind, _) in self.catalog.entries() {
                    if kind == RelationKind::Result {
                        db.insert("result_available", Tuple::new(vec![Value::str(name)]));
                    }
                }
            }
            "target_relation" => {
                if let Some(schema) = &self.target_schema {
                    db.insert("target_relation", Tuple::new(vec![Value::str(&schema.name)]));
                }
            }
            "target_attr" => {
                if let Some(schema) = &self.target_schema {
                    for (pos, a) in schema.attributes().iter().enumerate() {
                        db.insert(
                            "target_attr",
                            Tuple::new(vec![
                                Value::str(&schema.name),
                                Value::str(&a.name),
                                Value::Int(pos as i64),
                                Value::str(a.ty.name()),
                            ]),
                        );
                    }
                }
            }
            "match" => {
                for m in self.matches.values() {
                    db.insert(
                        "match",
                        Tuple::new(vec![
                            Value::str(&m.id),
                            Value::str(&m.src_rel),
                            Value::str(&m.src_attr),
                            Value::str(&m.tgt_attr),
                            Value::Float(m.score),
                            Value::str(&m.matcher),
                        ]),
                    );
                }
            }
            "mapping" => {
                for m in self.mappings.values() {
                    db.insert(
                        "mapping",
                        Tuple::new(vec![Value::str(&m.id), Value::str(&m.target)]),
                    );
                }
            }
            "selected_mapping" => {
                if let Some(id) = &self.selected_mapping {
                    db.insert("selected_mapping", Tuple::new(vec![Value::str(id)]));
                }
            }
            "cfd" => {
                for c in self.cfds.values() {
                    db.insert(
                        "cfd",
                        Tuple::new(vec![
                            Value::str(&c.id),
                            Value::str(&c.relation),
                            Value::str(&c.rhs.0),
                            Value::Int(c.support as i64),
                        ]),
                    );
                }
            }
            "cfd_available" => {
                for c in self.cfds.values() {
                    db.insert("cfd_available", Tuple::new(vec![Value::str(&c.relation)]));
                }
            }
            "quality" => {
                for q in &self.quality {
                    db.insert(
                        "quality",
                        Tuple::new(vec![
                            Value::str(&q.entity_kind),
                            Value::str(&q.entity),
                            Value::str(&q.metric),
                            Value::str(&q.criterion),
                            Value::Float(q.value),
                        ]),
                    );
                }
            }
            "feedback" => {
                for f in &self.feedback {
                    let (kind, rel, row, attr) = match &f.target {
                        FeedbackTarget::Tuple { relation, row } => {
                            ("tuple", relation.clone(), *row, String::new())
                        }
                        FeedbackTarget::Attribute { relation, row, attr } => {
                            ("attribute", relation.clone(), *row, attr.clone())
                        }
                    };
                    db.insert(
                        "feedback",
                        Tuple::new(vec![
                            Value::str(&f.id),
                            Value::str(kind),
                            Value::str(rel),
                            Value::Int(row as i64),
                            Value::str(attr),
                            Value::str(f.verdict.tag()),
                        ]),
                    );
                }
            }
            "user_context" => {
                for s in &self.user_context {
                    db.insert(
                        "user_context",
                        Tuple::new(vec![
                            Value::str(&s.more_important),
                            Value::str(&s.less_important),
                            Value::str(&s.strength),
                        ]),
                    );
                }
            }
            "data_context" => {
                for (rel, kind) in &self.context_kinds {
                    db.insert(
                        "data_context",
                        Tuple::new(vec![Value::str(rel), Value::str(kind.tag())]),
                    );
                }
            }
            "staged_document" => {
                for name in self.staged.keys() {
                    db.insert("staged_document", Tuple::new(vec![Value::str(name)]));
                }
            }
            "context_binding" => {
                for (rel, ctx_attr, tgt_attr) in &self.context_bindings {
                    db.insert(
                        "context_binding",
                        Tuple::new(vec![
                            Value::str(rel),
                            Value::str(ctx_attr),
                            Value::str(tgt_attr),
                        ]),
                    );
                }
            }
            other => unreachable!("unknown dependency predicate `{other}`"),
        }
    }

    /// Feedback annotations as convenient `(target, verdict)` pairs for a
    /// result relation.
    pub fn feedback_for(&self, relation: &str) -> Vec<(&FeedbackTarget, Verdict)> {
        self.feedback
            .iter()
            .filter(|f| match &f.target {
                FeedbackTarget::Tuple { relation: r, .. }
                | FeedbackTarget::Attribute { relation: r, .. } => r == relation,
            })
            .map(|f| (&f.target, f.verdict))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::{tuple, AttrType};

    fn kb_with_scenario() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        let mut rightmove = Relation::empty(Schema::all_str(
            "rightmove",
            &["price", "street", "postcode"],
        ));
        rightmove.push(tuple!["250000", "12 High St", "M13 9PL"]).unwrap();
        kb.register_source(rightmove);
        kb.register_target_schema(
            Schema::new(
                "property",
                [
                    ("street", AttrType::Str),
                    ("postcode", AttrType::Str),
                    ("price", AttrType::Int),
                ],
            )
            .unwrap(),
        );
        kb
    }

    #[test]
    fn version_bumps_on_mutation() {
        let mut kb = KnowledgeBase::new();
        let v0 = kb.version();
        kb.register_target_schema(Schema::all_str("t", &["a"]));
        assert!(kb.version() > v0);
        assert_eq!(kb.aspect_version("target"), kb.version());
        assert_eq!(kb.aspect_version("matches"), 0);
    }

    #[test]
    fn dependency_query_over_schemas() {
        let kb = kb_with_scenario();
        // schema matching's input dependency: source and target schemas exist
        let rows = kb
            .query("attr(R, A, _, _), relation(R, \"source\", _), target_attr(T, B, _, _)")
            .unwrap();
        assert!(!rows.is_empty());
    }

    #[test]
    fn instance_matching_dependency_needs_instances() {
        let mut kb = kb_with_scenario();
        assert!(kb
            .query_satisfied("relation(R, \"source\", _), has_instances(R)")
            .unwrap());
        // context instances are absent until registered
        assert!(!kb
            .query_satisfied("data_context(R, \"reference\"), has_instances(R)")
            .unwrap());
        let mut addr = Relation::empty(Schema::all_str("address", &["street", "postcode"]));
        addr.push(tuple!["12 High St", "M13 9PL"]).unwrap();
        kb.register_data_context(addr, ContextKind::Reference, &[("street", "street")])
            .unwrap();
        assert!(kb
            .query_satisfied("data_context(R, \"reference\"), has_instances(R)")
            .unwrap());
    }

    #[test]
    fn match_lifecycle() {
        let mut kb = kb_with_scenario();
        kb.add_match(MatchDef {
            id: "m0".into(),
            src_rel: "rightmove".into(),
            src_attr: "price".into(),
            tgt_attr: "price".into(),
            score: 0.9,
            matcher: "schema".into(),
        });
        assert!(kb.query_satisfied("match(_, _, _, \"price\", S, _), S >= 0.5").unwrap());
        kb.set_match_score("m0", 0.2).unwrap();
        assert!(!kb.query_satisfied("match(_, _, _, \"price\", S, _), S >= 0.5").unwrap());
        assert!(kb.set_match_score("nope", 0.1).is_err());
    }

    #[test]
    fn mapping_selection_requires_existing() {
        let mut kb = kb_with_scenario();
        assert!(kb.select_mapping("nope").is_err());
        kb.add_mapping(MappingDef {
            id: "map0".into(),
            target: "property".into(),
            rules: "property(S, P, C) :- rightmove(S, P, C).".into(),
            sources: vec!["rightmove".into()],
            matches_used: vec![],
        });
        kb.select_mapping("map0").unwrap();
        assert_eq!(kb.selected_mapping(), Some("map0"));
        assert!(kb.query_satisfied("selected_mapping(\"map0\")").unwrap());
    }

    #[test]
    fn feedback_facts_exposed() {
        let mut kb = kb_with_scenario();
        kb.add_feedback(FeedbackRecord {
            id: "f0".into(),
            target: FeedbackTarget::Attribute {
                relation: "property".into(),
                row: 3,
                attr: "bedrooms".into(),
            },
            verdict: Verdict::Incorrect,
        });
        let rows = kb
            .query("feedback(F, \"attribute\", \"property\", Row, \"bedrooms\", \"incorrect\")")
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(kb.feedback_for("property").len(), 1);
        assert_eq!(kb.feedback_for("other").len(), 0);
    }

    /// Render a database fully: predicates sorted, facts in insertion
    /// order — the order-sensitive view queries observe.
    fn dump(db: &Database) -> String {
        let mut out = String::new();
        for pred in db.predicates() {
            for t in db.facts(pred) {
                out.push_str(&format!("{pred}{t:?}\n"));
            }
        }
        out
    }

    #[test]
    fn dependency_view_is_patched_not_rebuilt_on_metadata_change() {
        let mut kb = kb_with_scenario();
        kb.query_satisfied("relation(_, _, _)").unwrap();
        assert_eq!(kb.dep_cache_stats(), (1, 0), "first query builds");
        kb.query_satisfied("relation(_, _, _)").unwrap();
        assert_eq!(kb.dep_cache_stats(), (1, 0), "unchanged version is a pure hit");

        // a metadata-only mutation must patch, never rebuild
        kb.add_match(MatchDef {
            id: "m0".into(),
            src_rel: "rightmove".into(),
            src_attr: "price".into(),
            tgt_attr: "price".into(),
            score: 0.9,
            matcher: "schema".into(),
        });
        assert!(kb.query_satisfied("match(_, _, _, _, _, _)").unwrap());
        assert_eq!(kb.dep_cache_stats(), (1, 1), "metadata change patches");

        // row-level relation edits patch too
        kb.remove_rows("rightmove", &[0]).unwrap();
        assert!(!kb.query_satisfied("has_instances(\"rightmove\")").unwrap());
        assert_eq!(kb.dep_cache_stats(), (1, 2));
    }

    #[test]
    fn patched_dependency_view_is_byte_identical_to_a_fresh_build() {
        let mut kb = kb_with_scenario();
        kb.query_satisfied("relation(_, _, _)").unwrap();
        // a mixed mutation sequence touching many aspects
        let mut grown = kb.relation("rightmove").unwrap().clone();
        grown.push(tuple!["410000", "3 kings ave", "EH1 1AA"]).unwrap();
        kb.register_source(grown);
        kb.add_mapping(MappingDef {
            id: "map0".into(),
            target: "property".into(),
            rules: "property(S, P, C) :- rightmove(S, P, C).".into(),
            sources: vec!["rightmove".into()],
            matches_used: vec![],
        });
        kb.select_mapping("map0").unwrap();
        kb.add_cfd(CfdRule {
            id: "c0".into(),
            relation: "rightmove".into(),
            lhs: vec![("postcode".into(), None)],
            rhs: ("street".into(), None),
            support: 3,
        });
        kb.stage_document("doc", "a\n1\n");
        kb.update_source("rightmove", &[(0, tuple!["1", "x", "M1 1AA"])]).unwrap();
        kb.clear_mappings();
        // force the patch path, then compare against a from-scratch build
        kb.query_satisfied("relation(_, _, _)").unwrap();
        let (rebuilds, patches) = kb.dep_cache_stats();
        assert_eq!(rebuilds, 1, "only the initial build");
        assert!(patches >= 1);
        let cache = kb.dep_cache.lock();
        let (_, patched) = cache.entry.as_ref().unwrap();
        assert_eq!(dump(patched), dump(&kb.build_dependency_db()));
    }

    #[test]
    fn stale_journal_window_falls_back_to_rebuild() {
        let mut kb = kb_with_scenario();
        kb.query_satisfied("relation(_, _, _)").unwrap();
        for i in 0..(crate::delta::DEFAULT_JOURNAL_CAPACITY + 4) {
            kb.stage_document(format!("d{i}"), "a\n1\n");
        }
        assert!(kb.query_satisfied("staged_document(\"d0\")").unwrap());
        assert_eq!(kb.dep_cache_stats().0, 2, "pruned window forces a rebuild");
    }

    #[test]
    fn query_cache_invalidated_by_mutation() {
        let mut kb = kb_with_scenario();
        assert!(!kb.query_satisfied("cfd_available(_)").unwrap());
        kb.add_cfd(CfdRule {
            id: "c0".into(),
            relation: "address".into(),
            lhs: vec![("postcode".into(), None)],
            rhs: ("city".into(), None),
            support: 5,
        });
        assert!(kb.query_satisfied("cfd_available(\"address\")").unwrap());
    }

    #[test]
    fn persistent_query_cache_hits_misses_and_survives_patches() {
        let mut kb = kb_with_scenario();
        kb.set_query_caching(QueryCaching::Persistent);
        assert_eq!(kb.query_caching(), QueryCaching::Persistent);
        let q = "relation(\"rightmove\", K, R)";
        let cold = kb.query(q).unwrap();
        assert!(!cold.is_empty());
        assert_eq!(kb.obs().get(obs_key::MAGIC_CACHE_MISSES), 1);

        // unchanged base: served straight from the warm index, no build
        let warm = kb.query(q).unwrap();
        assert_eq!(warm, cold);
        assert_eq!(kb.obs().get(obs_key::MAGIC_CACHE_HITS), 1);

        // a journal-patchable mutation elsewhere keeps the index cache:
        // the patch only bumps the touched predicates' epochs
        kb.stage_document("doc", "a\n1\n");
        assert_eq!(kb.query(q).unwrap(), cold);
        assert_eq!(kb.obs().get(obs_key::MAGIC_CACHE_INVALIDATIONS), 0);

        // a patch that rewrites the indexed predicate itself: the epoch
        // bump forces a rebuild of exactly that index, and the answers
        // track the new state
        let mut grown = kb.relation("rightmove").unwrap().clone();
        grown.push(tuple!["410000", "3 kings ave", "EH1 1AA"]).unwrap();
        kb.register_source(grown);
        let after = kb.query(q).unwrap();
        assert_ne!(after, cold, "the row count changed");

        // byte-identity with the scan path on the same state
        let mut scan = kb.clone();
        scan.set_query_caching(QueryCaching::Off);
        assert_eq!(scan.query(q).unwrap(), after);
    }

    #[test]
    fn query_cache_dropped_when_the_view_is_rebuilt_from_scratch() {
        let mut kb = kb_with_scenario();
        kb.set_query_caching(QueryCaching::Persistent);
        let q = "relation(\"rightmove\", K, R)";
        let cold = kb.query(q).unwrap();
        for i in 0..(crate::delta::DEFAULT_JOURNAL_CAPACITY + 4) {
            kb.stage_document(format!("d{i}"), "a\n1\n");
        }
        // journal window pruned → the view is rebuilt from scratch, and
        // the fresh Database restarts its reorder epochs: the warm cache
        // must go rather than alias stale row ids
        assert_eq!(kb.query(q).unwrap(), cold);
        assert_eq!(kb.obs().get(obs_key::MAGIC_CACHE_INVALIDATIONS), 1);
        assert_eq!(kb.obs().get(obs_key::MAGIC_CACHE_MISSES), 2);
    }

    #[test]
    fn journal_classifies_appends_and_replacements() {
        let mut kb = kb_with_scenario();
        let seen = kb.version();

        // growing re-registration → monotone append with the suffix
        let mut grown = kb.relation("rightmove").unwrap().clone();
        grown.push(tuple!["410000", "3 kings ave", "EH1 1AA"]).unwrap();
        kb.register_source(grown.clone());
        let events = kb.drain_deltas_since(seen).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].seq, kb.version());
        assert_eq!(events[0].aspect, "relations");
        match &events[0].change {
            DeltaChange::RowsAppended { relation, rows } => {
                assert_eq!(relation, "rightmove");
                assert_eq!(rows, &[tuple!["410000", "3 kings ave", "EH1 1AA"]]);
            }
            other => panic!("expected append, got {other:?}"),
        }

        // rewriting an existing row → replacement
        let mut rewritten = grown;
        rewritten.replace(0, tuple!["1", "x", "y"]).unwrap();
        let seen = kb.version();
        kb.register_source(rewritten);
        let events = kb.drain_deltas_since(seen).unwrap();
        assert!(matches!(
            events[0].change,
            DeltaChange::RelationReplaced { ref relation } if relation == "rightmove"
        ));

        // metadata mutations are journalled as aspect changes
        let seen = kb.version();
        kb.clear_matches();
        let events = kb.drain_deltas_since(seen).unwrap();
        assert_eq!(events[0].aspect, "matches");
        assert!(!events[0].change.is_monotone());
    }

    #[test]
    fn remove_rows_journals_a_row_level_retraction() {
        let mut kb = kb_with_scenario();
        let mut grown = kb.relation("rightmove").unwrap().clone();
        grown.push(tuple!["410000", "3 kings ave", "EH1 1AA"]).unwrap();
        kb.register_source(grown);
        let seen = kb.version();

        let removed = kb.remove_rows("rightmove", &[0]).unwrap();
        assert_eq!(removed, vec![tuple!["250000", "12 High St", "M13 9PL"]]);
        assert_eq!(kb.relation("rightmove").unwrap().len(), 1);
        let events = kb.drain_deltas_since(seen).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].aspect, "relations");
        match &events[0].change {
            DeltaChange::RowsRemoved { relation, rows, positions } => {
                assert_eq!(relation, "rightmove");
                assert_eq!(rows, &removed);
                assert_eq!(positions, &[0]);
            }
            other => panic!("expected RowsRemoved, got {other:?}"),
        }
        // empty removal is a no-op: no version bump, no event
        let v = kb.version();
        assert!(kb.remove_rows("rightmove", &[]).unwrap().is_empty());
        assert_eq!(kb.version(), v);
        assert!(kb.remove_rows("nope", &[0]).is_err());
        assert!(kb.remove_rows("rightmove", &[99]).is_err());
    }

    #[test]
    fn update_source_journals_old_and_new_rows_with_tail_flag() {
        let mut kb = kb_with_scenario();
        let mut grown = kb.relation("rightmove").unwrap().clone();
        grown.push(tuple!["410000", "3 kings ave", "EH1 1AA"]).unwrap();
        kb.register_source(grown);

        // tail rewrite: the last row changes in place
        let seen = kb.version();
        kb.update_source("rightmove", &[(1, tuple!["420000", "3 kings ave", "EH1 1AA"])])
            .unwrap();
        let events = kb.drain_deltas_since(seen).unwrap();
        match &events[0].change {
            DeltaChange::RowsReplaced { relation, removed, added, positions, tail } => {
                assert_eq!(relation, "rightmove");
                assert_eq!(removed, &[tuple!["410000", "3 kings ave", "EH1 1AA"]]);
                assert_eq!(added, &[tuple!["420000", "3 kings ave", "EH1 1AA"]]);
                assert_eq!(positions, &[1]);
                assert!(*tail);
            }
            other => panic!("expected RowsReplaced, got {other:?}"),
        }

        // mid-relation rewrite: recorded, but not a tail
        let seen = kb.version();
        kb.update_source("rightmove", &[(0, tuple!["1", "x", "M1 1AA"])]).unwrap();
        let events = kb.drain_deltas_since(seen).unwrap();
        assert!(matches!(
            &events[0].change,
            DeltaChange::RowsReplaced { tail: false, .. }
        ));
        assert_eq!(kb.relation("rightmove").unwrap().tuples()[0], tuple!["1", "x", "M1 1AA"]);

        // failures are atomic: nothing applied, nothing journalled
        let v = kb.version();
        assert!(kb
            .update_source("rightmove", &[(0, tuple!["a", "b", "c"]), (9, tuple!["d", "e", "f"])])
            .is_err());
        assert!(kb.update_source("rightmove", &[(0, tuple!["too", "short"])]).is_err());
        assert!(kb
            .update_source("rightmove", &[(0, tuple!["a", "b", "c"]), (0, tuple!["d", "e", "f"])])
            .is_err());
        assert_eq!(kb.version(), v);
        assert_eq!(kb.relation("rightmove").unwrap().tuples()[0], tuple!["1", "x", "M1 1AA"]);
    }

    #[test]
    fn journal_window_forces_full_fallback_when_stale() {
        let mut kb = KnowledgeBase::new();
        kb.register_target_schema(Schema::all_str("t", &["a"]));
        let stale = 0u64;
        for i in 0..(crate::delta::DEFAULT_JOURNAL_CAPACITY + 4) {
            kb.stage_document(format!("d{i}"), "a\n1\n");
        }
        assert!(kb.drain_deltas_since(stale).is_none(), "window must have pruned");
        assert!(kb.drain_deltas_since(kb.version()).unwrap().is_empty());
    }

    #[test]
    fn user_context_facts() {
        let mut kb = kb_with_scenario();
        kb.set_user_context(vec![PairwiseStatement {
            more_important: "completeness(crimerank)".into(),
            less_important: "accuracy(type)".into(),
            strength: "very strongly".into(),
        }]);
        assert!(kb
            .query_satisfied("user_context(_, _, \"very strongly\")")
            .unwrap());
    }
}
