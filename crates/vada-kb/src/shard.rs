//! The **sharded knowledge-base store**: per-relation shard views kept in
//! step with the canonical catalog by the delta journal.
//!
//! A [`ShardedRelation`] splits one relation's rows across `N` shards via a
//! pluggable [`Partitioner`] (whole-tuple hash by default; the blocking-key
//! partitioner co-locates co-blocked rows so a per-shard fusion scan owns
//! its blocks completely). Each shard is an ordinary
//! [`vada_common::Relation`], so every existing scan runs unchanged against
//! a shard; a deterministic **ordered merge** reproduces the canonical row
//! order exactly, which is what lets the differential suites pin "any shard
//! count is byte-identical to unsharded".
//!
//! A [`ShardedStore`] holds the sharded views of a whole catalog and syncs
//! them from the knowledge-base **delta journal**: row-level events
//! (`RowsAppended` / `RowsRemoved` / `RowsReplaced`) are routed to the
//! owning shard in O(change of the touched shard), relation-level events
//! repartition just the named relation, and anything the journal cannot
//! prove complete (pruned window, diverged lineage) falls back to a full
//! rebuild — the same discipline as the incremental evaluation layer, so
//! staleness can never produce wrong shards.
//!
//! Because partitioners are pure functions of tuple *content*, a
//! journal-maintained view and a fresh repartition of the same relation are
//! byte-identical — the property tests pin this, and it is what makes the
//! routed fast path safe: there is no state a replay could diverge from.

use std::collections::BTreeMap;
use std::sync::Arc;

use vada_common::obs::{key as obs_key, Obs};
use vada_common::sharding::{assign_shards, rows_by_shard, Partitioner, Sharding};
use vada_common::{
    par, HashPartitioner, Parallelism, Relation, Result, Schema, Tuple, VadaError,
};

use crate::delta::DeltaChange;
use crate::KnowledgeBase;

/// One relation partitioned across `N` shards, with the canonical row
/// order retained as the shard-ownership sequence (`order[i]` = the shard
/// holding canonical row `i`). Within a shard, rows keep ascending
/// canonical order, so a per-shard scan observes the same relative
/// sequence a monolithic scan would.
#[derive(Debug, Clone)]
pub struct ShardedRelation {
    schema: Schema,
    order: Vec<usize>,
    shards: Vec<Relation>,
}

impl ShardedRelation {
    /// Partition `rel` across `shards` shards. Shard assignment runs under
    /// `par` (stage `kb/shard_partition`), and each shard's rows are
    /// collected by an independent per-shard scan (stage `kb/shard_collect`).
    pub fn partition(
        rel: &Relation,
        partitioner: &(dyn Partitioner + Sync),
        shards: usize,
        par: Parallelism,
    ) -> Result<ShardedRelation> {
        let n = shards.max(1);
        let order = assign_shards(par, "kb/shard_partition", rel.tuples(), partitioner, n)?;
        let by_shard = rows_by_shard(&order, n);
        let shards = par::par_shards(par, "kb/shard_collect", n, |s| {
            let mut shard = Relation::empty(rel.schema().clone());
            for &row in &by_shard[s] {
                shard.push(rel.tuples()[row].clone())?;
            }
            Ok(shard)
        })?;
        Ok(ShardedRelation { schema: rel.schema().clone(), order, shards })
    }

    /// The relation's schema (shared by every shard).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard with index `s`.
    pub fn shard(&self, s: usize) -> &Relation {
        &self.shards[s]
    }

    /// All shards, in shard order.
    pub fn shards(&self) -> &[Relation] {
        &self.shards
    }

    /// Total rows across all shards.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the relation holds no rows.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The shard-ownership sequence: `order()[i]` is the shard holding
    /// canonical row `i`.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Deterministic ordered merge back to the canonical relation: walks
    /// the ownership sequence with one cursor per shard, reproducing the
    /// exact row order of the unsharded relation.
    pub fn merge(&self) -> Relation {
        let mut cursors = vec![0usize; self.shards.len()];
        let mut out = Relation::empty(self.schema.clone());
        for &s in &self.order {
            let row = self.shards[s].tuples()[cursors[s]].clone();
            cursors[s] += 1;
            out.push(row).expect("shard rows share the schema");
        }
        out
    }

    /// Merge per-shard scan outputs (one output per row, in each shard's
    /// row order) back into canonical row order — the read-side companion
    /// of [`ShardedRelation::merge`] for scans that produce derived values
    /// instead of rows.
    pub fn merge_scan<T>(&self, per_shard: Vec<Vec<T>>) -> Vec<T> {
        vada_common::sharding::merge_in_order(&self.order, per_shard)
    }

    /// Route appended rows to their owning shards (the journal
    /// `RowsAppended` event). O(rows appended); a panicking partitioner is
    /// captured (stage `kb/shard_route`) before anything is applied.
    pub fn append_rows(
        &mut self,
        rows: &[Tuple],
        partitioner: &(dyn Partitioner + Sync),
    ) -> Result<()> {
        let n = self.shards.len();
        let assigned = assign_shards(Parallelism::Sequential, "kb/shard_route", rows, partitioner, n)?;
        for (t, &s) in rows.iter().zip(&assigned) {
            self.shards[s].push(t.clone())?;
            self.order.push(s);
        }
        Ok(())
    }

    /// Route a row-level removal (the journal `RowsRemoved` event):
    /// `positions` are the pre-removal canonical indices, ascending,
    /// pairing one-to-one with `rows`. Fails — without modifying anything —
    /// if the view disagrees with the event (a diverged mirror), which the
    /// store answers with a rebuild.
    pub fn remove_positions(&mut self, rows: &[Tuple], positions: &[usize]) -> Result<()> {
        if rows.len() != positions.len()
            || positions.windows(2).any(|w| w[0] >= w[1])
            || positions.last().is_some_and(|&p| p >= self.order.len())
        {
            return Err(VadaError::Kb(
                "sharded view diverged: removal positions do not match".into(),
            ));
        }
        // one pass over the ownership sequence resolves every canonical
        // position to (shard, shard-local index) and validates the tuples
        let mut locals: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        let mut counts = vec![0usize; self.shards.len()];
        let mut k = 0usize;
        for (i, &s) in self.order.iter().enumerate() {
            if k < positions.len() && positions[k] == i {
                if self.shards[s].tuples()[counts[s]] != rows[k] {
                    return Err(VadaError::Kb(
                        "sharded view diverged: removed tuple does not match".into(),
                    ));
                }
                locals[s].push(counts[s]);
                k += 1;
            }
            counts[s] += 1;
        }
        for (s, local) in locals.iter().enumerate() {
            if !local.is_empty() {
                self.shards[s].remove_rows(local)?;
            }
        }
        let mut keep = 0usize;
        let mut k = 0usize;
        self.order.retain(|_| {
            let gone = k < positions.len() && positions[k] == keep;
            if gone {
                k += 1;
            }
            keep += 1;
            !gone
        });
        Ok(())
    }

    /// Route an in-place rewrite (the journal `RowsReplaced` event). A row
    /// whose new content hashes to a different shard **moves** there — at
    /// the shard-local position its canonical index dictates — so the view
    /// stays byte-identical to a fresh repartition of the updated relation.
    pub fn replace_positions(
        &mut self,
        removed: &[Tuple],
        added: &[Tuple],
        positions: &[usize],
        partitioner: &(dyn Partitioner + Sync),
    ) -> Result<()> {
        if removed.len() != positions.len()
            || added.len() != positions.len()
            || positions.windows(2).any(|w| w[0] >= w[1])
            || positions.last().is_some_and(|&p| p >= self.order.len())
        {
            return Err(VadaError::Kb(
                "sharded view diverged: replacement positions do not match".into(),
            ));
        }
        let n = self.shards.len();
        let assigned =
            assign_shards(Parallelism::Sequential, "kb/shard_route", added, partitioner, n)?;
        // validation pass (nothing is modified on failure): one scan of
        // the ownership sequence resolves every position's pre-edit
        // (shard, local index) via running counts and checks the tuple
        let mut counts = vec![0usize; n];
        let mut k = 0usize;
        for (i, &s) in self.order.iter().enumerate() {
            if k < positions.len() && positions[k] == i {
                if self.shards[s].tuples()[counts[s]] != removed[k] {
                    return Err(VadaError::Kb(
                        "sharded view diverged: replaced tuple does not match".into(),
                    ));
                }
                k += 1;
            }
            counts[s] += 1;
        }
        // apply pass: same single-scan discipline, with the counts now
        // reflecting post-edit ownership for already-processed rows —
        // `counts[s]` is exactly the shard-local index of canonical row
        // `i` in shard `s` at the moment row `i` is reached
        let mut counts = vec![0usize; n];
        let mut k = 0usize;
        for i in 0..self.order.len() {
            let s_old = self.order[i];
            if k < positions.len() && positions[k] == i {
                let (new, s_new) = (&added[k], assigned[k]);
                if s_new == s_old {
                    self.shards[s_old].replace(counts[s_old], new.clone())?;
                } else {
                    self.shards[s_old].remove_rows(&[counts[s_old]])?;
                    self.shards[s_new].insert(counts[s_new], new.clone())?;
                    self.order[i] = s_new;
                }
                k += 1;
            }
            counts[self.order[i]] += 1;
        }
        Ok(())
    }
}

/// How one [`ShardedStore::sync`] call brought the views up to date.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Nothing changed since the last sync.
    Noop,
    /// Every change was routed from journal events (O(change)).
    Routed,
    /// The journal could not prove the change slice complete (first sync,
    /// pruned window, or diverged lineage): every view was repartitioned
    /// from the catalog.
    Rebuild,
}

/// What one [`ShardedStore::sync`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncReport {
    /// How the views were brought up to date.
    pub mode: SyncMode,
    /// Journal events consumed (0 on rebuild/noop).
    pub routed_events: usize,
    /// Relations repartitioned from the catalog (all of them on rebuild;
    /// on the routed path only those hit by relation-level events).
    pub repartitioned: usize,
}

/// Sharded views of a knowledge base's catalog, maintained from the delta
/// journal. The store is a *cache*: the canonical catalog stays the source
/// of truth, so any inconsistency (or any failure mid-sync) is answered by
/// dropping the views and rebuilding on the next sync — a failed sync
/// poisons nothing.
pub struct ShardedStore {
    sharding: Sharding,
    partitioner: Arc<dyn Partitioner + Send + Sync>,
    par: Parallelism,
    views: BTreeMap<String, ShardedRelation>,
    /// `None` = shard the whole catalog; `Some(names)` = maintain views
    /// only for these relations (see [`ShardedStore::add_scope`]).
    scope: Option<std::collections::BTreeSet<String>>,
    /// `(journal lineage, kb version)` of the last successful sync.
    watermark: Option<(u64, u64)>,
    rebuilds: usize,
    routed_events: usize,
    /// Pipeline-wide counter registry (`shard.sync.*`); disabled unless a
    /// coordinator threads one in via [`ShardedStore::set_obs`].
    obs: Obs,
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("sharding", &self.sharding)
            .field("partitioner", &self.partitioner.name())
            .field("views", &self.views.keys().collect::<Vec<_>>())
            .field("watermark", &self.watermark)
            .finish()
    }
}

impl ShardedStore {
    /// A store with the default whole-tuple hash partitioner.
    pub fn new(sharding: Sharding) -> ShardedStore {
        ShardedStore::with_partitioner(sharding, Arc::new(HashPartitioner))
    }

    /// A store with an explicit partitioner (e.g. the blocking-key-aware
    /// [`vada_common::KeyPartitioner`]).
    pub fn with_partitioner(
        sharding: Sharding,
        partitioner: Arc<dyn Partitioner + Send + Sync>,
    ) -> ShardedStore {
        ShardedStore {
            sharding,
            partitioner,
            par: Parallelism::default(),
            views: BTreeMap::new(),
            scope: None,
            watermark: None,
            rebuilds: 0,
            routed_events: 0,
            obs: Obs::disabled(),
        }
    }

    /// Record sync telemetry into a shared registry (`shard.sync.*`).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Restrict (or extend an existing restriction of) the store to the
    /// named relations: views are built and journal events routed only for
    /// them, so a consumer that scans a handful of source relations never
    /// pays to partition results and intermediates it will not read.
    /// Scope only ever grows — relations scoped by an earlier caller stay
    /// maintained; relations newly in scope get a view on the next
    /// [`ShardedStore::sync`]. A store never given a scope shards the
    /// whole catalog.
    pub fn add_scope(&mut self, names: impl IntoIterator<Item = String>) {
        self.scope.get_or_insert_with(Default::default).extend(names);
    }

    fn in_scope(&self, name: &str) -> bool {
        self.scope.as_ref().is_none_or(|s| s.contains(name))
    }

    /// The configured sharding level.
    pub fn sharding(&self) -> Sharding {
        self.sharding
    }

    /// Set the parallelism level used by partition and collect scans.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }

    /// The sharded view of a relation, if synced.
    pub fn view(&self, name: &str) -> Option<&ShardedRelation> {
        self.views.get(name)
    }

    /// `(full rebuilds, journal events routed)` over the store's lifetime —
    /// the observability hook the O(change) regression tests assert on.
    pub fn stats(&self) -> (usize, usize) {
        (self.rebuilds, self.routed_events)
    }

    /// Bring every view up to date with `kb`. Routes journal events when
    /// the journal can prove the change slice complete; otherwise
    /// repartitions everything from the catalog. On error the store resets
    /// itself (views dropped, watermark cleared) so the next sync starts
    /// from a clean rebuild — never from half-applied state.
    pub fn sync(&mut self, kb: &KnowledgeBase) -> Result<SyncReport> {
        let obs = self.obs.clone();
        let span = obs.span("shard/sync");
        span.attr("shards", self.sharding.shard_count());
        match self.try_sync(kb) {
            Ok(report) => {
                let (mode, key) = match report.mode {
                    SyncMode::Rebuild => ("rebuild", obs_key::SHARD_SYNC_REBUILD),
                    SyncMode::Routed => ("routed", obs_key::SHARD_SYNC_ROUTED),
                    SyncMode::Noop => ("noop", obs_key::SHARD_SYNC_NOOP),
                };
                span.attr("mode", mode);
                span.attr("routed_events", report.routed_events);
                self.obs.incr(key);
                self.obs.add(obs_key::SHARD_ROUTED_EVENTS, report.routed_events as u64);
                Ok(report)
            }
            Err(e) => {
                self.views.clear();
                self.watermark = None;
                Err(e)
            }
        }
    }

    fn try_sync(&mut self, kb: &KnowledgeBase) -> Result<SyncReport> {
        let lineage = kb.journal().lineage();
        let events = match self.watermark {
            Some((l, v)) if l == lineage && v == kb.version() => Some(Vec::new()),
            Some((l, v)) if l == lineage => kb.drain_deltas_since(v),
            _ => None,
        };
        let mut report = match events {
            None => {
                self.rebuild_all(kb)?;
                SyncReport {
                    mode: SyncMode::Rebuild,
                    routed_events: 0,
                    repartitioned: self.views.len(),
                }
            }
            Some(events) if events.is_empty() => {
                SyncReport { mode: SyncMode::Noop, routed_events: 0, repartitioned: 0 }
            }
            Some(events) => {
                let mut repartitioned = 0usize;
                // relations repartitioned earlier in THIS slice: their views
                // were read from the final catalog state, which already
                // includes every later row-level event — routing those on
                // top would double-apply them
                let mut finalized: std::collections::BTreeSet<String> = Default::default();
                for event in &events {
                    repartitioned += self.route(kb, &event.change, &mut finalized)?;
                }
                self.routed_events += events.len();
                SyncReport { mode: SyncMode::Routed, routed_events: events.len(), repartitioned }
            }
        };
        // the scope may have grown since the last sync: relations newly in
        // scope have no view yet (their creation events predate the
        // watermark), so partition them from the current catalog now
        let missing: Vec<String> = kb
            .catalog()
            .entries()
            .filter(|(name, _, _)| self.in_scope(name) && !self.views.contains_key(*name))
            .map(|(name, _, _)| name.to_string())
            .collect();
        for name in missing {
            report.repartitioned += self.repartition(kb, &name)?;
        }
        self.watermark = Some((lineage, kb.version()));
        Ok(report)
    }

    /// Apply one journal event; returns how many relations were
    /// repartitioned (0 for the row-routed shapes). `finalized` names the
    /// relations whose views were (re)built from the final catalog state
    /// earlier in this sync slice — a rebuild already reflects every later
    /// row-level event, so routing those on top would double-apply them.
    fn route(
        &mut self,
        kb: &KnowledgeBase,
        change: &DeltaChange,
        finalized: &mut std::collections::BTreeSet<String>,
    ) -> Result<usize> {
        let partitioner = &*self.partitioner;
        if let Some(relation) = change.relation() {
            // out-of-scope relations are never materialised as views
            if !self.in_scope(relation) {
                return Ok(0);
            }
            if change.is_row_level() && finalized.contains(relation) {
                return Ok(0);
            }
        }
        match change {
            DeltaChange::RowsAppended { relation, rows } => {
                match self.views.get_mut(relation) {
                    Some(view) => {
                        view.append_rows(rows, partitioner)?;
                        Ok(0)
                    }
                    // an append to a relation seen for the first time
                    // (e.g. the store was created mid-history): the
                    // rebuild reads final state, so later events skip
                    None => {
                        finalized.insert(relation.clone());
                        self.repartition(kb, relation)
                    }
                }
            }
            DeltaChange::RowsRemoved { relation, rows, positions } => {
                match self.views.get_mut(relation) {
                    Some(view) => {
                        view.remove_positions(rows, positions)?;
                        Ok(0)
                    }
                    None => {
                        finalized.insert(relation.clone());
                        self.repartition(kb, relation)
                    }
                }
            }
            DeltaChange::RowsReplaced { relation, removed, added, positions, .. } => {
                match self.views.get_mut(relation) {
                    Some(view) => {
                        view.replace_positions(removed, added, positions, partitioner)?;
                        Ok(0)
                    }
                    None => {
                        finalized.insert(relation.clone());
                        self.repartition(kb, relation)
                    }
                }
            }
            DeltaChange::RelationAdded { relation }
            | DeltaChange::RelationReplaced { relation } => {
                finalized.insert(relation.clone());
                self.repartition(kb, relation)
            }
            DeltaChange::RelationRemoved { relation } => {
                // the view is gone; a later RelationAdded re-creating it
                // re-enters `finalized` and rebuilds from final state
                self.views.remove(relation);
                Ok(0)
            }
            // metadata aspects hold no rows to shard
            DeltaChange::AspectChanged { .. } => Ok(0),
        }
    }

    fn repartition(&mut self, kb: &KnowledgeBase, name: &str) -> Result<usize> {
        match kb.catalog().get(name) {
            Some(rel) => {
                let view = ShardedRelation::partition(
                    rel,
                    &*self.partitioner,
                    self.sharding.shard_count(),
                    self.par,
                )?;
                self.views.insert(name.to_string(), view);
                Ok(1)
            }
            None => {
                self.views.remove(name);
                Ok(0)
            }
        }
    }

    fn rebuild_all(&mut self, kb: &KnowledgeBase) -> Result<()> {
        self.rebuilds += 1;
        let mut views = BTreeMap::new();
        for (name, _, rel) in kb.catalog().entries() {
            if !self.in_scope(name) {
                continue;
            }
            views.insert(
                name.to_string(),
                ShardedRelation::partition(
                    rel,
                    &*self.partitioner,
                    self.sharding.shard_count(),
                    self.par,
                )?,
            );
        }
        self.views = views;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::tuple;

    fn rel(n: usize) -> Relation {
        let mut r = Relation::empty(Schema::all_str("listings", &["street", "postcode"]));
        for i in 0..n {
            r.push(tuple![format!("{i} high st"), format!("M{} 1AA", i % 7)]).unwrap();
        }
        r
    }

    fn assert_matches_fresh(view: &ShardedRelation, canonical: &Relation, n: usize) {
        let fresh = ShardedRelation::partition(
            canonical,
            &HashPartitioner,
            n,
            Parallelism::Sequential,
        )
        .unwrap();
        assert_eq!(view.order(), fresh.order(), "ownership sequence diverged");
        for s in 0..n {
            assert_eq!(view.shard(s).tuples(), fresh.shard(s).tuples(), "shard {s} diverged");
        }
        assert_eq!(view.merge().tuples(), canonical.tuples(), "merge is not canonical");
    }

    #[test]
    fn partition_and_merge_round_trip() {
        let r = rel(57);
        for n in [1usize, 2, 4, 9] {
            for par in [Parallelism::Sequential, Parallelism::Threads(4)] {
                let sharded =
                    ShardedRelation::partition(&r, &HashPartitioner, n, par).unwrap();
                assert_eq!(sharded.shard_count(), n);
                assert_eq!(sharded.len(), r.len());
                let total: usize = sharded.shards().iter().map(|s| s.len()).sum();
                assert_eq!(total, r.len(), "every row in exactly one shard");
                assert_eq!(sharded.merge().tuples(), r.tuples(), "n={n} {par:?}");
            }
        }
    }

    #[test]
    fn merge_scan_reproduces_monolithic_scan_order() {
        let r = rel(40);
        let sharded =
            ShardedRelation::partition(&r, &HashPartitioner, 4, Parallelism::Sequential).unwrap();
        // per-shard scan computing a derived value per row
        let per_shard: Vec<Vec<String>> = sharded
            .shards()
            .iter()
            .map(|s| s.iter().map(|t| t[0].to_string()).collect())
            .collect();
        let merged = sharded.merge_scan(per_shard);
        let mono: Vec<String> = r.iter().map(|t| t[0].to_string()).collect();
        assert_eq!(merged, mono);
    }

    #[test]
    fn routed_appends_removals_and_rewrites_match_fresh_partition() {
        let mut canonical = rel(30);
        let mut view =
            ShardedRelation::partition(&canonical, &HashPartitioner, 4, Parallelism::Sequential)
                .unwrap();

        // append
        let appended = vec![tuple!["90 new rd", "M2 1AA"], tuple!["91 new rd", "EH1 1AA"]];
        for t in &appended {
            canonical.push(t.clone()).unwrap();
        }
        view.append_rows(&appended, &HashPartitioner).unwrap();
        assert_matches_fresh(&view, &canonical, 4);

        // removal (positions pair with tuples exactly, duplicates included)
        let gone = canonical.remove_rows(&[3, 17, 31]).unwrap();
        view.remove_positions(&gone, &[3, 17, 31]).unwrap();
        assert_matches_fresh(&view, &canonical, 4);

        // in-place rewrite that moves the row to a different shard
        let new_row = tuple!["rewritten", "ZZ9 9ZZ"];
        let old_row = canonical.tuples()[10].clone();
        canonical.replace(10, new_row.clone()).unwrap();
        view.replace_positions(
            &[old_row],
            &[new_row],
            &[10],
            &HashPartitioner,
        )
        .unwrap();
        assert_matches_fresh(&view, &canonical, 4);
    }

    #[test]
    fn routing_with_duplicate_rows_stays_exact() {
        // three identical rows interleaved with others: positions make the
        // removal exact where tuple matching alone would be ambiguous
        let mut canonical = Relation::empty(Schema::all_str("r", &["a"]));
        for v in ["dup", "x", "dup", "y", "dup"] {
            canonical.push(tuple![v]).unwrap();
        }
        let mut view =
            ShardedRelation::partition(&canonical, &HashPartitioner, 3, Parallelism::Sequential)
                .unwrap();
        let gone = canonical.remove_rows(&[2]).unwrap();
        view.remove_positions(&gone, &[2]).unwrap();
        assert_matches_fresh(&view, &canonical, 3);
        assert_eq!(view.merge().tuples(), &[tuple!["dup"], tuple!["x"], tuple!["y"], tuple!["dup"]]);
    }

    #[test]
    fn diverged_views_refuse_to_route() {
        let canonical = rel(10);
        let mut view =
            ShardedRelation::partition(&canonical, &HashPartitioner, 2, Parallelism::Sequential)
                .unwrap();
        // wrong tuple for the position
        let err = view.remove_positions(&[tuple!["nope", "nope"]], &[0]).unwrap_err();
        assert!(err.message().contains("diverged"), "{err}");
        // out-of-range position
        let err = view
            .remove_positions(&[canonical.tuples()[0].clone()], &[99])
            .unwrap_err();
        assert!(err.message().contains("diverged"), "{err}");
        // the failed routing modified nothing
        assert_matches_fresh(&view, &canonical, 2);
    }

    #[test]
    fn store_routes_row_level_events_without_rebuilding() {
        let mut kb = KnowledgeBase::new();
        kb.register_source(rel(40));
        let mut store = ShardedStore::new(Sharding::Shards(4));
        let report = store.sync(&kb).unwrap();
        assert_eq!(report.mode, SyncMode::Rebuild);

        // grown re-registration → RowsAppended, routed
        let mut grown = kb.relation("listings").unwrap().clone();
        grown.push(tuple!["99 grown st", "M1 1AA"]).unwrap();
        kb.register_source(grown);
        // row-level removal and rewrite
        kb.remove_rows("listings", &[5, 6]).unwrap();
        kb.update_source("listings", &[(0, tuple!["0 rewritten", "EH1 1AA"])]).unwrap();

        let report = store.sync(&kb).unwrap();
        assert_eq!(report.mode, SyncMode::Routed);
        assert_eq!(report.routed_events, 3);
        assert_eq!(report.repartitioned, 0, "row-level events must not repartition");
        let view = store.view("listings").unwrap();
        assert_eq!(view.merge().tuples(), kb.relation("listings").unwrap().tuples());
        assert_eq!(store.stats().0, 1, "exactly the initial rebuild");

        // a second sync with no changes is a no-op
        assert_eq!(store.sync(&kb).unwrap().mode, SyncMode::Noop);
    }

    #[test]
    fn row_events_after_a_relation_rebuild_in_the_same_slice_are_not_double_applied() {
        // regression: RelationAdded (or RelationReplaced) followed by
        // row-level events for the same relation inside ONE sync slice —
        // the rebuild reads the FINAL catalog state, so routing the later
        // row events on top would duplicate rows (appends) or spuriously
        // fail validation (removals/rewrites)
        let mut kb = KnowledgeBase::new();
        kb.register_source(rel(8));
        let mut store = ShardedStore::new(Sharding::Shards(3));
        store.sync(&kb).unwrap();

        // new relation + grown re-registration + removal + rewrite, unsynced
        let mut b = Relation::empty(Schema::all_str("b", &["a"]));
        b.push(tuple!["first"]).unwrap();
        kb.register_source(b.clone()); // RelationAdded
        b.push(tuple!["second"]).unwrap();
        kb.register_source(b); // RowsAppended
        kb.remove_rows("b", &[0]).unwrap(); // RowsRemoved
        kb.update_source("b", &[(0, tuple!["rewritten"])]).unwrap(); // RowsReplaced

        let report = store.sync(&kb).unwrap();
        assert_eq!(report.mode, SyncMode::Routed);
        assert_eq!(report.repartitioned, 1, "only the added relation rebuilds");
        assert_eq!(
            store.view("b").unwrap().merge().tuples(),
            kb.relation("b").unwrap().tuples(),
            "row events after the rebuild must not re-apply"
        );
        // the pre-existing relation is untouched
        assert_eq!(
            store.view("listings").unwrap().merge().tuples(),
            kb.relation("listings").unwrap().tuples()
        );
    }

    #[test]
    fn replace_positions_rejects_malformed_positions_without_modifying() {
        let canonical = rel(6);
        let mut view =
            ShardedRelation::partition(&canonical, &HashPartitioner, 2, Parallelism::Sequential)
                .unwrap();
        let old = canonical.tuples()[5].clone();
        let new = tuple!["x", "y"];
        // unsorted positions with an out-of-range entry must error, not panic
        let err = view
            .replace_positions(&[old.clone(), old.clone()], &[new.clone(), new.clone()], &[99, 5], &HashPartitioner)
            .unwrap_err();
        assert!(err.message().contains("diverged"), "{err}");
        // duplicate positions rejected too
        let err = view
            .replace_positions(&[old.clone(), old], &[new.clone(), new], &[5, 5], &HashPartitioner)
            .unwrap_err();
        assert!(err.message().contains("diverged"), "{err}");
        assert_matches_fresh(&view, &canonical, 2);
    }

    #[test]
    fn relation_level_events_repartition_only_the_named_relation() {
        let mut kb = KnowledgeBase::new();
        kb.register_source(rel(20));
        let mut other = Relation::empty(Schema::all_str("other", &["a"]));
        other.push(tuple!["x"]).unwrap();
        kb.register_source(other);
        let mut store = ShardedStore::new(Sharding::Shards(3));
        store.sync(&kb).unwrap();

        // non-monotone replacement of one relation
        let mut replaced = Relation::empty(Schema::all_str("listings", &["street", "postcode"]));
        replaced.push(tuple!["only row", "M1 1AA"]).unwrap();
        kb.register_source(replaced);
        let report = store.sync(&kb).unwrap();
        assert_eq!(report.mode, SyncMode::Routed);
        assert_eq!(report.repartitioned, 1);
        assert_eq!(store.view("listings").unwrap().len(), 1);
        assert_eq!(store.view("other").unwrap().len(), 1);
    }

    #[test]
    fn scoped_store_maintains_only_scoped_relations() {
        let mut kb = KnowledgeBase::new();
        kb.register_source(rel(12));
        let mut other = Relation::empty(Schema::all_str("other", &["a"]));
        other.push(tuple!["x"]).unwrap();
        kb.register_source(other);

        let mut store = ShardedStore::new(Sharding::Shards(2));
        store.add_scope(["listings".to_string()]);
        store.sync(&kb).unwrap();
        assert!(store.view("listings").is_some());
        assert!(store.view("other").is_none(), "out-of-scope relation has no view");

        // events for out-of-scope relations route as no-ops
        let mut grown = kb.relation("other").unwrap().clone();
        grown.push(tuple!["y"]).unwrap();
        kb.register_source(grown);
        let report = store.sync(&kb).unwrap();
        assert_eq!(report.mode, SyncMode::Routed);
        assert_eq!(report.repartitioned, 0);
        assert!(store.view("other").is_none());

        // growing the scope materialises the missing view on the next sync
        store.add_scope(["other".to_string()]);
        let report = store.sync(&kb).unwrap();
        assert_eq!(report.repartitioned, 1, "newly scoped relation partitions");
        assert_eq!(
            store.view("other").unwrap().merge().tuples(),
            kb.relation("other").unwrap().tuples()
        );
        // and stays maintained from then on
        kb.remove_rows("other", &[0]).unwrap();
        let report = store.sync(&kb).unwrap();
        assert_eq!(report.mode, SyncMode::Routed);
        assert_eq!(
            store.view("other").unwrap().merge().tuples(),
            kb.relation("other").unwrap().tuples()
        );
        assert_eq!(store.stats().0, 1, "scope growth never forces a full rebuild");
    }

    #[test]
    fn lineage_change_forces_a_rebuild() {
        let mut kb = KnowledgeBase::new();
        kb.register_source(rel(10));
        let mut store = ShardedStore::new(Sharding::Shards(2));
        store.sync(&kb).unwrap();
        // a clone carries a fresh lineage: watermarks must not replay
        let clone = kb.clone();
        let report = store.sync(&clone).unwrap();
        assert_eq!(report.mode, SyncMode::Rebuild);
    }

    #[test]
    fn pruned_journal_window_forces_a_rebuild() {
        let mut kb = KnowledgeBase::new();
        kb.register_source(rel(4));
        let mut store = ShardedStore::new(Sharding::Shards(2));
        store.sync(&kb).unwrap();
        for i in 0..(crate::delta::DEFAULT_JOURNAL_CAPACITY + 8) {
            kb.stage_document(format!("d{i}"), "a\n1\n");
        }
        let report = store.sync(&kb).unwrap();
        assert_eq!(report.mode, SyncMode::Rebuild);
        assert_eq!(
            store.view("listings").unwrap().merge().tuples(),
            kb.relation("listings").unwrap().tuples()
        );
    }
}
