//! Property-based tests for the knowledge-base storage subsystem: the
//! event codec is the identity over every [`DeltaChange`] variant filled
//! with adversarial values, snapshots round-trip whole states, and the
//! write-ahead log recovers a strict prefix of its records from *any*
//! byte-level truncation — a torn tail is detected and discarded, never
//! misread.

use proptest::prelude::*;

use vada_common::{Schema, Tuple, Value};
use vada_kb::catalog::RelationKind;
use vada_kb::storage::codec::{decode_record, encode_record};
use vada_kb::storage::snapshot::{read_snapshot, write_snapshot};
use vada_kb::storage::{Snapshot, StoredRelation, Wal, WalRecord};
use vada_kb::{DeltaChange, DeltaEvent};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        Just(Value::Int(i64::MIN)),
        Just(Value::Int(i64::MAX)),
        Just(Value::Float(f64::NAN)),
        Just(Value::Float(-0.0)),
        Just(Value::Float(f64::NEG_INFINITY)),
        Just(Value::str("embedded\nnewline and \0 nul")),
        "[a-zA-Z0-9 £,.\"-]{0,10}".prop_map(Value::str),
    ]
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(arb_value(), 1..4).prop_map(Tuple::new)
}

fn arb_rows() -> impl Strategy<Value = Vec<Tuple>> {
    proptest::collection::vec(arb_tuple(), 0..5)
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z_][a-z0-9_]{0,8}".prop_map(|s| s)
}

fn arb_positions() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..1000, 0..5)
}

/// Every [`DeltaChange`] variant, with adversarial contents.
fn arb_change() -> impl Strategy<Value = DeltaChange> {
    prop_oneof![
        (arb_name(), arb_rows())
            .prop_map(|(relation, rows)| DeltaChange::RowsAppended { relation, rows }),
        arb_name().prop_map(|relation| DeltaChange::RelationAdded { relation }),
        (arb_name(), arb_rows(), arb_positions()).prop_map(|(relation, rows, positions)| {
            DeltaChange::RowsRemoved { relation, rows, positions }
        }),
        (arb_name(), arb_rows(), arb_rows(), arb_positions(), any::<bool>()).prop_map(
            |(relation, removed, added, positions, tail)| DeltaChange::RowsReplaced {
                relation,
                removed,
                added,
                positions,
                tail,
            }
        ),
        arb_name().prop_map(|relation| DeltaChange::RelationReplaced { relation }),
        arb_name().prop_map(|relation| DeltaChange::RelationRemoved { relation }),
        arb_name().prop_map(|detail| DeltaChange::AspectChanged { detail }),
    ]
}

const ASPECTS: &[&str] = &[
    "relations", "result", "intermediates", "target", "matches", "mappings", "selection",
    "cfds", "quality", "feedback", "user_context", "data_context", "staged",
];

fn arb_record() -> impl Strategy<Value = WalRecord> {
    (
        1u64..u64::MAX / 2,
        0usize..ASPECTS.len(),
        arb_change(),
        proptest::collection::vec(arb_tuple(), 0..3),
        any::<bool>(),
    )
        .prop_map(|(seq, aspect, change, rows, with_payload)| {
            // payload rows through a uniform one-column Null-able schema:
            // StoredRelation round-trips are pinned on *typed* relations in
            // the snapshot test below; here the payload just has to survive
            let payload = with_payload.then(|| StoredRelation {
                kind: RelationKind::Source,
                schema: Schema::all_str("payload", &["a", "b", "c"]),
                rows,
            });
            WalRecord {
                event: DeltaEvent { seq, aspect: ASPECTS[aspect], change },
                payload,
            }
        })
}

fn scratch(name: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "vada-kb-prop-{}-{name}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    /// decode∘encode is the identity over every change variant — the
    /// WAL's and the snapshot's shared foundation.
    #[test]
    fn every_change_variant_round_trips(record in arb_record()) {
        let mut bytes = Vec::new();
        encode_record(&record, &mut bytes);
        prop_assert_eq!(decode_record(&bytes).unwrap(), record);
    }

    /// Any byte-level truncation of a WAL recovers a strict prefix of the
    /// appended records, and re-opening the healed file is idempotent.
    #[test]
    fn wal_truncation_always_recovers_a_prefix(
        records in proptest::collection::vec(arb_record(), 1..5),
        cut_frac in 0.0f64..1.0,
        case in 0u64..u64::MAX,
    ) {
        // seqs must be strictly increasing for the log to accept them
        let mut records = records;
        for (i, r) in records.iter_mut().enumerate() {
            r.event.seq = (i as u64) + 1;
        }
        let dir = scratch("wal", case);
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path).unwrap();
        for r in &records {
            wal.append(r).unwrap();
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        let cut = (full.len() as f64 * cut_frac) as usize;
        std::fs::write(&path, &full[..cut]).unwrap();
        let (_w, recovered) = Wal::open(&path).unwrap();
        prop_assert!(records.starts_with(&recovered), "recovered set must be a prefix");
        // idempotence: the healed file reopens to the same records
        let (_w2, again) = Wal::open(&path).unwrap();
        prop_assert_eq!(recovered, again);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Snapshots round-trip whole states — journal window, watermarks,
    /// aspect versions, typed relations — byte-identically.
    #[test]
    fn snapshots_round_trip(
        version in 0u64..10_000,
        lineage in 0u64..10_000,
        pruned in 0u64..100,
        rows in proptest::collection::vec(("[a-z ]{0,8}", any::<i64>()), 0..6),
        changes in proptest::collection::vec(arb_change(), 0..4),
        case in 0u64..u64::MAX,
    ) {
        let schema = Schema::new(
            "typed",
            [("s", vada_common::AttrType::Str), ("i", vada_common::AttrType::Int)],
        ).unwrap();
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|(s, i)| Tuple::new(vec![Value::str(s), Value::Int(*i)]))
            .collect();
        let rel = vada_common::Relation::from_tuples(schema, tuples).unwrap();
        let events: Vec<DeltaEvent> = changes
            .into_iter()
            .enumerate()
            .map(|(i, change)| DeltaEvent {
                seq: pruned + 1 + i as u64,
                aspect: ASPECTS[i % ASPECTS.len()],
                change,
            })
            .collect();
        let snap = Snapshot {
            version,
            lineage,
            pruned_through: pruned,
            capacity: 4096,
            aspect_versions: vec![("relations".into(), version), ("staged".into(), 1)],
            events,
            relations: vec![StoredRelation::capture(RelationKind::Context, &rel)],
        };
        let dir = scratch("snap", case);
        write_snapshot(&dir, "snapshot.bin", &snap).unwrap();
        prop_assert_eq!(read_snapshot(&dir, "snapshot.bin").unwrap().unwrap(), snap);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
