//! Reference-driven repair (paper §2.3: "thereby to carry out repairs to
//! the mapping results").
//!
//! Two repair strategies, both powered by the data context:
//!
//! 1. **CFD lookup repair** — for each learned variable FD `X → A` that
//!    also holds on the reference relation, build a lookup `X values → A
//!    value` from the reference data; any result row whose `X` values hit
//!    the lookup gets its `A` overwritten (or a null filled) when it
//!    disagrees.
//! 2. **Fuzzy key repair** — typo'd values of a *key-like* attribute (the
//!    scenario's `street`) are snapped to the unique sufficiently-similar
//!    reference value sharing the row's `postcode`-like context.

use std::collections::HashMap;

use vada_common::text::{jaro_winkler, normalize};
use vada_common::{Relation, Value};
use vada_kb::CfdRule;

/// Repair configuration.
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Minimum Jaro-Winkler similarity for a fuzzy snap.
    pub fuzzy_threshold: f64,
    /// Fill nulls from CFD lookups (not just fix conflicts)?
    pub fill_nulls: bool,
    /// Maximum chase passes: a repaired cell can enable further repairs
    /// (a filled postcode unlocks the city lookup), so repair iterates to
    /// a fixpoint; the cap guards against adversarial cyclic references,
    /// mirroring the Datalog chase's termination guard.
    pub max_passes: usize,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig { fuzzy_threshold: 0.88, fill_nulls: true, max_passes: 8 }
    }
}

/// What a repair run changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Cells overwritten because they conflicted with a CFD lookup.
    pub cfd_fixes: usize,
    /// Nulls filled from CFD lookups.
    pub null_fills: usize,
    /// Values snapped by fuzzy matching.
    pub fuzzy_fixes: usize,
    /// Chase passes executed.
    pub passes: usize,
    /// Whether the chase reached a fixpoint (a pass that changed nothing)
    /// within the pass cap. When `true`, a further repair call is a no-op.
    pub converged: bool,
}

impl RepairReport {
    /// Total changed cells.
    pub fn total(&self) -> usize {
        self.cfd_fixes + self.null_fills + self.fuzzy_fixes
    }
}

/// One lookup table: `(lhs attrs, rhs attr, lhs values → rhs value)`.
type Lookup = (Vec<String>, String, HashMap<Vec<Value>, Value>);

/// Lookup tables built from the reference relation for each variable FD.
fn build_lookups(cfds: &[CfdRule], reference: &Relation) -> Vec<Lookup> {
    let mut out = Vec::new();
    for cfd in cfds {
        if cfd.rhs.1.is_some() || cfd.lhs.iter().any(|(_, p)| p.is_some()) {
            continue; // constant CFDs handled through violations, not lookup
        }
        let lhs_attrs: Vec<String> = cfd.lhs.iter().map(|(a, _)| a.clone()).collect();
        let lhs_cols: Option<Vec<usize>> = lhs_attrs
            .iter()
            .map(|a| reference.schema().index_of(a))
            .collect();
        let rhs_col = reference.schema().index_of(&cfd.rhs.0);
        let (Some(lhs_cols), Some(rhs_col)) = (lhs_cols, rhs_col) else {
            continue;
        };
        let mut table: HashMap<Vec<Value>, Value> = HashMap::new();
        let mut conflicted: std::collections::HashSet<Vec<Value>> = Default::default();
        for t in reference.iter() {
            if lhs_cols.iter().any(|&c| t[c].is_null()) || t[rhs_col].is_null() {
                continue;
            }
            let key: Vec<Value> = lhs_cols.iter().map(|&c| t[c].clone()).collect();
            match table.get(&key) {
                None => {
                    table.insert(key, t[rhs_col].clone());
                }
                Some(v) if *v == t[rhs_col] => {}
                Some(_) => {
                    conflicted.insert(key);
                }
            }
        }
        for key in conflicted {
            table.remove(&key); // FD does not actually hold here: no repair
        }
        out.push((lhs_attrs, cfd.rhs.0.clone(), table));
    }
    out
}

/// Repair `rel` in place using CFD lookups over `reference`, then fuzzy
/// key repair of `fuzzy_attr` grouped by `group_attr` (pass `None` to skip
/// the fuzzy pass). Iterates the pass to a fixpoint (chase-style): a
/// filled cell can enable further lookups.
pub fn repair_with_reference(
    cfg: &RepairConfig,
    rel: &mut Relation,
    cfds: &[CfdRule],
    reference: &Relation,
    fuzzy: Option<(&str, &str)>,
) -> RepairReport {
    let mut report = RepairReport::default();
    for pass in 0..cfg.max_passes.max(1) {
        let step = repair_pass(cfg, rel, cfds, reference, fuzzy);
        report.passes = pass + 1;
        if step.total() == 0 {
            report.converged = true;
            break;
        }
        report.cfd_fixes += step.cfd_fixes;
        report.null_fills += step.null_fills;
        report.fuzzy_fixes += step.fuzzy_fixes;
    }
    report
}

/// One repair pass over all CFD lookups plus the fuzzy pass.
fn repair_pass(
    cfg: &RepairConfig,
    rel: &mut Relation,
    cfds: &[CfdRule],
    reference: &Relation,
    fuzzy: Option<(&str, &str)>,
) -> RepairReport {
    let mut report = RepairReport::default();

    // 1. CFD lookup repair
    for (lhs_attrs, rhs_attr, table) in build_lookups(cfds, reference) {
        let lhs_cols: Option<Vec<usize>> = lhs_attrs
            .iter()
            .map(|a| rel.schema().index_of(a))
            .collect();
        let rhs_col = rel.schema().index_of(&rhs_attr);
        let (Some(lhs_cols), Some(rhs_col)) = (lhs_cols, rhs_col) else {
            continue;
        };
        for row in 0..rel.len() {
            let t = &rel.tuples()[row];
            if lhs_cols.iter().any(|&c| t[c].is_null()) {
                continue;
            }
            let key: Vec<Value> = lhs_cols.iter().map(|&c| t[c].clone()).collect();
            let Some(want) = table.get(&key) else { continue };
            let got = &t[rhs_col];
            if got.is_null() {
                if cfg.fill_nulls {
                    let fixed = t.with_value(rhs_col, want.clone());
                    rel.replace(row, fixed).expect("same arity");
                    report.null_fills += 1;
                }
            } else if got != want {
                let fixed = t.with_value(rhs_col, want.clone());
                rel.replace(row, fixed).expect("same arity");
                report.cfd_fixes += 1;
            }
        }
    }

    // 2. fuzzy key repair
    if let Some((fuzzy_attr, group_attr)) = fuzzy {
        let (Some(f_rel), Some(g_rel)) = (
            rel.schema().index_of(fuzzy_attr),
            rel.schema().index_of(group_attr),
        ) else {
            return report;
        };
        let (Some(f_ref), Some(g_ref)) = (
            reference.schema().index_of(fuzzy_attr),
            reference.schema().index_of(group_attr),
        ) else {
            return report;
        };
        // group reference values of fuzzy_attr by group_attr
        let mut by_group: HashMap<Value, Vec<&Value>> = HashMap::new();
        for t in reference.iter() {
            if !t[g_ref].is_null() && !t[f_ref].is_null() {
                by_group.entry(t[g_ref].clone()).or_default().push(&t[f_ref]);
            }
        }
        for row in 0..rel.len() {
            let t = &rel.tuples()[row];
            let (got, group) = (&t[f_rel], &t[g_rel]);
            if got.is_null() || group.is_null() {
                continue;
            }
            let Some(candidates) = by_group.get(group) else { continue };
            let got_norm = normalize(&got.to_string());
            if candidates
                .iter()
                .any(|c| normalize(&c.to_string()) == got_norm)
            {
                continue; // already a reference value
            }
            // unique candidate above the similarity threshold?
            let mut best: Option<(&Value, f64)> = None;
            let mut ambiguous = false;
            for c in candidates {
                let sim = jaro_winkler(&got_norm, &normalize(&c.to_string()));
                if sim >= cfg.fuzzy_threshold {
                    match best {
                        None => best = Some((c, sim)),
                        Some((prev, _)) if prev == *c => {}
                        Some(_) => ambiguous = true,
                    }
                }
            }
            if let (Some((want, _)), false) = (best, ambiguous) {
                let fixed = t.with_value(f_rel, want.clone());
                rel.replace(row, fixed).expect("same arity");
                report.fuzzy_fixes += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::{tuple, Schema};

    fn fd(lhs: &str, rhs: &str) -> CfdRule {
        CfdRule {
            id: "c".into(),
            relation: "address".into(),
            lhs: vec![(lhs.into(), None)],
            rhs: (rhs.into(), None),
            support: 10,
        }
    }

    fn reference() -> Relation {
        Relation::from_tuples(
            Schema::all_str("address", &["street", "city", "postcode"]),
            vec![
                tuple!["1 high st", "manchester", "M1 1AA"],
                tuple!["2 park rd", "manchester", "M1 1AB"],
                tuple!["3 kings ave", "edinburgh", "EH1 1AA"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn cfd_lookup_fixes_conflicts_and_fills_nulls() {
        let mut rel = Relation::from_tuples(
            Schema::all_str("result", &["street", "city", "postcode"]),
            vec![
                tuple!["1 high st", "leeds", "M1 1AA"], // wrong city
                vada_common::Tuple::new(vec![
                    Value::str("2 park rd"),
                    Value::Null, // missing city
                    Value::str("M1 1AB"),
                ]),
            ],
        )
        .unwrap();
        let report = repair_with_reference(
            &RepairConfig::default(),
            &mut rel,
            &[fd("postcode", "city")],
            &reference(),
            None,
        );
        assert_eq!(report.cfd_fixes, 1);
        assert_eq!(report.null_fills, 1);
        assert_eq!(rel.tuples()[0][1], Value::str("manchester"));
        assert_eq!(rel.tuples()[1][1], Value::str("manchester"));
    }

    #[test]
    fn fuzzy_repair_snaps_typos() {
        let mut rel = Relation::from_tuples(
            Schema::all_str("result", &["street", "postcode"]),
            vec![
                tuple!["1 hgih st", "M1 1AA"], // transposition typo
                tuple!["totally different", "M1 1AA"],
            ],
        )
        .unwrap();
        let reference = Relation::from_tuples(
            Schema::all_str("address", &["street", "postcode"]),
            vec![tuple!["1 high st", "M1 1AA"]],
        )
        .unwrap();
        let report = repair_with_reference(
            &RepairConfig::default(),
            &mut rel,
            &[],
            &reference,
            Some(("street", "postcode")),
        );
        assert_eq!(report.fuzzy_fixes, 1);
        assert_eq!(rel.tuples()[0][0], Value::str("1 high st"));
        // the dissimilar value is left alone
        assert_eq!(rel.tuples()[1][0], Value::str("totally different"));
    }

    #[test]
    fn repair_is_idempotent() {
        let mut rel = Relation::from_tuples(
            Schema::all_str("result", &["street", "city", "postcode"]),
            vec![tuple!["1 hgih st", "leeds", "M1 1AA"]],
        )
        .unwrap();
        let cfds = [fd("postcode", "city")];
        let r1 = repair_with_reference(
            &RepairConfig::default(),
            &mut rel,
            &cfds,
            &reference(),
            Some(("street", "postcode")),
        );
        assert!(r1.total() > 0);
        let r2 = repair_with_reference(
            &RepairConfig::default(),
            &mut rel,
            &cfds,
            &reference(),
            Some(("street", "postcode")),
        );
        assert_eq!(r2.total(), 0, "second pass should change nothing");
    }

    #[test]
    fn conflicting_reference_keys_do_not_repair() {
        // reference where postcode → city does NOT hold: lookup must skip it
        let reference = Relation::from_tuples(
            Schema::all_str("address", &["city", "postcode"]),
            vec![tuple!["manchester", "M1 1AA"], tuple!["leeds", "M1 1AA"]],
        )
        .unwrap();
        let mut rel = Relation::from_tuples(
            Schema::all_str("result", &["city", "postcode"]),
            vec![tuple!["bristol", "M1 1AA"]],
        )
        .unwrap();
        let report = repair_with_reference(
            &RepairConfig::default(),
            &mut rel,
            &[fd("postcode", "city")],
            &reference,
            None,
        );
        assert_eq!(report.total(), 0);
        assert_eq!(rel.tuples()[0][0], Value::str("bristol"));
    }

    #[test]
    fn repair_reduces_violations() {
        let cfds = [fd("postcode", "city")];
        let mut rel = Relation::from_tuples(
            Schema::all_str("result", &["street", "city", "postcode"]),
            vec![
                tuple!["1 high st", "manchester", "M1 1AA"],
                tuple!["1 high st", "leeds", "M1 1AA"],
            ],
        )
        .unwrap();
        let before = crate::violations::detect_violations(&rel, &cfds).len();
        assert!(before > 0);
        repair_with_reference(&RepairConfig::default(), &mut rel, &cfds, &reference(), None);
        let after = crate::violations::detect_violations(&rel, &cfds).len();
        assert_eq!(after, 0);
    }
}
