//! # vada-quality
//!
//! The **Quality activity** (paper Table 1 and §2.3): once the data context
//! supplies reference or master data, VADA can *learn* conditional
//! functional dependencies (CFDs) from it, *measure* the consistency of
//! wrangling results against them, *repair* violations using the reference
//! data, and attach quality metrics to sources and mappings which in turn
//! drive source/mapping selection under the user context.
//!
//! * [`cfd`] — a CTANE-style levelwise learner for (variable and constant)
//!   CFDs with minimality pruning.
//! * [`violations`] — CFD violation detection on arbitrary relations.
//! * [`repair`] — reference-driven repair: exact CFD lookups plus fuzzy
//!   street normalisation against the address list.
//! * [`metrics`] — completeness / consistency / (syntactic) accuracy
//!   estimators, the quality evidence the paper's user context trades off.
//! * [`profile`] — lightweight column profiling for reports.

pub mod cfd;
pub mod metrics;
pub mod profile;
pub mod repair;
pub mod violations;

pub use cfd::{learn_cfds, learn_cfds_with, CfdLearnConfig};
pub use metrics::{accuracy_against_reference, consistency, master_coverage};
pub use repair::{repair_with_reference, RepairConfig, RepairReport};
pub use violations::{detect_violations, Violation};
