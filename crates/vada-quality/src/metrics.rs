//! Quality metrics: the evidence the user context trades off
//! (paper §2.2: completeness can be estimated from non-null fractions,
//! consistency needs CFDs learned from the data context, accuracy needs a
//! reference population).

use std::collections::HashSet;

use vada_common::text::normalize;
use vada_common::{Relation, Result};
use vada_kb::CfdRule;

use crate::violations::{detect_violations, violating_row_count};

/// Consistency of a relation w.r.t. a CFD set: `1 − violating rows / rows`.
/// An empty relation is vacuously consistent.
pub fn consistency(rel: &Relation, cfds: &[CfdRule]) -> f64 {
    if rel.is_empty() {
        return 1.0;
    }
    let violations = detect_violations(rel, cfds);
    1.0 - violating_row_count(&violations) as f64 / rel.len() as f64
}

/// Syntactic accuracy of `attr` against a reference population: the
/// fraction of non-null values that appear in the reference column
/// (compared on normal forms). Returns 1.0 when the column has no values.
pub fn accuracy_against_reference(
    rel: &Relation,
    attr: &str,
    reference: &Relation,
    ref_attr: &str,
) -> Result<f64> {
    let col = rel.schema().require(attr)?;
    let ref_col = reference.schema().require(ref_attr)?;
    let population: HashSet<String> = reference
        .iter()
        .filter(|t| !t[ref_col].is_null())
        .map(|t| normalize(&t[ref_col].to_string()))
        .collect();
    let mut total = 0usize;
    let mut hits = 0usize;
    for t in rel.iter() {
        if t[col].is_null() {
            continue;
        }
        total += 1;
        if population.contains(&normalize(&t[col].to_string())) {
            hits += 1;
        }
    }
    Ok(if total == 0 { 1.0 } else { hits as f64 / total as f64 })
}

/// Coverage of master data: the fraction of distinct master keys present
/// in the relation (the completeness notion master data licenses).
pub fn master_coverage(
    rel: &Relation,
    attr: &str,
    master: &Relation,
    master_attr: &str,
) -> Result<f64> {
    let col = rel.schema().require(attr)?;
    let m_col = master.schema().require(master_attr)?;
    let keys: HashSet<String> = master
        .iter()
        .filter(|t| !t[m_col].is_null())
        .map(|t| normalize(&t[m_col].to_string()))
        .collect();
    if keys.is_empty() {
        return Ok(1.0);
    }
    let present: HashSet<String> = rel
        .iter()
        .filter(|t| !t[col].is_null())
        .map(|t| normalize(&t[col].to_string()))
        .collect();
    Ok(keys.intersection(&present).count() as f64 / keys.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::{tuple, Schema};
    use vada_kb::CfdRule;

    fn fd(lhs: &str, rhs: &str) -> CfdRule {
        CfdRule {
            id: "c".into(),
            relation: "r".into(),
            lhs: vec![(lhs.into(), None)],
            rhs: (rhs.into(), None),
            support: 5,
        }
    }

    #[test]
    fn consistency_counts_violating_rows() {
        let rel = Relation::from_tuples(
            Schema::all_str("r", &["pc", "city"]),
            vec![
                tuple!["M1", "manchester"],
                tuple!["M1", "manchester"],
                tuple!["M1", "leeds"],
                tuple!["EH1", "edinburgh"],
            ],
        )
        .unwrap();
        let c = consistency(&rel, &[fd("pc", "city")]);
        assert!((c - 0.75).abs() < 1e-12, "{c}");
        let empty = Relation::empty(Schema::all_str("r", &["pc", "city"]));
        assert_eq!(consistency(&empty, &[fd("pc", "city")]), 1.0);
    }

    #[test]
    fn accuracy_checks_population_membership() {
        let rel = Relation::from_tuples(
            Schema::all_str("r", &["pc"]),
            vec![tuple!["M1 1AA"], tuple!["BOGUS"], tuple!["EH1 1AA"]],
        )
        .unwrap();
        let reference = Relation::from_tuples(
            Schema::all_str("ref", &["postcode"]),
            vec![tuple!["M1 1AA"], tuple!["EH1 1AA"]],
        )
        .unwrap();
        let a = accuracy_against_reference(&rel, "pc", &reference, "postcode").unwrap();
        assert!((a - 2.0 / 3.0).abs() < 1e-12);
        assert!(accuracy_against_reference(&rel, "nope", &reference, "postcode").is_err());
    }

    #[test]
    fn master_coverage_measures_recall_of_keys() {
        let rel = Relation::from_tuples(
            Schema::all_str("r", &["street"]),
            vec![tuple!["1 high st"], tuple!["1 high st"]],
        )
        .unwrap();
        let master = Relation::from_tuples(
            Schema::all_str("m", &["street"]),
            vec![tuple!["1 high st"], tuple!["2 park rd"]],
        )
        .unwrap();
        let c = master_coverage(&rel, "street", &master, "street").unwrap();
        assert!((c - 0.5).abs() < 1e-12);
    }
}
