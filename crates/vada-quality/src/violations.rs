//! CFD violation detection on arbitrary relations.
//!
//! A CFD learned on a context relation is *checked* on any relation that
//! has the involved attributes (the wrangling result, a source, ...); CFDs
//! whose attributes are absent are skipped.

use std::collections::HashMap;

use vada_common::{Relation, Value};
use vada_kb::CfdRule;

/// A detected violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated CFD.
    pub cfd_id: String,
    /// Rows participating in the violation.
    pub rows: Vec<usize>,
    /// The offended attribute (the CFD's RHS).
    pub attr: String,
}

/// Resolve the column indices a CFD needs on `rel`; `None` if any is
/// missing.
fn resolve_columns(rel: &Relation, cfd: &CfdRule) -> Option<(Vec<usize>, usize)> {
    let lhs: Option<Vec<usize>> = cfd
        .lhs
        .iter()
        .map(|(a, _)| rel.schema().index_of(a))
        .collect();
    let rhs = rel.schema().index_of(&cfd.rhs.0)?;
    Some((lhs?, rhs))
}

/// Check whether a row matches the CFD's LHS patterns (nulls never match).
fn lhs_matches(rel: &Relation, row: usize, cfd: &CfdRule, lhs_cols: &[usize]) -> bool {
    for ((_, pattern), &col) in cfd.lhs.iter().zip(lhs_cols) {
        let v = &rel.tuples()[row][col];
        if v.is_null() {
            return false;
        }
        if let Some(p) = pattern {
            if v != p {
                return false;
            }
        }
    }
    true
}

/// Detect all violations of `cfds` on `rel`.
///
/// * Variable FDs `X → A`: rows that agree on `X` but not on `A`; the rows
///   deviating from the group's majority `A` value are reported.
/// * Constant CFDs `(X = x) → (A = a)`: rows matching the LHS pattern whose
///   `A` is non-null and differs from `a`.
pub fn detect_violations(rel: &Relation, cfds: &[CfdRule]) -> Vec<Violation> {
    let mut out = Vec::new();
    for cfd in cfds {
        let Some((lhs_cols, rhs_col)) = resolve_columns(rel, cfd) else {
            continue;
        };
        if let Some(want) = &cfd.rhs.1 {
            // constant CFD
            let mut rows = Vec::new();
            for row in 0..rel.len() {
                if !lhs_matches(rel, row, cfd, &lhs_cols) {
                    continue;
                }
                let got = &rel.tuples()[row][rhs_col];
                if !got.is_null() && got != want {
                    rows.push(row);
                }
            }
            if !rows.is_empty() {
                out.push(Violation { cfd_id: cfd.id.clone(), rows, attr: cfd.rhs.0.clone() });
            }
        } else {
            // variable FD: group by LHS values
            let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
            for row in 0..rel.len() {
                if !lhs_matches(rel, row, cfd, &lhs_cols) {
                    continue;
                }
                let key: Vec<Value> = lhs_cols
                    .iter()
                    .map(|&c| rel.tuples()[row][c].clone())
                    .collect();
                groups.entry(key).or_default().push(row);
            }
            let mut keys: Vec<&Vec<Value>> = groups.keys().collect();
            keys.sort();
            for key in keys {
                let rows = &groups[key];
                // count RHS values within the group
                let mut counts: HashMap<&Value, usize> = HashMap::new();
                for &row in rows {
                    let v = &rel.tuples()[row][rhs_col];
                    if !v.is_null() {
                        *counts.entry(v).or_default() += 1;
                    }
                }
                if counts.len() <= 1 {
                    continue;
                }
                let majority = counts
                    .iter()
                    .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
                    .map(|(v, _)| (*v).clone())
                    .expect("non-empty");
                let bad: Vec<usize> = rows
                    .iter()
                    .copied()
                    .filter(|&r| {
                        let v = &rel.tuples()[r][rhs_col];
                        !v.is_null() && *v != majority
                    })
                    .collect();
                if !bad.is_empty() {
                    out.push(Violation {
                        cfd_id: cfd.id.clone(),
                        rows: bad,
                        attr: cfd.rhs.0.clone(),
                    });
                }
            }
        }
    }
    out
}

/// The number of *distinct rows* involved in any violation.
pub fn violating_row_count(violations: &[Violation]) -> usize {
    let mut rows = std::collections::HashSet::new();
    for v in violations {
        rows.extend(v.rows.iter().copied());
    }
    rows.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::{tuple, Schema};

    fn fd(id: &str, lhs: &str, rhs: &str) -> CfdRule {
        CfdRule {
            id: id.into(),
            relation: "r".into(),
            lhs: vec![(lhs.into(), None)],
            rhs: (rhs.into(), None),
            support: 10,
        }
    }

    #[test]
    fn variable_fd_violation_found() {
        let rel = Relation::from_tuples(
            Schema::all_str("r", &["pc", "city"]),
            vec![
                tuple!["M1", "manchester"],
                tuple!["M1", "manchester"],
                tuple!["M1", "leeds"], // violator
                tuple!["EH1", "edinburgh"],
            ],
        )
        .unwrap();
        let v = detect_violations(&rel, &[fd("c0", "pc", "city")]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rows, vec![2]);
        assert_eq!(violating_row_count(&v), 1);
    }

    #[test]
    fn constant_cfd_violation_found() {
        let cfd = CfdRule {
            id: "c1".into(),
            relation: "r".into(),
            lhs: vec![("pc".into(), Some(Value::str("M1")))],
            rhs: ("city".into(), Some(Value::str("manchester"))),
            support: 4,
        };
        let rel = Relation::from_tuples(
            Schema::all_str("r", &["pc", "city"]),
            vec![
                tuple!["M1", "manchester"],
                tuple!["M1", "leeds"],
                tuple!["EH1", "leeds"], // different pattern: not checked
            ],
        )
        .unwrap();
        let v = detect_violations(&rel, &[cfd]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rows, vec![1]);
    }

    #[test]
    fn nulls_do_not_violate() {
        let rel = Relation::from_tuples(
            Schema::all_str("r", &["pc", "city"]),
            vec![
                tuple!["M1", "manchester"],
                vada_common::Tuple::new(vec![Value::str("M1"), Value::Null]),
            ],
        )
        .unwrap();
        assert!(detect_violations(&rel, &[fd("c0", "pc", "city")]).is_empty());
    }

    #[test]
    fn missing_attributes_skip_cfd() {
        let rel = Relation::from_tuples(
            Schema::all_str("r", &["other"]),
            vec![tuple!["x"]],
        )
        .unwrap();
        assert!(detect_violations(&rel, &[fd("c0", "pc", "city")]).is_empty());
    }

    #[test]
    fn clean_relation_has_no_violations() {
        let rel = Relation::from_tuples(
            Schema::all_str("r", &["pc", "city"]),
            vec![tuple!["M1", "manchester"], tuple!["EH1", "edinburgh"]],
        )
        .unwrap();
        assert!(detect_violations(&rel, &[fd("c0", "pc", "city")]).is_empty());
    }
}
