//! Levelwise CFD learning (CTANE-style) from reference/master data.
//!
//! We mine two dependency classes used by the repair and consistency
//! components:
//!
//! * **variable FDs** `X → A` (all patterns wildcards) — `X` functionally
//!   determines `A` on the training relation;
//! * **constant CFDs** `(B = b) → (A = a)` — within the tuples where
//!   `B = b`, attribute `A` is constantly `a` (mined for single-attribute
//!   LHS with a support threshold).
//!
//! Minimality: an FD `X → A` is suppressed when some `X' ⊂ X → A` already
//! holds. Tuples with nulls in the involved attributes are ignored, as is
//! conventional.

use std::collections::{BTreeSet, HashMap};

use vada_common::idgen::IdGen;
use vada_common::par::{self, Parallelism};
use vada_common::{Relation, Result, Value};
use vada_kb::CfdRule;

static CFD_IDS: IdGen = IdGen::new("cfd");

/// Learner configuration.
#[derive(Debug, Clone)]
pub struct CfdLearnConfig {
    /// Maximum LHS size for variable FDs.
    pub max_lhs: usize,
    /// Minimum number of non-null training tuples for any dependency.
    pub min_support: usize,
    /// Minimum LHS-group size for a *constant* CFD pattern (small groups
    /// produce coincidental constants).
    pub min_pattern_support: usize,
    /// Whether to mine constant CFDs at all.
    pub mine_constants: bool,
    /// Cap on emitted constant CFDs (largest support first).
    pub max_constant_cfds: usize,
}

impl Default for CfdLearnConfig {
    fn default() -> Self {
        CfdLearnConfig {
            max_lhs: 2,
            min_support: 5,
            min_pattern_support: 4,
            mine_constants: true,
            max_constant_cfds: 50,
        }
    }
}

/// Partition the rows of `rel` by the values of `cols`, ignoring rows with
/// nulls in those columns.
fn partition(rel: &Relation, cols: &[usize]) -> HashMap<Vec<Value>, Vec<usize>> {
    let mut parts: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    'rows: for (row, t) in rel.iter().enumerate() {
        let mut key = Vec::with_capacity(cols.len());
        for &c in cols {
            if t[c].is_null() {
                continue 'rows;
            }
            key.push(t[c].clone());
        }
        parts.entry(key).or_default().push(row);
    }
    parts
}

/// Does `X → A` hold (exactly) on the non-null rows? Returns the number of
/// supporting rows when it does.
fn fd_holds(rel: &Relation, lhs: &[usize], rhs: usize) -> Option<usize> {
    let parts = partition(rel, lhs);
    let mut support = 0usize;
    for rows in parts.values() {
        let mut value: Option<&Value> = None;
        for &row in rows {
            let v = &rel.tuples()[row][rhs];
            if v.is_null() {
                continue;
            }
            match value {
                None => value = Some(v),
                Some(prev) if prev == v => {}
                Some(_) => return None,
            }
            support += 1;
        }
    }
    Some(support)
}

/// Mine CFDs from a training relation (sequential).
pub fn learn_cfds(cfg: &CfdLearnConfig, rel: &Relation) -> Vec<CfdRule> {
    learn_cfds_with(cfg, rel, Parallelism::Sequential)
        .expect("sequential mining has no failure modes")
}

/// An FD/CFD candidate before it receives an id (workers produce these;
/// the caller assigns ids in deterministic merge order).
struct Candidate {
    lhs: Vec<(String, Option<Value>)>,
    rhs: (String, Option<Value>),
    support: usize,
    /// LHS column set, for minimality bookkeeping of variable FDs.
    lhs_cols: BTreeSet<usize>,
    rhs_col: usize,
}

/// Mine CFDs from a training relation, scanning the LHS candidate sets of
/// each level in parallel. The mining is embarrassingly parallel within a
/// level: minimality pruning only consults dependencies found at strictly
/// smaller LHS sizes (equal-size sets can never subsume one another), so
/// workers share a read-only snapshot of `found` and their candidates are
/// merged back in input order — rule order and content are identical at
/// every [`Parallelism`] level.
pub fn learn_cfds_with(
    cfg: &CfdLearnConfig,
    rel: &Relation,
    parallelism: Parallelism,
) -> Result<Vec<CfdRule>> {
    let n_attrs = rel.schema().arity();
    let attr_name = |i: usize| rel.schema().attr(i).name.clone();
    let mut out: Vec<CfdRule> = Vec::new();
    // (lhs column set, rhs column) of already-found variable FDs, for
    // minimality pruning
    let mut found: Vec<(BTreeSet<usize>, usize)> = Vec::new();

    // variable FDs, levelwise by LHS size
    let mut level: Vec<BTreeSet<usize>> =
        (0..n_attrs).map(|i| BTreeSet::from([i])).collect();
    for _size in 1..=cfg.max_lhs {
        let per_set: Vec<Vec<Candidate>> = par::par_try_map(
            parallelism,
            "quality/cfd-level-scan",
            &level,
            |_, lhs_set| {
                let lhs_vec: Vec<usize> = lhs_set.iter().copied().collect();
                let mut cands = Vec::new();
                for rhs in 0..n_attrs {
                    if lhs_set.contains(&rhs) {
                        continue;
                    }
                    // minimality: a subset already determines rhs
                    if found.iter().any(|(l, r)| *r == rhs && l.is_subset(lhs_set)) {
                        continue;
                    }
                    if let Some(support) = fd_holds(rel, &lhs_vec, rhs) {
                        if support >= cfg.min_support {
                            cands.push(Candidate {
                                lhs: lhs_vec.iter().map(|&c| (attr_name(c), None)).collect(),
                                rhs: (attr_name(rhs), None),
                                support,
                                lhs_cols: lhs_set.clone(),
                                rhs_col: rhs,
                            });
                        }
                    }
                }
                Ok(cands)
            },
        )?;
        for cand in per_set.into_iter().flatten() {
            found.push((cand.lhs_cols.clone(), cand.rhs_col));
            out.push(CfdRule {
                id: CFD_IDS.next_id(),
                relation: rel.name().to_string(),
                lhs: cand.lhs,
                rhs: cand.rhs,
                support: cand.support,
            });
        }
        // next level: expand each set by one attribute
        let mut next: BTreeSet<BTreeSet<usize>> = BTreeSet::new();
        for s in &level {
            for a in 0..n_attrs {
                if !s.contains(&a) {
                    let mut bigger = s.clone();
                    bigger.insert(a);
                    next.insert(bigger);
                }
            }
        }
        level = next.into_iter().collect();
    }

    // constant CFDs with single-attribute LHS, one worker item per LHS
    // attribute (deterministic: partitions are scanned in sorted key order)
    if cfg.mine_constants {
        let lhs_attrs: Vec<usize> = (0..n_attrs).collect();
        let per_lhs: Vec<Vec<Candidate>> = par::par_try_map(
            parallelism,
            "quality/cfd-constant-scan",
            &lhs_attrs,
            |_, &lhs| {
                let mut cands = Vec::new();
                let parts = partition(rel, &[lhs]);
                let mut keys: Vec<&Vec<Value>> = parts.keys().collect();
                keys.sort();
                for key in keys {
                    let rows = &parts[key];
                    if rows.len() < cfg.min_pattern_support {
                        continue;
                    }
                    for rhs in 0..n_attrs {
                        if rhs == lhs {
                            continue;
                        }
                        if found
                            .iter()
                            .any(|(l, r)| *r == rhs && l.len() == 1 && l.contains(&lhs))
                        {
                            continue; // subsumed by variable FD lhs → rhs
                        }
                        let mut value: Option<&Value> = None;
                        let mut ok = true;
                        let mut support = 0usize;
                        for &row in rows {
                            let v = &rel.tuples()[row][rhs];
                            if v.is_null() {
                                continue;
                            }
                            match value {
                                None => value = Some(v),
                                Some(prev) if prev == v => {}
                                Some(_) => {
                                    ok = false;
                                    break;
                                }
                            }
                            support += 1;
                        }
                        if ok && support >= cfg.min_pattern_support {
                            if let Some(v) = value {
                                cands.push(Candidate {
                                    lhs: vec![(attr_name(lhs), Some(key[0].clone()))],
                                    rhs: (attr_name(rhs), Some(v.clone())),
                                    support,
                                    lhs_cols: BTreeSet::from([lhs]),
                                    rhs_col: rhs,
                                });
                            }
                        }
                    }
                }
                Ok(cands)
            },
        )?;
        let mut constants: Vec<Candidate> = per_lhs.into_iter().flatten().collect();
        // ids are assigned after the deterministic sort, so the id ↔ rule
        // association no longer depends on scan order
        let display_of = |c: &Candidate| {
            CfdRule {
                id: String::new(),
                relation: rel.name().to_string(),
                lhs: c.lhs.clone(),
                rhs: c.rhs.clone(),
                support: c.support,
            }
            .display()
        };
        constants.sort_by(|a, b| {
            b.support
                .cmp(&a.support)
                .then_with(|| display_of(a).cmp(&display_of(b)))
        });
        constants.truncate(cfg.max_constant_cfds);
        for cand in constants {
            out.push(CfdRule {
                id: CFD_IDS.next_id(),
                relation: rel.name().to_string(),
                lhs: cand.lhs,
                rhs: cand.rhs,
                support: cand.support,
            });
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::{tuple, Schema};

    /// address-like training data where postcode → city holds.
    fn address() -> Relation {
        let schema = Schema::all_str("address", &["street", "city", "postcode"]);
        let rows = vec![
            tuple!["1 high st", "manchester", "M1 1AA"],
            tuple!["2 high st", "manchester", "M1 1AA"],
            tuple!["3 park rd", "manchester", "M1 1AB"],
            tuple!["4 park rd", "manchester", "M1 1AB"],
            tuple!["5 mill ln", "manchester", "M2 2AA"],
            tuple!["6 mill ln", "manchester", "M2 2AA"],
            tuple!["7 kings ave", "edinburgh", "EH1 1AA"],
            tuple!["8 kings ave", "edinburgh", "EH1 1AA"],
            tuple!["9 queens dr", "edinburgh", "EH1 1AB"],
            tuple!["10 queens dr", "edinburgh", "EH1 1AB"],
        ];
        Relation::from_tuples(schema, rows).unwrap()
    }

    fn has_variable_fd(cfds: &[CfdRule], lhs: &[&str], rhs: &str) -> bool {
        cfds.iter().any(|c| {
            c.rhs.0 == rhs
                && c.rhs.1.is_none()
                && c.lhs.len() == lhs.len()
                && c.lhs.iter().all(|(a, p)| p.is_none() && lhs.contains(&a.as_str()))
        })
    }

    #[test]
    fn postcode_determines_city() {
        let cfds = learn_cfds(&CfdLearnConfig::default(), &address());
        assert!(has_variable_fd(&cfds, &["postcode"], "city"), "{cfds:?}");
    }

    #[test]
    fn city_does_not_determine_postcode() {
        let cfds = learn_cfds(&CfdLearnConfig::default(), &address());
        assert!(!has_variable_fd(&cfds, &["city"], "postcode"));
    }

    #[test]
    fn minimality_suppresses_supersets() {
        let cfds = learn_cfds(&CfdLearnConfig::default(), &address());
        // postcode → city holds, so {street, postcode} → city must not be
        // reported
        assert!(!has_variable_fd(&cfds, &["street", "postcode"], "city"));
    }

    #[test]
    fn mined_fds_hold_on_training_data() {
        let rel = address();
        let cfds = learn_cfds(&CfdLearnConfig::default(), &rel);
        for cfd in &cfds {
            let violations = crate::violations::detect_violations(&rel, std::slice::from_ref(cfd));
            assert!(violations.is_empty(), "mined CFD {} violated on training data", cfd.display());
        }
    }

    #[test]
    fn constant_cfds_mined_with_support() {
        let schema = Schema::all_str("r", &["district", "region"]);
        let mut rows = Vec::new();
        for i in 0..6 {
            for _ in 0..4 {
                rows.push(tuple![format!("M{i}"), "north"]);
            }
        }
        // district → region holds variably here; force a non-FD case by one
        // exceptional row so only constants survive
        rows.push(tuple!["M0", "south"]);
        let rel = Relation::from_tuples(schema, rows).unwrap();
        let cfds = learn_cfds(
            &CfdLearnConfig { min_support: 100, ..Default::default() },
            &rel,
        );
        // variable FD suppressed by support (and broken by M0); constants on
        // M1..M5 should appear
        let constants: Vec<_> = cfds.iter().filter(|c| c.rhs.1.is_some()).collect();
        assert!(!constants.is_empty());
        for c in constants {
            assert!(c.lhs[0].1.is_some());
            assert_ne!(c.lhs[0].1.as_ref().unwrap(), &Value::str("M0"));
        }
    }

    #[test]
    fn nulls_are_ignored() {
        let schema = Schema::all_str("r", &["a", "b"]);
        let rows = vec![
            tuple!["x", "1"],
            tuple!["x", "1"],
            tuple!["x", "1"],
            tuple!["x", "1"],
            tuple!["x", "1"],
            vada_common::Tuple::new(vec![Value::str("x"), Value::Null]),
        ];
        let rel = Relation::from_tuples(schema, rows).unwrap();
        let cfds = learn_cfds(&CfdLearnConfig::default(), &rel);
        assert!(has_variable_fd(&cfds, &["a"], "b"));
    }

    #[test]
    fn parallel_mining_matches_sequential_rule_for_rule() {
        for rel in [address(), {
            // wide mixed relation with constants and nulls
            let schema = Schema::all_str("r", &["a", "b", "c", "d"]);
            let mut rows = Vec::new();
            for i in 0..40 {
                rows.push(tuple![
                    format!("k{}", i % 6),
                    format!("v{}", (i % 6) * 2),
                    format!("w{}", i % 3),
                    if i % 11 == 0 { "odd".to_string() } else { "even".to_string() }
                ]);
            }
            Relation::from_tuples(schema, rows).unwrap()
        }] {
            let cfg = CfdLearnConfig { max_lhs: 3, ..Default::default() };
            let seq = learn_cfds_with(&cfg, &rel, Parallelism::Sequential).unwrap();
            for par in [Parallelism::Threads(2), Parallelism::Threads(8)] {
                let got = learn_cfds_with(&cfg, &rel, par).unwrap();
                assert_eq!(got.len(), seq.len(), "{par:?}");
                for (a, b) in got.iter().zip(&seq) {
                    // ids come from a process-global counter; everything
                    // else must line up rule for rule
                    assert_eq!(a.display(), b.display(), "{par:?}");
                    assert_eq!(a.support, b.support, "{par:?}");
                }
            }
        }
    }

    #[test]
    fn support_threshold_prunes() {
        let schema = Schema::all_str("r", &["a", "b"]);
        let rel = Relation::from_tuples(schema, vec![tuple!["x", "1"]]).unwrap();
        let cfds = learn_cfds(&CfdLearnConfig::default(), &rel);
        assert!(cfds.is_empty());
    }
}
