//! Levelwise CFD learning (CTANE-style) from reference/master data.
//!
//! We mine two dependency classes used by the repair and consistency
//! components:
//!
//! * **variable FDs** `X → A` (all patterns wildcards) — `X` functionally
//!   determines `A` on the training relation;
//! * **constant CFDs** `(B = b) → (A = a)` — within the tuples where
//!   `B = b`, attribute `A` is constantly `a` (mined for single-attribute
//!   LHS with a support threshold).
//!
//! Minimality: an FD `X → A` is suppressed when some `X' ⊂ X → A` already
//! holds. Tuples with nulls in the involved attributes are ignored, as is
//! conventional.

use std::collections::{BTreeSet, HashMap};

use vada_common::idgen::IdGen;
use vada_common::{Relation, Value};
use vada_kb::CfdRule;

static CFD_IDS: IdGen = IdGen::new("cfd");

/// Learner configuration.
#[derive(Debug, Clone)]
pub struct CfdLearnConfig {
    /// Maximum LHS size for variable FDs.
    pub max_lhs: usize,
    /// Minimum number of non-null training tuples for any dependency.
    pub min_support: usize,
    /// Minimum LHS-group size for a *constant* CFD pattern (small groups
    /// produce coincidental constants).
    pub min_pattern_support: usize,
    /// Whether to mine constant CFDs at all.
    pub mine_constants: bool,
    /// Cap on emitted constant CFDs (largest support first).
    pub max_constant_cfds: usize,
}

impl Default for CfdLearnConfig {
    fn default() -> Self {
        CfdLearnConfig {
            max_lhs: 2,
            min_support: 5,
            min_pattern_support: 4,
            mine_constants: true,
            max_constant_cfds: 50,
        }
    }
}

/// Partition the rows of `rel` by the values of `cols`, ignoring rows with
/// nulls in those columns.
fn partition(rel: &Relation, cols: &[usize]) -> HashMap<Vec<Value>, Vec<usize>> {
    let mut parts: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    'rows: for (row, t) in rel.iter().enumerate() {
        let mut key = Vec::with_capacity(cols.len());
        for &c in cols {
            if t[c].is_null() {
                continue 'rows;
            }
            key.push(t[c].clone());
        }
        parts.entry(key).or_default().push(row);
    }
    parts
}

/// Does `X → A` hold (exactly) on the non-null rows? Returns the number of
/// supporting rows when it does.
fn fd_holds(rel: &Relation, lhs: &[usize], rhs: usize) -> Option<usize> {
    let parts = partition(rel, lhs);
    let mut support = 0usize;
    for rows in parts.values() {
        let mut value: Option<&Value> = None;
        for &row in rows {
            let v = &rel.tuples()[row][rhs];
            if v.is_null() {
                continue;
            }
            match value {
                None => value = Some(v),
                Some(prev) if prev == v => {}
                Some(_) => return None,
            }
            support += 1;
        }
    }
    Some(support)
}

/// Mine CFDs from a training relation.
pub fn learn_cfds(cfg: &CfdLearnConfig, rel: &Relation) -> Vec<CfdRule> {
    let n_attrs = rel.schema().arity();
    let attr_name = |i: usize| rel.schema().attr(i).name.clone();
    let mut out: Vec<CfdRule> = Vec::new();
    // (lhs column set, rhs column) of already-found variable FDs, for
    // minimality pruning
    let mut found: Vec<(BTreeSet<usize>, usize)> = Vec::new();

    // variable FDs, levelwise by LHS size
    let mut level: Vec<BTreeSet<usize>> =
        (0..n_attrs).map(|i| BTreeSet::from([i])).collect();
    for _size in 1..=cfg.max_lhs {
        for lhs_set in &level {
            let lhs_vec: Vec<usize> = lhs_set.iter().copied().collect();
            for rhs in 0..n_attrs {
                if lhs_set.contains(&rhs) {
                    continue;
                }
                // minimality: a subset already determines rhs
                if found
                    .iter()
                    .any(|(l, r)| *r == rhs && l.is_subset(lhs_set))
                {
                    continue;
                }
                if let Some(support) = fd_holds(rel, &lhs_vec, rhs) {
                    if support >= cfg.min_support {
                        found.push((lhs_set.clone(), rhs));
                        out.push(CfdRule {
                            id: CFD_IDS.next_id(),
                            relation: rel.name().to_string(),
                            lhs: lhs_vec.iter().map(|&c| (attr_name(c), None)).collect(),
                            rhs: (attr_name(rhs), None),
                            support,
                        });
                    }
                }
            }
        }
        // next level: expand each set by one attribute
        let mut next: BTreeSet<BTreeSet<usize>> = BTreeSet::new();
        for s in &level {
            for a in 0..n_attrs {
                if !s.contains(&a) {
                    let mut bigger = s.clone();
                    bigger.insert(a);
                    next.insert(bigger);
                }
            }
        }
        level = next.into_iter().collect();
    }

    // constant CFDs with single-attribute LHS
    if cfg.mine_constants {
        let mut constants: Vec<CfdRule> = Vec::new();
        for lhs in 0..n_attrs {
            // skip LHS attributes already determining everything variably —
            // a variable FD subsumes its constant instances
            let parts = partition(rel, &[lhs]);
            for (key, rows) in parts {
                if rows.len() < cfg.min_pattern_support {
                    continue;
                }
                for rhs in 0..n_attrs {
                    if rhs == lhs {
                        continue;
                    }
                    if found
                        .iter()
                        .any(|(l, r)| *r == rhs && l.len() == 1 && l.contains(&lhs))
                    {
                        continue; // subsumed by variable FD lhs → rhs
                    }
                    let mut value: Option<&Value> = None;
                    let mut ok = true;
                    let mut support = 0usize;
                    for &row in &rows {
                        let v = &rel.tuples()[row][rhs];
                        if v.is_null() {
                            continue;
                        }
                        match value {
                            None => value = Some(v),
                            Some(prev) if prev == v => {}
                            Some(_) => {
                                ok = false;
                                break;
                            }
                        }
                        support += 1;
                    }
                    if ok && support >= cfg.min_pattern_support {
                        if let Some(v) = value {
                            constants.push(CfdRule {
                                id: CFD_IDS.next_id(),
                                relation: rel.name().to_string(),
                                lhs: vec![(attr_name(lhs), Some(key[0].clone()))],
                                rhs: (attr_name(rhs), Some(v.clone())),
                                support,
                            });
                        }
                    }
                }
            }
        }
        constants.sort_by(|a, b| {
            b.support
                .cmp(&a.support)
                .then_with(|| a.display().cmp(&b.display()))
        });
        constants.truncate(cfg.max_constant_cfds);
        out.extend(constants);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::{tuple, Schema};

    /// address-like training data where postcode → city holds.
    fn address() -> Relation {
        let schema = Schema::all_str("address", &["street", "city", "postcode"]);
        let rows = vec![
            tuple!["1 high st", "manchester", "M1 1AA"],
            tuple!["2 high st", "manchester", "M1 1AA"],
            tuple!["3 park rd", "manchester", "M1 1AB"],
            tuple!["4 park rd", "manchester", "M1 1AB"],
            tuple!["5 mill ln", "manchester", "M2 2AA"],
            tuple!["6 mill ln", "manchester", "M2 2AA"],
            tuple!["7 kings ave", "edinburgh", "EH1 1AA"],
            tuple!["8 kings ave", "edinburgh", "EH1 1AA"],
            tuple!["9 queens dr", "edinburgh", "EH1 1AB"],
            tuple!["10 queens dr", "edinburgh", "EH1 1AB"],
        ];
        Relation::from_tuples(schema, rows).unwrap()
    }

    fn has_variable_fd(cfds: &[CfdRule], lhs: &[&str], rhs: &str) -> bool {
        cfds.iter().any(|c| {
            c.rhs.0 == rhs
                && c.rhs.1.is_none()
                && c.lhs.len() == lhs.len()
                && c.lhs.iter().all(|(a, p)| p.is_none() && lhs.contains(&a.as_str()))
        })
    }

    #[test]
    fn postcode_determines_city() {
        let cfds = learn_cfds(&CfdLearnConfig::default(), &address());
        assert!(has_variable_fd(&cfds, &["postcode"], "city"), "{cfds:?}");
    }

    #[test]
    fn city_does_not_determine_postcode() {
        let cfds = learn_cfds(&CfdLearnConfig::default(), &address());
        assert!(!has_variable_fd(&cfds, &["city"], "postcode"));
    }

    #[test]
    fn minimality_suppresses_supersets() {
        let cfds = learn_cfds(&CfdLearnConfig::default(), &address());
        // postcode → city holds, so {street, postcode} → city must not be
        // reported
        assert!(!has_variable_fd(&cfds, &["street", "postcode"], "city"));
    }

    #[test]
    fn mined_fds_hold_on_training_data() {
        let rel = address();
        let cfds = learn_cfds(&CfdLearnConfig::default(), &rel);
        for cfd in &cfds {
            let violations = crate::violations::detect_violations(&rel, std::slice::from_ref(cfd));
            assert!(violations.is_empty(), "mined CFD {} violated on training data", cfd.display());
        }
    }

    #[test]
    fn constant_cfds_mined_with_support() {
        let schema = Schema::all_str("r", &["district", "region"]);
        let mut rows = Vec::new();
        for i in 0..6 {
            for _ in 0..4 {
                rows.push(tuple![format!("M{i}"), "north"]);
            }
        }
        // district → region holds variably here; force a non-FD case by one
        // exceptional row so only constants survive
        rows.push(tuple!["M0", "south"]);
        let rel = Relation::from_tuples(schema, rows).unwrap();
        let cfds = learn_cfds(
            &CfdLearnConfig { min_support: 100, ..Default::default() },
            &rel,
        );
        // variable FD suppressed by support (and broken by M0); constants on
        // M1..M5 should appear
        let constants: Vec<_> = cfds.iter().filter(|c| c.rhs.1.is_some()).collect();
        assert!(!constants.is_empty());
        for c in constants {
            assert!(c.lhs[0].1.is_some());
            assert_ne!(c.lhs[0].1.as_ref().unwrap(), &Value::str("M0"));
        }
    }

    #[test]
    fn nulls_are_ignored() {
        let schema = Schema::all_str("r", &["a", "b"]);
        let rows = vec![
            tuple!["x", "1"],
            tuple!["x", "1"],
            tuple!["x", "1"],
            tuple!["x", "1"],
            tuple!["x", "1"],
            vada_common::Tuple::new(vec![Value::str("x"), Value::Null]),
        ];
        let rel = Relation::from_tuples(schema, rows).unwrap();
        let cfds = learn_cfds(&CfdLearnConfig::default(), &rel);
        assert!(has_variable_fd(&cfds, &["a"], "b"));
    }

    #[test]
    fn support_threshold_prunes() {
        let schema = Schema::all_str("r", &["a", "b"]);
        let rel = Relation::from_tuples(schema, vec![tuple!["x", "1"]]).unwrap();
        let cfds = learn_cfds(&CfdLearnConfig::default(), &rel);
        assert!(cfds.is_empty());
    }
}
