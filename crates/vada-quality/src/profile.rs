//! Lightweight column profiling for reports and the orchestration trace.

use std::collections::BTreeMap;

use vada_common::{Relation, Value};

/// Profile of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnProfile {
    /// Attribute name.
    pub attr: String,
    /// Row count.
    pub rows: usize,
    /// Non-null count.
    pub non_null: usize,
    /// Distinct non-null values.
    pub distinct: usize,
    /// Fraction of non-null values parseable as numbers.
    pub numeric_fraction: f64,
}

impl ColumnProfile {
    /// Completeness = non-null / rows (1.0 when empty).
    pub fn completeness(&self) -> f64 {
        if self.rows == 0 {
            1.0
        } else {
            self.non_null as f64 / self.rows as f64
        }
    }

    /// Uniqueness = distinct / non-null (1.0 when no values).
    pub fn uniqueness(&self) -> f64 {
        if self.non_null == 0 {
            1.0
        } else {
            self.distinct as f64 / self.non_null as f64
        }
    }
}

/// Profile every column of a relation.
pub fn profile_relation(rel: &Relation) -> Vec<ColumnProfile> {
    let mut out = Vec::new();
    for (i, a) in rel.schema().attributes().iter().enumerate() {
        let mut non_null = 0usize;
        let mut numeric = 0usize;
        let mut distinct: BTreeMap<&Value, ()> = BTreeMap::new();
        for t in rel.iter() {
            let v = &t[i];
            if v.is_null() {
                continue;
            }
            non_null += 1;
            distinct.insert(v, ());
            let is_num = match v {
                Value::Int(_) | Value::Float(_) => true,
                Value::Str(s) => s.trim().parse::<f64>().is_ok(),
                _ => false,
            };
            if is_num {
                numeric += 1;
            }
        }
        out.push(ColumnProfile {
            attr: a.name.clone(),
            rows: rel.len(),
            non_null,
            distinct: distinct.len(),
            numeric_fraction: if non_null == 0 { 0.0 } else { numeric as f64 / non_null as f64 },
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::{tuple, Schema, Tuple};

    #[test]
    fn profiles_counts_and_numerics() {
        let rel = Relation::from_tuples(
            Schema::all_str("r", &["a", "b"]),
            vec![
                tuple!["1", "x"],
                tuple!["2", "x"],
                Tuple::new(vec![Value::Null, Value::str("y")]),
            ],
        )
        .unwrap();
        let p = profile_relation(&rel);
        assert_eq!(p[0].non_null, 2);
        assert_eq!(p[0].numeric_fraction, 1.0);
        assert!((p[0].completeness() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p[1].distinct, 2);
        assert_eq!(p[1].numeric_fraction, 0.0);
        assert!((p[1].uniqueness() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_relation_profiles_cleanly() {
        let rel = Relation::empty(Schema::all_str("r", &["a"]));
        let p = profile_relation(&rel);
        assert_eq!(p[0].completeness(), 1.0);
        assert_eq!(p[0].uniqueness(), 1.0);
    }
}
