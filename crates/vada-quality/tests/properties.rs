//! Property-based tests for the quality components: learner soundness
//! (mined CFDs hold on their training data), repair idempotence and
//! convergence to consistency on repairable instances.

use proptest::prelude::*;

use vada_common::{Relation, Schema, Tuple, Value};
use vada_quality::{
    consistency, detect_violations, learn_cfds, repair_with_reference, CfdLearnConfig,
    RepairConfig,
};

/// Random three-column relations with small domains (so FDs appear and
/// break by chance) and occasional nulls.
fn arb_relation() -> impl Strategy<Value = Relation> {
    proptest::collection::vec(
        (
            proptest::option::of(0u8..4),
            proptest::option::of(0u8..3),
            proptest::option::of(0u8..3),
        ),
        1..40,
    )
    .prop_map(|rows| {
        let schema = Schema::all_str("r", &["a", "b", "c"]);
        let mut rel = Relation::empty(schema);
        for (a, b, c) in rows {
            let cell = |v: Option<u8>| v.map(|x| Value::str(format!("v{x}"))).unwrap_or(Value::Null);
            rel.push(Tuple::new(vec![cell(a), cell(b), cell(c)])).unwrap();
        }
        rel
    })
}

/// Like [`arb_relation`] but with no nulls anywhere.
fn arb_complete_relation() -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0u8..4, 0u8..3, 0u8..3), 1..40).prop_map(|rows| {
        let schema = Schema::all_str("r", &["a", "b", "c"]);
        let mut rel = Relation::empty(schema);
        for (a, b, c) in rows {
            let cell = |x: u8| Value::str(format!("v{x}"));
            rel.push(Tuple::new(vec![cell(a), cell(b), cell(c)])).unwrap();
        }
        rel
    })
}

proptest! {
    #[test]
    fn mined_cfds_hold_on_training_data(rel in arb_relation()) {
        let cfds = learn_cfds(
            &CfdLearnConfig { min_support: 2, min_pattern_support: 2, ..Default::default() },
            &rel,
        );
        let violations = detect_violations(&rel, &cfds);
        prop_assert!(
            violations.is_empty(),
            "learner emitted a CFD its own training data violates: {:?}",
            violations
        );
        prop_assert!((consistency(&rel, &cfds) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn converged_repair_is_idempotent(dirty in arb_relation(), reference in arb_relation()) {
        // the chase can refuse to converge on adversarial cyclic lookup
        // tables (it stops at the pass cap and reports converged = false);
        // whenever it *does* converge, a second call must be a no-op
        let cfds = learn_cfds(
            &CfdLearnConfig { min_support: 2, min_pattern_support: 2, ..Default::default() },
            &reference,
        );
        let mut rel = dirty.clone();
        let first = repair_with_reference(
            &RepairConfig::default(), &mut rel, &cfds, &reference, None,
        );
        prop_assume!(first.converged);
        let snapshot = rel.tuples().to_vec();
        let second = repair_with_reference(
            &RepairConfig::default(), &mut rel, &cfds, &reference, None,
        );
        prop_assert_eq!(second.total(), 0, "second repair call must be a no-op");
        prop_assert!(second.converged);
        prop_assert_eq!(rel.tuples(), snapshot.as_slice());
    }

    #[test]
    fn repairing_a_complete_reference_is_a_noop(reference in arb_complete_relation()) {
        // a null-free reference equals its own lookup values everywhere, so
        // repair must change nothing at all (with nulls present, fills can
        // legitimately cascade — see `converged_repair_is_idempotent`)
        let cfds = learn_cfds(
            &CfdLearnConfig { min_support: 2, min_pattern_support: 2, ..Default::default() },
            &reference,
        );
        let mut rel = reference.clone();
        let report = repair_with_reference(
            &RepairConfig::default(), &mut rel, &cfds, &reference, None,
        );
        prop_assert_eq!(report.total(), 0, "{:?}", report);
        prop_assert!(report.converged);
        prop_assert_eq!(rel.tuples(), reference.tuples());
        prop_assert!((consistency(&rel, &cfds) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn violation_rows_are_within_bounds(rel in arb_relation()) {
        let cfds = learn_cfds(
            &CfdLearnConfig { min_support: 2, min_pattern_support: 2, ..Default::default() },
            &rel,
        );
        for v in detect_violations(&rel, &cfds) {
            for row in v.rows {
                prop_assert!(row < rel.len());
            }
        }
    }
}
