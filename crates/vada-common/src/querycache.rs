//! The query-cache knob: whether directed query evaluation keeps its hash
//! indexes and demanded materializations alive *across* queries.
//!
//! [`QueryCaching::Off`] answers every query from scratch (the
//! pre-caching behaviour): shared hash indexes die with the run and a
//! repeated bound-pattern query re-derives its demanded view in full.
//! [`QueryCaching::Persistent`] lets the owning layers keep those
//! structures between queries — the knowledge base retains its
//! dependency-view indexes, and the datalog query cache maintains demanded
//! materializations through journal deltas — so a repeated query on an
//! unchanged base costs a lookup, and a query after a small edit costs
//! O(change).
//!
//! Like [`crate::Parallelism`], [`crate::Sharding`], [`crate::Evaluation`]
//! and [`crate::QueryMode`], the knob is safe to flip at any time: cached
//! answers are pinned **byte-identical** to cold directed runs — same
//! answer set, same order, same first error — by the root
//! `query_equivalence` differential suite, and every cache layer
//! invalidates on journal lineage or version divergence, never serving a
//! stale answer.

use crate::env;

/// Whether query-evaluation state may persist across queries.
///
/// The default is read from the `VADA_QUERY_CACHE` environment variable
/// (`1`/`true`/`on` select [`QueryCaching::Persistent`] under the shared
/// [`crate::env`] rules), mirroring the other `VADA_*` overrides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryCaching {
    /// Rebuild indexes and demanded views on every query.
    Off,
    /// Keep indexes and demanded views alive between queries, invalidating
    /// on journal lineage/version divergence and maintaining views through
    /// row-level deltas where provably order-safe.
    Persistent,
}

impl Default for QueryCaching {
    fn default() -> Self {
        QueryCaching::from_env()
    }
}

impl QueryCaching {
    /// Read the `VADA_QUERY_CACHE` override: `1`, `true` or `on`
    /// (case-insensitive) select [`QueryCaching::Persistent`]; anything
    /// else, including unset, selects [`QueryCaching::Off`].
    pub fn from_env() -> QueryCaching {
        if env::flag("VADA_QUERY_CACHE") {
            QueryCaching::Persistent
        } else {
            QueryCaching::Off
        }
    }

    /// Whether caches may persist across queries.
    pub fn is_enabled(&self) -> bool {
        matches!(self, QueryCaching::Persistent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_contract() {
        // the default must agree with whatever the ambient environment says
        // (CI runs the whole suite under VADA_QUERY_CACHE=1 on the
        // all-knobs leg)
        match std::env::var("VADA_QUERY_CACHE") {
            Ok(v) if crate::env::parse_flag(&v) => {
                assert_eq!(QueryCaching::from_env(), QueryCaching::Persistent)
            }
            _ => assert_eq!(QueryCaching::from_env(), QueryCaching::Off),
        }
        assert!(QueryCaching::Persistent.is_enabled());
        assert!(!QueryCaching::Off.is_enabled());
    }
}
