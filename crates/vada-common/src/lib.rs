//! # vada-common
//!
//! Shared substrate for the VADA data-wrangling architecture: typed nullable
//! [`Value`]s, relational [`Schema`]s and [`Relation`]s, a small CSV
//! reader/writer, string-similarity primitives used by the matching and
//! fusion components, and common error types.
//!
//! Every other crate in the workspace builds on these types; keeping them in
//! one dependency-free crate avoids cycles between the wrangling components.

pub mod codec;
pub mod csv;
pub mod durability;
pub mod env;
pub mod error;
pub mod evaluation;
pub mod idgen;
pub mod obs;
pub mod par;
pub mod querycache;
pub mod querymode;
pub mod relation;
pub mod schema;
pub mod sharding;
pub mod text;
pub mod tuple;
pub mod value;

pub use durability::Durability;
pub use error::{Result, VadaError};
pub use evaluation::Evaluation;
pub use obs::{Obs, ObsReport, ObsSink, SpanGuard};
pub use par::Parallelism;
pub use querycache::QueryCaching;
pub use querymode::QueryMode;
pub use sharding::{HashPartitioner, KeyPartitioner, Partitioner, Sharding};
pub use relation::Relation;
pub use schema::{AttrType, Attribute, Schema};
pub use tuple::Tuple;
pub use value::Value;
