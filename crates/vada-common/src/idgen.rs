//! Monotonic id generation for mappings, matches, trace entries, skolem
//! terms — anything that needs a workspace-unique identifier.

use std::sync::atomic::{AtomicU64, Ordering};

/// A thread-safe monotonic counter producing ids with a fixed prefix, e.g.
/// `m0, m1, m2, ...`.
#[derive(Debug)]
pub struct IdGen {
    prefix: &'static str,
    next: AtomicU64,
}

impl IdGen {
    /// A generator whose ids start at `<prefix>0`.
    pub const fn new(prefix: &'static str) -> IdGen {
        IdGen { prefix, next: AtomicU64::new(0) }
    }

    /// The next id as a string.
    pub fn next_id(&self) -> String {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        format!("{}{}", self.prefix, n)
    }

    /// The next id as a raw number.
    pub fn next_num(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_monotonic_and_prefixed() {
        let g = IdGen::new("m");
        assert_eq!(g.next_id(), "m0");
        assert_eq!(g.next_id(), "m1");
        assert_eq!(g.next_num(), 2);
    }

    #[test]
    fn concurrent_ids_unique() {
        use std::sync::Arc;
        let g = Arc::new(IdGen::new("t"));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                (0..100).map(|_| g.next_id()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<String> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n);
    }
}
