//! String-similarity primitives used by schema matching, instance matching,
//! duplicate detection and repair.
//!
//! All similarities are normalised to `[0, 1]` where `1` means identical.

use std::collections::HashSet;

/// Lower-case, trim, and collapse internal whitespace/punctuation to single
/// spaces. Matching and blocking both key on this normal form.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    normalize_append(s, &mut out);
    out
}

/// Append the normal form of `s` (see [`normalize`]) to `out`, touching
/// nothing before `out`'s current end. Lets hot loops (blocking-key
/// extraction) reuse one scratch buffer instead of allocating per cell.
pub fn normalize_append(s: &str, out: &mut String) {
    let start = out.len();
    let mut last_space = true;
    for c in s.trim().chars() {
        if c.is_alphanumeric() {
            out.extend(c.to_lowercase());
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    while out.len() > start && out.ends_with(' ') {
        out.pop();
    }
}

/// Levenshtein edit distance (unit costs).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Levenshtein similarity: `1 - dist / max_len`.
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Jaro similarity.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a = Vec::new();
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == *ca {
                b_used[j] = true;
                matches_a.push(i);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matched_b: Vec<char> = b_used
        .iter()
        .zip(&b)
        .filter(|(u, _)| **u)
        .map(|(_, c)| *c)
        .collect();
    let transpositions = matches_a
        .iter()
        .map(|&i| a[i])
        .zip(&matched_b)
        .filter(|(x, y)| x != *y)
        .count()
        / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro-Winkler similarity (common-prefix boost, `p = 0.1`, max prefix 4).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// Character q-grams of the normalised string (padding-free).
pub fn qgrams(s: &str, q: usize) -> HashSet<String> {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < q {
        if chars.is_empty() {
            return HashSet::new();
        }
        return [chars.iter().collect::<String>()].into();
    }
    chars.windows(q).map(|w| w.iter().collect()).collect()
}

/// Jaccard similarity of two sets.
pub fn jaccard<T: std::hash::Hash + Eq>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Token-level Jaccard over whitespace tokens of the normal form, with
/// camelCase and snake_case splitting — the workhorse of name-based schema
/// matching (`propertyType` vs `property_type` ≈ 1).
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    let ta: HashSet<String> = tokenize(a).into_iter().collect();
    let tb: HashSet<String> = tokenize(b).into_iter().collect();
    jaccard(&ta, &tb)
}

/// Split an identifier or phrase into lower-cased tokens (whitespace,
/// punctuation, snake_case and camelCase boundaries).
pub fn tokenize(s: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut prev_lower = false;
    for c in s.chars() {
        if c.is_alphanumeric() {
            if c.is_uppercase() && prev_lower && !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
            cur.extend(c.to_lowercase());
            prev_lower = c.is_lowercase() || c.is_numeric();
        } else {
            if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
            prev_lower = false;
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// q-gram (q=3) Jaccard similarity of the normal forms.
pub fn qgram_sim(a: &str, b: &str) -> f64 {
    jaccard(&qgrams(&normalize(a), 3), &qgrams(&normalize(b), 3))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_collapses() {
        assert_eq!(normalize("  12,  High-St. "), "12 high st");
        assert_eq!(normalize(""), "");
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
    }

    #[test]
    fn levenshtein_sim_bounds() {
        assert_eq!(levenshtein_sim("", ""), 1.0);
        assert_eq!(levenshtein_sim("abc", "abc"), 1.0);
        assert_eq!(levenshtein_sim("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_known_values() {
        let jw = jaro_winkler("martha", "marhta");
        assert!((jw - 0.9611).abs() < 1e-3, "got {jw}");
        assert_eq!(jaro_winkler("abc", "abc"), 1.0);
        assert_eq!(jaro_winkler("", ""), 1.0);
        assert_eq!(jaro_winkler("a", ""), 0.0);
    }

    #[test]
    fn jaro_symmetric() {
        for (a, b) in [("dwayne", "duane"), ("postcode", "post code"), ("x", "y")] {
            assert!((jaro(a, b) - jaro(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn tokenize_splits_cases() {
        assert_eq!(tokenize("propertyType"), vec!["property", "type"]);
        assert_eq!(tokenize("property_type"), vec!["property", "type"]);
        assert_eq!(tokenize("Property Type!"), vec!["property", "type"]);
    }

    #[test]
    fn token_jaccard_matches_identifier_styles() {
        assert_eq!(token_jaccard("propertyType", "property_type"), 1.0);
        assert!(token_jaccard("bedrooms", "price") < 0.2);
    }

    #[test]
    fn qgram_sim_typo_tolerant() {
        assert!(qgram_sim("postcode", "postcde") > 0.3);
        assert!(qgram_sim("postcode", "crime") < 0.2);
    }

    #[test]
    fn jaccard_empty_sets_equal() {
        let a: HashSet<u8> = HashSet::new();
        let b: HashSet<u8> = HashSet::new();
        assert_eq!(jaccard(&a, &b), 1.0);
    }
}
