//! Tuples: fixed-arity rows of [`Value`]s.

use std::fmt;
use std::ops::Index;

use crate::value::Value;

/// A row of values. Cheap to clone relative to `Vec` churn (boxed slice, no
/// spare capacity), hashable and totally ordered so it can serve as a join
/// or index key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: impl Into<Vec<Value>>) -> Tuple {
        Tuple(values.into().into_boxed_slice())
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// The value at `idx`, if in range.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.0.get(idx)
    }

    /// A new tuple keeping only the fields at `indices`, in order.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple(indices.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// A new tuple with field `idx` replaced by `value`.
    pub fn with_value(&self, idx: usize, value: Value) -> Tuple {
        let mut v: Vec<Value> = self.0.to_vec();
        v[idx] = value;
        Tuple::new(v)
    }

    /// Concatenate two tuples.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        Tuple(self.0.iter().chain(other.0.iter()).cloned().collect())
    }

    /// Number of null fields.
    pub fn null_count(&self) -> usize {
        self.0.iter().filter(|v| v.is_null()).count()
    }

    /// Iterate over the values.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.0[idx]
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Tuple {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Build a [`Tuple`] from a list of expressions convertible to [`Value`].
///
/// ```
/// use vada_common::{tuple, Value};
/// let t = tuple!["12 High St", 3, 250000.0];
/// assert_eq!(t.arity(), 3);
/// assert_eq!(t[1], Value::Int(3));
/// ```
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_and_index() {
        let t = tuple!["a", 1, 2.5, true];
        assert_eq!(t.arity(), 4);
        assert_eq!(t[0], Value::str("a"));
        assert_eq!(t[3], Value::Bool(true));
    }

    #[test]
    fn project_reorders() {
        let t = tuple![10, 20, 30];
        let p = t.project(&[2, 0]);
        assert_eq!(p, tuple![30, 10]);
    }

    #[test]
    fn concat_appends() {
        let t = tuple![1].concat(&tuple![2, 3]);
        assert_eq!(t, tuple![1, 2, 3]);
    }

    #[test]
    fn null_count_counts() {
        let t = Tuple::new(vec![Value::Null, Value::Int(1), Value::Null]);
        assert_eq!(t.null_count(), 2);
    }

    #[test]
    fn with_value_replaces() {
        let t = tuple![1, 2];
        assert_eq!(t.with_value(1, Value::Int(9)), tuple![1, 9]);
        // original untouched
        assert_eq!(t, tuple![1, 2]);
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(tuple![1, 2] < tuple![1, 3]);
        assert!(tuple![1] < tuple![1, 0]);
    }
}
