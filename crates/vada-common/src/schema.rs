//! Relational schemas: attribute names, types, and lookup helpers.

use std::fmt;

use crate::error::{Result, VadaError};

/// The type of an attribute (column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttrType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
}

impl AttrType {
    /// Stable lower-case name (`bool` / `int` / `float` / `str`).
    pub fn name(&self) -> &'static str {
        match self {
            AttrType::Bool => "bool",
            AttrType::Int => "int",
            AttrType::Float => "float",
            AttrType::Str => "str",
        }
    }

    /// Parse a type name as produced by [`AttrType::name`].
    pub fn parse(s: &str) -> Result<AttrType> {
        match s.trim().to_ascii_lowercase().as_str() {
            "bool" => Ok(AttrType::Bool),
            "int" | "integer" => Ok(AttrType::Int),
            "float" | "double" | "real" => Ok(AttrType::Float),
            "str" | "string" | "text" => Ok(AttrType::Str),
            other => Err(VadaError::Type(format!("unknown attribute type `{other}`"))),
        }
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A named, typed attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Attribute (column) name; unique within a schema.
    pub name: String,
    /// Attribute type.
    pub ty: AttrType,
}

impl Attribute {
    /// Construct an attribute.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Attribute {
        Attribute { name: name.into(), ty }
    }
}

/// A relation schema: a relation name plus an ordered list of attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Relation name.
    pub name: String,
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    ///
    /// Returns an error if two attributes share a name.
    pub fn new<N, I, S>(name: N, attrs: I) -> Result<Schema>
    where
        N: Into<String>,
        I: IntoIterator<Item = (S, AttrType)>,
        S: Into<String>,
    {
        let attributes: Vec<Attribute> = attrs
            .into_iter()
            .map(|(n, t)| Attribute::new(n, t))
            .collect();
        let mut seen = std::collections::HashSet::new();
        for a in &attributes {
            if !seen.insert(a.name.as_str()) {
                return Err(VadaError::Schema(format!(
                    "duplicate attribute `{}` in schema",
                    a.name
                )));
            }
        }
        Ok(Schema { name: name.into(), attributes })
    }

    /// Convenience constructor where every attribute is a string.
    pub fn all_str<N: Into<String>>(name: N, attrs: &[&str]) -> Schema {
        Schema::new(name, attrs.iter().map(|a| (a.to_string(), AttrType::Str)))
            .expect("attribute names must be unique")
    }

    /// Number of attributes (arity).
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// The ordered attributes.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Attribute names in order.
    pub fn attr_names(&self) -> Vec<&str> {
        self.attributes.iter().map(|a| a.name.as_str()).collect()
    }

    /// Index of the attribute named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// Index of `name`, or a [`VadaError::Schema`] naming the relation.
    pub fn require(&self, name: &str) -> Result<usize> {
        self.index_of(name).ok_or_else(|| {
            VadaError::Schema(format!(
                "relation `{}` has no attribute `{}` (has: {})",
                self.name,
                name,
                self.attr_names().join(", ")
            ))
        })
    }

    /// The attribute at `idx`.
    pub fn attr(&self, idx: usize) -> &Attribute {
        &self.attributes[idx]
    }

    /// A new schema with the same attributes under a different relation name.
    pub fn renamed(&self, name: impl Into<String>) -> Schema {
        Schema { name: name.into(), attributes: self.attributes.clone() }
    }

    /// A new schema projecting the given attributes (by name, in order).
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut attrs = Vec::with_capacity(names.len());
        for n in names {
            let idx = self.require(n)?;
            attrs.push(self.attributes[idx].clone());
        }
        Ok(Schema { name: self.name.clone(), attributes: attrs })
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn property_schema() -> Schema {
        Schema::new(
            "property",
            [
                ("price", AttrType::Int),
                ("street", AttrType::Str),
                ("postcode", AttrType::Str),
            ],
        )
        .unwrap()
    }

    #[test]
    fn index_lookup() {
        let s = property_schema();
        assert_eq!(s.index_of("street"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert!(s.require("missing").is_err());
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let r = Schema::new("r", [("a", AttrType::Int), ("a", AttrType::Str)]);
        assert!(r.is_err());
    }

    #[test]
    fn display_format() {
        let s = property_schema();
        assert_eq!(
            s.to_string(),
            "property(price: int, street: str, postcode: str)"
        );
    }

    #[test]
    fn project_preserves_types() {
        let s = property_schema();
        let p = s.project(&["postcode", "price"]).unwrap();
        assert_eq!(p.attr(0).ty, AttrType::Str);
        assert_eq!(p.attr(1).ty, AttrType::Int);
        assert!(s.project(&["nope"]).is_err());
    }

    #[test]
    fn type_parse_round_trip() {
        for t in [AttrType::Bool, AttrType::Int, AttrType::Float, AttrType::Str] {
            assert_eq!(AttrType::parse(t.name()).unwrap(), t);
        }
        assert!(AttrType::parse("blob").is_err());
    }
}
