//! The durability knob: whether the knowledge base persists its delta
//! events to an on-disk write-ahead log.
//!
//! This mirrors the [`crate::par::Parallelism`] / [`crate::sharding::Sharding`]
//! pattern — an enum with an environment-variable default (`VADA_WAL`) so an
//! operator can make every `Wrangler` in a process durable without touching
//! call sites — with one structural difference: durability is a property of
//! the `KnowledgeBase` itself, not of how transducers are scheduled, so the
//! knob is consumed by `Wrangler`/`KnowledgeBase` rather than broadcast
//! through the orchestrator config to each transducer.

use std::path::PathBuf;

/// Whether (and where) the knowledge base writes a durable log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Durability {
    /// In-memory only (the pre-durability behaviour): a process restart
    /// loses the catalog and every consumer rebuilds from scratch.
    Off,
    /// Append every delta event to a write-ahead log under this directory
    /// (with periodic snapshots + log compaction), so the knowledge base
    /// can be reopened byte-identically after a crash.
    Wal(PathBuf),
}

impl Default for Durability {
    fn default() -> Self {
        Durability::from_env()
    }
}

impl Durability {
    /// Read the `VADA_WAL` override:
    ///
    /// - unset, empty, `0`, or `off` (the shared [`crate::env`]
    ///   off-switch rules) → [`Durability::Off`]
    /// - the literal `tmpdir` (case-insensitive) → a `vada-wal` directory
    ///   under [`std::env::temp_dir`] — the spelling the CI tier-1 leg uses
    /// - anything else → treated as a directory path
    pub fn from_env() -> Durability {
        match std::env::var("VADA_WAL") {
            Err(_) => Durability::Off,
            Ok(raw) => {
                let v = raw.trim();
                if crate::env::parse_off(v) {
                    Durability::Off
                } else if v.eq_ignore_ascii_case("tmpdir") {
                    Durability::Wal(std::env::temp_dir().join("vada-wal"))
                } else {
                    Durability::Wal(PathBuf::from(v))
                }
            }
        }
    }

    /// Whether a write-ahead log is in play.
    pub fn is_durable(&self) -> bool {
        matches!(self, Durability::Wal(_))
    }

    /// The WAL base directory, if durable.
    pub fn path(&self) -> Option<&std::path::Path> {
        match self {
            Durability::Off => None,
            Durability::Wal(p) => Some(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // `from_env` itself is covered indirectly: tests must not mutate the
    // process environment (the suite is multi-threaded), so these exercise
    // the pure accessors and the parsing helper on literal inputs instead.

    #[test]
    fn off_is_not_durable() {
        assert!(!Durability::Off.is_durable());
        assert_eq!(Durability::Off.path(), None);
    }

    #[test]
    fn wal_exposes_path() {
        let d = Durability::Wal(PathBuf::from("/tmp/x"));
        assert!(d.is_durable());
        assert_eq!(d.path(), Some(std::path::Path::new("/tmp/x")));
    }
}
