//! Shared parsing rules for the `VADA_*` environment knobs.
//!
//! Every knob used to carry its own ad-hoc parser: `VADA_MAGIC` and
//! `VADA_INCREMENTAL` accepted `1|true|on` case-insensitively,
//! `VADA_THREADS` and `VADA_SHARDS` parsed bare integers, and `VADA_WAL`
//! had a third spelling for "off". The knobs now agree on one set of
//! trim/case rules, defined here:
//!
//! - **flags** ([`parse_flag`]): `1`, `true`, or `on` — case-insensitive,
//!   surrounding whitespace ignored — mean *enabled*; anything else
//!   (including unset, empty, and garbage) means *disabled*.
//! - **counts** ([`parse_count`]): a bare non-negative integer, surrounding
//!   whitespace ignored; anything unparseable reads as absent, letting the
//!   knob fall back to its default rather than erroring at startup.
//! - **off-switches** ([`parse_off`]): empty, `0`, or `off` —
//!   case-insensitive, whitespace ignored — for knobs whose *value* is a
//!   payload (a WAL path) and which need an explicit disabled spelling.
//!
//! The parsers are pure functions over string slices so they can be tested
//! exhaustively without mutating the process environment (the test suite is
//! multi-threaded; `std::env::set_var` would race). The [`flag`] and
//! [`count`] wrappers do the `std::env::var` read.

/// Whether a flag knob's value means *enabled*: `1`, `true`, or `on`,
/// case-insensitive, surrounding whitespace ignored.
pub fn parse_flag(v: &str) -> bool {
    matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "true" | "on")
}

/// A count knob's value as a non-negative integer, if it parses as one
/// after trimming; `None` for anything else (garbage falls back to the
/// knob's default rather than erroring).
pub fn parse_count(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok()
}

/// Whether a payload knob's value means *disabled*: empty, `0`, or `off`,
/// case-insensitive, surrounding whitespace ignored.
pub fn parse_off(v: &str) -> bool {
    let v = v.trim();
    v.is_empty() || v == "0" || v.eq_ignore_ascii_case("off")
}

/// Read an environment flag under the shared rules: unset reads as
/// disabled.
pub fn flag(name: &str) -> bool {
    std::env::var(name).map(|v| parse_flag(&v)).unwrap_or(false)
}

/// Read an environment count under the shared rules: unset or unparseable
/// reads as absent.
pub fn count(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| parse_count(&v))
}

#[cfg(test)]
mod tests {
    use super::*;

    // parsers only: tests must not mutate the process environment (the
    // suite is multi-threaded), so the `flag`/`count` readers are covered
    // by each knob's ambient-tolerant `env_contract` test instead.

    #[test]
    fn flags_accept_the_three_spellings_case_insensitively() {
        for v in ["1", "true", "on", "TRUE", "On", " 1 ", "\ttrue\n", " ON "] {
            assert!(parse_flag(v), "{v:?} should enable");
        }
    }

    #[test]
    fn flags_reject_everything_else() {
        for v in ["", "0", "off", "false", "yes", "2", "enabled", "o n", "tru e", "1x", "☃"] {
            assert!(!parse_flag(v), "{v:?} should disable");
        }
    }

    #[test]
    fn counts_parse_trimmed_integers_only() {
        assert_eq!(parse_count("4"), Some(4));
        assert_eq!(parse_count(" 16\n"), Some(16));
        assert_eq!(parse_count("0"), Some(0));
        for v in ["", "four", "-2", "3.5", "0x10", "1 2", "∞"] {
            assert_eq!(parse_count(v), None, "{v:?} should not parse");
        }
    }

    #[test]
    fn off_switch_accepts_its_three_spellings() {
        for v in ["", "0", "off", "OFF", " Off ", "  ", "\t0 "] {
            assert!(parse_off(v), "{v:?} should read as off");
        }
        for v in ["1", "on", "tmpdir", "/var/wal", "0ff", "of f"] {
            assert!(!parse_off(v), "{v:?} should not read as off");
        }
    }
}
