//! Error types shared across the VADA workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T, E = VadaError> = std::result::Result<T, E>;

/// The error type used by every VADA crate.
///
/// Variants are deliberately coarse: each one names the subsystem that
/// produced the error and carries a human-readable message. Call sites that
/// need to react programmatically match on the variant, everything else
/// bubbles up to the orchestrator which records the failure in the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VadaError {
    /// A schema lookup failed (unknown relation or attribute).
    Schema(String),
    /// A value could not be parsed or coerced to the expected type.
    Type(String),
    /// Malformed CSV input.
    Csv(String),
    /// Datalog parse error (position-annotated).
    Parse(String),
    /// Datalog program is unsafe or not stratifiable.
    Program(String),
    /// Datalog evaluation failed (e.g. chase termination guard tripped).
    Eval(String),
    /// The knowledge base rejected an operation.
    Kb(String),
    /// A transducer failed while running.
    Transducer(String),
    /// User-context / AHP input is invalid (e.g. inconsistent matrix shape).
    Context(String),
    /// A parallel stage failed (captured worker panic, named stage).
    Parallel(String),
    /// Durable storage failed (WAL/snapshot I/O, corrupt or truncated
    /// records, codec mismatches).
    Storage(String),
    /// The observability layer failed (sink I/O, sink panic, malformed
    /// telemetry). Never aborts a pipeline run — surfaced sticky through
    /// `obs_health()`.
    Obs(String),
    /// Anything else.
    Other(String),
}

impl VadaError {
    /// The human-readable message carried by this error.
    pub fn message(&self) -> &str {
        match self {
            VadaError::Schema(m)
            | VadaError::Type(m)
            | VadaError::Csv(m)
            | VadaError::Parse(m)
            | VadaError::Program(m)
            | VadaError::Eval(m)
            | VadaError::Kb(m)
            | VadaError::Transducer(m)
            | VadaError::Context(m)
            | VadaError::Parallel(m)
            | VadaError::Storage(m)
            | VadaError::Obs(m)
            | VadaError::Other(m) => m,
        }
    }

    /// Short stable tag naming the subsystem, used in traces and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            VadaError::Schema(_) => "schema",
            VadaError::Type(_) => "type",
            VadaError::Csv(_) => "csv",
            VadaError::Parse(_) => "parse",
            VadaError::Program(_) => "program",
            VadaError::Eval(_) => "eval",
            VadaError::Kb(_) => "kb",
            VadaError::Transducer(_) => "transducer",
            VadaError::Context(_) => "context",
            VadaError::Parallel(_) => "parallel",
            VadaError::Storage(_) => "storage",
            VadaError::Obs(_) => "obs",
            VadaError::Other(_) => "other",
        }
    }
}

impl fmt::Display for VadaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.kind(), self.message())
    }
}

impl std::error::Error for VadaError {}

impl From<std::io::Error> for VadaError {
    fn from(e: std::io::Error) -> Self {
        VadaError::Other(format!("io: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = VadaError::Parse("unexpected token at 1:4".into());
        assert_eq!(e.to_string(), "parse error: unexpected token at 1:4");
        assert_eq!(e.kind(), "parse");
        assert_eq!(e.message(), "unexpected token at 1:4");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: VadaError = io.into();
        assert_eq!(e.kind(), "other");
        assert!(e.message().contains("gone"));
    }

    #[test]
    fn all_kinds_are_distinct() {
        let kinds = [
            VadaError::Schema(String::new()).kind(),
            VadaError::Type(String::new()).kind(),
            VadaError::Csv(String::new()).kind(),
            VadaError::Parse(String::new()).kind(),
            VadaError::Program(String::new()).kind(),
            VadaError::Eval(String::new()).kind(),
            VadaError::Kb(String::new()).kind(),
            VadaError::Transducer(String::new()).kind(),
            VadaError::Context(String::new()).kind(),
            VadaError::Parallel(String::new()).kind(),
            VadaError::Storage(String::new()).kind(),
            VadaError::Obs(String::new()).kind(),
            VadaError::Other(String::new()).kind(),
        ];
        let set: std::collections::HashSet<_> = kinds.iter().collect();
        assert_eq!(set.len(), kinds.len());
    }
}
