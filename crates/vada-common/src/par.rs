//! Deterministic chunked parallelism over `std::thread`.
//!
//! Every hot loop in the pipeline (pairwise similarity, per-stratum rule
//! passes, batched CSV ingest) funnels through the two combinators here, so
//! one module carries the whole determinism argument:
//!
//! - **Chunked, not work-stealing.** The input slice is split into one
//!   contiguous chunk per worker; workers never exchange items, so the
//!   assignment of item → worker is a pure function of `(len, workers)`.
//! - **Result order = input order.** Per-worker outputs are spliced back in
//!   chunk order, so the caller observes exactly the sequence a sequential
//!   loop would have produced.
//! - **Deterministic failure.** The error (or captured panic) with the
//!   *lowest input index* wins, which is the same error a sequential loop
//!   would have stopped on. Panics are caught per item and surfaced as
//!   [`VadaError::Parallel`] naming the stage — never a hang or abort.
//!
//! Because of these three properties, [`Parallelism::Sequential`] and
//! [`Parallelism::Threads(n)`](Parallelism::Threads) are observably
//! identical for any deterministic item function; both paths stay live
//! forever and are pinned to each other by the root
//! `parallel_equivalence` differential suite.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::error::{Result, VadaError};

/// How much parallelism a pipeline stage may use.
///
/// The default is read from the `VADA_THREADS` environment variable
/// (unset, `0`, or `1` mean sequential), so an operator can switch the
/// whole pipeline over without touching call sites; the determinism
/// guarantee above makes the override safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Run on the calling thread.
    Sequential,
    /// Run on up to `n` scoped worker threads (clamped to
    /// [`MAX_WORKERS`]; 0 and 1 behave like sequential).
    Threads(usize),
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::from_env()
    }
}

impl Parallelism {
    /// Read the `VADA_THREADS` override: `>= 2` (under the shared
    /// [`crate::env`] count rules) selects [`Parallelism::Threads`],
    /// anything else (including unset or unparseable) selects
    /// [`Parallelism::Sequential`].
    pub fn from_env() -> Parallelism {
        match crate::env::count("VADA_THREADS") {
            Some(n) if n >= 2 => Parallelism::Threads(n),
            _ => Parallelism::Sequential,
        }
    }

    /// Number of workers this level actually runs (at least 1, at most
    /// [`MAX_WORKERS`] — so labels and telemetry derived from this value
    /// always match real execution).
    pub fn workers(&self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => (*n).clamp(1, MAX_WORKERS),
        }
    }

    /// Whether more than one worker may run.
    pub fn is_parallel(&self) -> bool {
        self.workers() > 1
    }
}

/// Hard ceiling on spawned workers per call. Oversubscription beyond the
/// core count is allowed (it is how the differential suites exercise real
/// multi-threading on small machines), but an absurd `VADA_THREADS` must
/// not turn into a one-thread-per-item spawn storm — `Scope::spawn` panics
/// outside any catch_unwind when the OS refuses a thread.
pub const MAX_WORKERS: usize = 256;

fn effective_workers(par: Parallelism, items: usize) -> usize {
    par.workers().min(items)
}

/// Run one item under a panic guard, converting a panic into
/// [`VadaError::Parallel`] that names the stage and the item.
fn run_one<T, R, F>(stage: &str, idx: usize, item: &T, f: &F) -> Result<R>
where
    F: Fn(usize, &T) -> Result<R>,
{
    match catch_unwind(AssertUnwindSafe(|| f(idx, item))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&'static str>() {
                *s
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.as_str()
            } else {
                "non-string panic payload"
            };
            Err(VadaError::Parallel(format!(
                "stage `{stage}` panicked on item {idx}: {msg}"
            )))
        }
    }
}

/// Fallible parallel map with sequential semantics: applies `f` to every
/// item and returns the results **in input order**, or the failure with
/// the lowest input index (exactly what a sequential loop would return).
/// Panics inside `f` are captured (on both paths) and surfaced as
/// [`VadaError::Parallel`] naming `stage`.
pub fn par_try_map<T, R, F>(par: Parallelism, stage: &str, items: &[T], f: F) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Result<R> + Sync,
{
    let workers = effective_workers(par, items.len());
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| run_one(stage, i, t, &f))
            .collect();
    }
    let chunk = items.len().div_ceil(workers);
    let per_worker: Vec<Result<Vec<R>, (usize, VadaError)>> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(w, slice)| {
                scope.spawn(move || {
                    let base = w * chunk;
                    let mut out = Vec::with_capacity(slice.len());
                    for (off, item) in slice.iter().enumerate() {
                        match run_one(stage, base + off, item, f) {
                            Ok(r) => out.push(r),
                            Err(e) => return Err((base + off, e)),
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panics are captured per item"))
            .collect()
    });
    // Chunks cover ascending index ranges, so the first failing worker (in
    // chunk order) holds the lowest-index failure — but a failure only
    // matches the sequential outcome if every earlier chunk fully
    // succeeded, which the ordered scan below guarantees.
    let mut results = Vec::with_capacity(items.len());
    for wr in per_worker {
        match wr {
            Ok(mut v) => results.append(&mut v),
            Err((_, e)) => return Err(e),
        }
    }
    Ok(results)
}

/// Infallible variant of [`par_try_map`]: only panics inside `f` can
/// produce an error.
pub fn par_map<T, R, F>(par: Parallelism, stage: &str, items: &[T], f: F) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_try_map(par, stage, items, |i, t| Ok(f(i, t)))
}

/// Parallel fold over contiguous chunks: each worker reduces one chunk
/// (receiving the chunk's base index and slice, so it can keep per-worker
/// scratch state), and the per-chunk accumulators come back **in chunk
/// order**. The number of chunks varies with the worker count, so callers
/// must merge accumulators with a chunking-invariant operation (e.g.
/// key-keyed maps whose per-key lists stay in ascending row order) to
/// preserve the sequential-equivalence guarantee.
pub fn par_chunks<T, A, F>(par: Parallelism, stage: &str, items: &[T], f: F) -> Result<Vec<A>>
where
    T: Sync,
    A: Send,
    F: Fn(usize, &[T]) -> Result<A> + Sync,
{
    if items.is_empty() {
        return Ok(Vec::new());
    }
    let workers = effective_workers(par, items.len());
    let chunk = items.len().div_ceil(workers);
    let bases: Vec<usize> = (0..items.len()).step_by(chunk).collect();
    par_try_map(par, stage, &bases, |_, &base| {
        f(base, &items[base..(base + chunk).min(items.len())])
    })
}

/// Shard-indexed scheduling: run `f(shard)` for every shard in
/// `0..shards`, one logical task per shard, and return the per-shard
/// results **in shard order**. This is the entry point the sharded
/// knowledge-base scans go through: a shard is a scheduling unit (unlike
/// [`par_chunks`], whose chunk boundaries move with the worker count), so
/// the work decomposition is a pure function of the shard layout and the
/// same at every parallelism level. Failure discipline matches the rest of
/// the module: the error (or captured panic, surfaced as
/// [`VadaError::Parallel`] naming `stage` and the shard index) from the
/// lowest-numbered failing shard wins.
pub fn par_shards<A, F>(par: Parallelism, stage: &str, shards: usize, f: F) -> Result<Vec<A>>
where
    A: Send,
    F: Fn(usize) -> Result<A> + Sync,
{
    let indices: Vec<usize> = (0..shards).collect();
    par_try_map(par, stage, &indices, |_, &s| f(s))
}

/// [`par_try_map`] with scheduling telemetry: the stage dispatch and its
/// item count are recorded on the *coordinating* thread before any worker
/// runs, so the counters depend only on what was submitted — never on how
/// the workers were scheduled — and are identical at every thread count.
pub fn par_try_map_obs<T, R, F>(
    obs: &crate::obs::Obs,
    par: Parallelism,
    stage: &str,
    items: &[T],
    f: F,
) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Result<R> + Sync,
{
    obs.incr(crate::obs::key::PAR_STAGES);
    obs.add(crate::obs::key::PAR_ITEMS, items.len() as u64);
    par_try_map(par, stage, items, f)
}

/// [`par_shards`] with scheduling telemetry (see [`par_try_map_obs`]).
///
/// Also records the dispatch as a span subtree: one `par/shards` span for
/// the stage with a `par/shard` child per shard. The children are opened
/// and closed on the *coordinating* thread at submission time — worker
/// closures never touch the span stack — so the recorded tree is a pure
/// function of the shard layout, identical at every thread count; their
/// durations measure submission, not shard runtime (the stage span wraps
/// the full dispatch-to-join interval).
pub fn par_shards_obs<A, F>(
    obs: &crate::obs::Obs,
    par: Parallelism,
    stage: &str,
    shards: usize,
    f: F,
) -> Result<Vec<A>>
where
    A: Send,
    F: Fn(usize) -> Result<A> + Sync,
{
    obs.incr(crate::obs::key::PAR_STAGES);
    obs.add(crate::obs::key::PAR_ITEMS, shards as u64);
    let stage_span = obs.span("par/shards");
    stage_span.attr("stage", stage);
    stage_span.attr("shards", shards);
    for shard in 0..shards {
        let s = obs.span("par/shard");
        s.attr("shard", shard);
    }
    par_shards(par, stage, shards, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_levels() -> [Parallelism; 4] {
        [
            Parallelism::Sequential,
            Parallelism::Threads(2),
            Parallelism::Threads(3),
            Parallelism::Threads(8),
        ]
    }

    #[test]
    fn results_keep_input_order_at_every_level() {
        let items: Vec<usize> = (0..103).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 2).collect();
        for par in all_levels() {
            let got = par_map(par, "test", &items, |_, &x| x * 2).unwrap();
            assert_eq!(got, expected, "{par:?}");
        }
    }

    #[test]
    fn lowest_index_error_wins() {
        let items: Vec<usize> = (0..64).collect();
        for par in all_levels() {
            let err = par_try_map(par, "test", &items, |i, _| {
                if i >= 7 {
                    Err(VadaError::Other(format!("boom at {i}")))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
            assert_eq!(err.message(), "boom at 7", "{par:?}");
        }
    }

    #[test]
    fn panic_is_captured_and_names_the_stage() {
        let items: Vec<usize> = (0..32).collect();
        for par in all_levels() {
            let err = par_map(par, "unit/poison", &items, |i, &x| {
                if i == 13 {
                    panic!("poisoned item");
                }
                x
            })
            .unwrap_err();
            assert_eq!(err.kind(), "parallel", "{par:?}");
            assert!(err.message().contains("unit/poison"), "{err}");
            assert!(err.message().contains("item 13"), "{err}");
            assert!(err.message().contains("poisoned item"), "{err}");
        }
    }

    #[test]
    fn absurd_thread_counts_are_capped_not_spawned() {
        let items: Vec<usize> = (0..10_000).collect();
        let got = par_map(Parallelism::Threads(1_000_000), "t", &items, |_, &x| x + 1).unwrap();
        assert_eq!(got.len(), items.len());
        assert_eq!(got[9_999], 10_000);
        assert_eq!(effective_workers(Parallelism::Threads(1_000_000), 10_000), MAX_WORKERS);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<usize> = vec![];
        for par in all_levels() {
            assert_eq!(par_map(par, "t", &empty, |_, &x| x).unwrap(), Vec::<usize>::new());
            assert_eq!(par_map(par, "t", &[41usize], |_, &x| x + 1).unwrap(), vec![42]);
        }
    }

    #[test]
    fn chunk_accumulators_come_back_in_order() {
        let items: Vec<usize> = (0..50).collect();
        for par in all_levels() {
            let sums = par_chunks(par, "t", &items, |base, slice| {
                Ok((base, slice.iter().sum::<usize>()))
            })
            .unwrap();
            // bases ascend and the chunk sums cover everything exactly once
            assert!(sums.windows(2).all(|w| w[0].0 < w[1].0), "{par:?}");
            assert_eq!(sums.iter().map(|(_, s)| s).sum::<usize>(), 49 * 50 / 2);
        }
    }

    #[test]
    fn shard_results_come_back_in_shard_order() {
        for par in all_levels() {
            let got = par_shards(par, "t", 9, |s| Ok(s * 10)).unwrap();
            assert_eq!(got, (0..9).map(|s| s * 10).collect::<Vec<_>>(), "{par:?}");
            assert!(par_shards(par, "t", 0, |s| Ok(s)).unwrap().is_empty());
        }
    }

    #[test]
    fn lowest_shard_failure_wins_and_panics_name_the_stage() {
        for par in all_levels() {
            let err = par_shards(par, "kb/shard_scan", 8, |s| {
                if s >= 5 {
                    Err(VadaError::Other(format!("shard {s} failed")))
                } else {
                    Ok(s)
                }
            })
            .unwrap_err();
            assert_eq!(err.message(), "shard 5 failed", "{par:?}");
            let err = par_shards(par, "kb/shard_scan", 8, |s| {
                if s == 3 {
                    panic!("poisoned shard");
                }
                Ok(s)
            })
            .unwrap_err();
            assert_eq!(err.kind(), "parallel", "{par:?}");
            assert!(err.message().contains("kb/shard_scan"), "{err}");
            assert!(err.message().contains("item 3"), "{err}");
        }
    }

    #[test]
    fn shard_span_tree_is_identical_at_every_level() {
        use crate::obs::{span_shape, Obs};
        let mut shapes = Vec::new();
        for par in all_levels() {
            let obs = Obs::enabled();
            par_shards_obs(&obs, par, "unit/shards", 3, Ok).unwrap();
            shapes.push(span_shape(&obs.span_records()));
        }
        assert!(shapes.windows(2).all(|w| w[0] == w[1]), "tree must not depend on threads");
        assert_eq!(shapes[0].len(), 4, "one stage span plus one per shard");
        assert_eq!(shapes[0][0], "1 0 par/shards stage=unit/shards;shards=3");
        assert_eq!(shapes[0][1], "2 1 par/shard shard=0");
    }

    #[test]
    fn from_env_parses_thread_counts() {
        // `from_env` is also exercised implicitly by the CI parallel gate,
        // which runs the whole suite under VADA_THREADS=4.
        match std::env::var("VADA_THREADS").ok().and_then(|v| v.trim().parse::<usize>().ok()) {
            Some(n) if n >= 2 => assert_eq!(Parallelism::from_env(), Parallelism::Threads(n)),
            _ => assert_eq!(Parallelism::from_env(), Parallelism::Sequential),
        }
        assert_eq!(Parallelism::Sequential.workers(), 1);
        assert_eq!(Parallelism::Threads(4).workers(), 4);
        assert_eq!(Parallelism::Threads(0).workers(), 1);
        assert_eq!(Parallelism::Threads(1_000_000).workers(), MAX_WORKERS);
        assert!(!Parallelism::Sequential.is_parallel());
        assert!(Parallelism::Threads(2).is_parallel());
    }
}
