//! A small, dependency-free CSV reader/writer (RFC-4180 quoting).
//!
//! Web-extraction output and open-government data arrive as CSV in the demo
//! scenario; this module is deliberately minimal — comma separator, `"`
//! quoting with doubled-quote escapes, and `\n`/`\r\n` row terminators.

use crate::error::{Result, VadaError};
use crate::par::{self, Parallelism};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::sharding::{self, Sharding};
use crate::tuple::Tuple;
use crate::value::Value;

/// Parse CSV text into rows of string fields.
pub fn parse(text: &str) -> Result<Vec<Vec<String>>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut saw_any = false;
    // Whether the current (last) field was explicitly opened by a quote.
    // `field` alone can't tell `""` (a present-but-empty field) apart from
    // "nothing on this line", so the final flush needs this bit to keep a
    // trailing `""` without a newline from being dropped.
    let mut field_started = false;

    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if field.is_empty() {
                        in_quotes = true;
                        field_started = true;
                    } else {
                        return Err(VadaError::Csv(
                            "quote in the middle of an unquoted field".into(),
                        ));
                    }
                }
                ',' => {
                    row.push(std::mem::take(&mut field));
                }
                '\r' => {
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                    }
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                    field_started = false;
                }
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                    field_started = false;
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(VadaError::Csv("unterminated quoted field".into()));
    }
    if saw_any && (field_started || !field.is_empty() || !row.is_empty()) {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

/// Escape a field for CSV output.
fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serialise rows of string fields to CSV text.
pub fn serialize<S: AsRef<str>>(rows: &[Vec<S>]) -> String {
    let mut out = String::new();
    for row in rows {
        let line: Vec<String> = row.iter().map(|f| escape(f.as_ref())).collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    out
}

/// Read CSV text (first row = header) into a [`Relation`], parsing each cell
/// according to the schema's attribute types. The header must match the
/// schema's attribute names (order included). Ingest parallelism follows the
/// `VADA_THREADS` override; see [`read_relation_with`].
pub fn read_relation(text: &str, schema: Schema) -> Result<Relation> {
    read_relation_with(text, schema, Parallelism::from_env())
}

/// Split parsed CSV rows into header + body, validating the header
/// against the schema's attribute names (order included).
fn split_body(rows: Vec<Vec<String>>, schema: &Schema) -> Result<Vec<Vec<String>>> {
    let mut it = rows.into_iter();
    let header = it
        .next()
        .ok_or_else(|| VadaError::Csv("empty csv: missing header".into()))?;
    let expected = schema.attr_names();
    if header.len() != expected.len()
        || header.iter().zip(&expected).any(|(h, e)| h.trim() != *e)
    {
        return Err(VadaError::Csv(format!(
            "header {:?} does not match schema attributes {:?}",
            header, expected
        )));
    }
    Ok(it.collect())
}

/// Type one body row (`line_no` is the 0-based body index) into a tuple —
/// the per-row unit both the chunked and the sharded ingest paths run.
fn typed_tuple(line_no: usize, row: &[String], schema: &Schema) -> Result<Tuple> {
    if row.len() != schema.arity() {
        return Err(VadaError::Csv(format!(
            "row {} has {} fields, expected {}",
            line_no + 2,
            row.len(),
            schema.arity()
        )));
    }
    let values: Vec<Value> = row
        .iter()
        .enumerate()
        .map(|(i, cell)| Value::parse_as(cell, schema.attr(i).ty))
        .collect::<Result<_>>()?;
    Ok(Tuple::new(values))
}

/// [`read_relation`] with explicit ingest parallelism: splitting into rows is
/// sequential (the quoting state machine is inherently serial), but cell
/// typing — the expensive part on wide, numeric relations — is batched
/// across workers. Row order, the resulting relation, and the first error
/// reported are identical at every parallelism level.
pub fn read_relation_with(text: &str, schema: Schema, par: Parallelism) -> Result<Relation> {
    let body = split_body(parse(text)?, &schema)?;
    let tuples = par::par_try_map(par, "csv/ingest", &body, |line_no, row| {
        typed_tuple(line_no, row, &schema)
    })?;
    Relation::from_tuples(schema, tuples)
}

/// [`read_relation_with`] over a sharded scan: body rows are assigned to
/// shards by a stable content hash, each shard types its rows as one
/// scheduling unit (see [`crate::par::par_shards`]), and the per-shard
/// outputs merge back in input row order. The resulting relation — and the
/// first (lowest-row) error — are byte-identical to the unsharded path at
/// any shard count and any parallelism level; [`Sharding::Off`] delegates
/// to the unsharded path outright.
pub fn read_relation_sharded(
    text: &str,
    schema: Schema,
    sharding: Sharding,
    par: Parallelism,
) -> Result<Relation> {
    if !sharding.is_sharded() {
        return read_relation_with(text, schema, par);
    }
    let body = split_body(parse(text)?, &schema)?;
    let shards = sharding.shard_count();
    let assignment: Vec<usize> = body
        .iter()
        .map(|row| (sharding::stable_strs_hash(row.iter().map(|s| s.as_str())) % shards as u64) as usize)
        .collect();
    let by_shard = sharding::rows_by_shard(&assignment, shards);
    // Each shard reports its rows (or its first failure, tagged with the
    // global row index) — the cross-shard minimum reproduces exactly the
    // error a sequential scan would have stopped on.
    let scans: Vec<std::result::Result<Vec<Tuple>, (usize, VadaError)>> =
        par::par_shards(par, "csv/shard_ingest", shards, |s| {
            let mut out = Vec::with_capacity(by_shard[s].len());
            for &row_idx in &by_shard[s] {
                match typed_tuple(row_idx, &body[row_idx], &schema) {
                    Ok(t) => out.push(t),
                    Err(e) => return Ok(Err((row_idx, e))),
                }
            }
            Ok(Ok(out))
        })?;
    let mut per_shard = Vec::with_capacity(shards);
    let mut first_error: Option<(usize, VadaError)> = None;
    for scan in scans {
        match scan {
            Ok(tuples) => per_shard.push(tuples),
            Err((row, e)) => {
                if first_error.as_ref().is_none_or(|(r, _)| row < *r) {
                    first_error = Some((row, e));
                }
                per_shard.push(Vec::new());
            }
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }
    // A failed shard stops at its first error, so full coverage only holds
    // on the all-Ok path the merge runs on.
    let tuples = sharding::merge_in_order(&assignment, per_shard);
    Relation::from_tuples(schema, tuples)
}

/// Write a [`Relation`] to CSV text (header row included).
pub fn write_relation(rel: &Relation) -> String {
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(rel.len() + 1);
    rows.push(
        rel.schema()
            .attr_names()
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    for t in rel.iter() {
        rows.push(t.iter().map(|v| v.to_string()).collect());
    }
    serialize(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    #[test]
    fn parses_plain_rows() {
        let rows = parse("a,b\n1,2\n").unwrap();
        assert_eq!(rows, vec![vec!["a", "b"], vec!["1", "2"]]);
    }

    #[test]
    fn parses_quotes_and_embedded_commas() {
        let rows = parse("\"x,y\",\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(rows, vec![vec!["x,y".to_string(), "he said \"hi\"".to_string()]]);
    }

    #[test]
    fn parses_crlf_and_missing_final_newline() {
        let rows = parse("a,b\r\nc,d").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["c", "d"]);
    }

    #[test]
    fn embedded_newline_in_quotes() {
        let rows = parse("\"line1\nline2\",x\n").unwrap();
        assert_eq!(rows[0][0], "line1\nline2");
    }

    #[test]
    fn rejects_unterminated_quote() {
        assert!(parse("\"oops").is_err());
    }

    #[test]
    fn final_quoted_empty_field_without_newline_kept() {
        // regression: the final flush used to drop a last line that is a
        // single quoted empty field with no trailing newline
        assert_eq!(parse("\"\"").unwrap(), vec![vec![String::new()]]);
        // consistent with the trailing-newline spelling of the same data
        assert_eq!(parse("\"\"\n").unwrap(), parse("\"\"").unwrap());
        // and as the last row of a larger file
        assert_eq!(
            parse("a,b\n\"\"").unwrap(),
            vec![vec!["a".to_string(), "b".to_string()], vec![String::new()]]
        );
        // a quoted-empty final *cell* after a comma was already kept; pin it
        assert_eq!(
            parse("x,\"\"").unwrap(),
            vec![vec!["x".to_string(), String::new()]]
        );
    }

    #[test]
    fn final_quoted_empty_field_round_trips() {
        // serialize always emits a trailing newline, so the round trip goes
        // through the newline spelling — both spellings must agree
        let data = vec![vec!["x".to_string()], vec![String::new()]];
        assert_eq!(parse(&serialize(&data)).unwrap(), data);
        let quoted = "x\n\"\"";
        assert_eq!(parse(quoted).unwrap(), vec![vec!["x".to_string()], vec![String::new()]]);
    }

    #[test]
    fn round_trip() {
        let data = vec![
            vec!["plain".to_string(), "with,comma".to_string()],
            vec!["quote\"inside".to_string(), "multi\nline".to_string()],
        ];
        let text = serialize(&data);
        assert_eq!(parse(&text).unwrap(), data);
    }

    #[test]
    fn relation_round_trip() {
        let schema = Schema::new(
            "p",
            [("price", AttrType::Int), ("street", AttrType::Str)],
        )
        .unwrap();
        let text = "price,street\n250000,12 High St\n,\"Flat 2, Low Rd\"\n";
        let rel = read_relation(text, schema).unwrap();
        assert_eq!(rel.len(), 2);
        assert!(rel.tuples()[1][0].is_null());
        assert_eq!(rel.tuples()[1][1], Value::str("Flat 2, Low Rd"));
        let back = write_relation(&rel);
        let rel2 = read_relation(&back, rel.schema().clone()).unwrap();
        assert_eq!(rel2.tuples(), rel.tuples());
    }

    #[test]
    fn header_mismatch_rejected() {
        let schema = Schema::all_str("p", &["a", "b"]);
        assert!(read_relation("a,c\n1,2\n", schema).is_err());
    }

    #[test]
    fn ragged_row_rejected() {
        let schema = Schema::all_str("p", &["a", "b"]);
        assert!(read_relation("a,b\n1\n", schema).is_err());
    }

    #[test]
    fn parallel_ingest_is_identical_to_sequential() {
        let schema = Schema::new(
            "p",
            [("n", AttrType::Int), ("s", AttrType::Str), ("f", AttrType::Float)],
        )
        .unwrap();
        let mut text = String::from("n,s,f\n");
        for i in 0..500 {
            text.push_str(&format!("{i},\"row, {i}\",{}.5\n", i % 7));
        }
        let seq = read_relation_with(&text, schema.clone(), Parallelism::Sequential).unwrap();
        for n in [2usize, 3, 8] {
            let par = read_relation_with(&text, schema.clone(), Parallelism::Threads(n)).unwrap();
            assert_eq!(par.tuples(), seq.tuples(), "threads={n}");
        }
    }

    #[test]
    fn sharded_ingest_is_identical_to_monolithic() {
        let schema = Schema::new(
            "p",
            [("n", AttrType::Int), ("s", AttrType::Str), ("f", AttrType::Float)],
        )
        .unwrap();
        let mut text = String::from("n,s,f\n");
        for i in 0..400 {
            text.push_str(&format!("{i},\"row, {i}\",{}.5\n", i % 7));
        }
        let mono = read_relation_with(&text, schema.clone(), Parallelism::Sequential).unwrap();
        for shards in [2usize, 4, 9] {
            for par in [Parallelism::Sequential, Parallelism::Threads(4)] {
                let got = read_relation_sharded(
                    &text,
                    schema.clone(),
                    Sharding::Shards(shards),
                    par,
                )
                .unwrap();
                assert_eq!(got.tuples(), mono.tuples(), "shards={shards} {par:?}");
            }
        }
        // Off delegates to the unsharded path
        let off =
            read_relation_sharded(&text, schema, Sharding::Off, Parallelism::Sequential).unwrap();
        assert_eq!(off.tuples(), mono.tuples());
    }

    #[test]
    fn sharded_ingest_reports_the_lowest_row_error() {
        let schema = Schema::new("p", [("n", AttrType::Int)]).unwrap();
        let mut text = String::from("n\n");
        for i in 0..200 {
            // two bad rows in (almost surely) different shards: the
            // sequential-first one must win at every shard count
            if i == 17 || i == 90 {
                text.push_str("oops,extra\n");
            } else {
                text.push_str(&format!("{i}\n"));
            }
        }
        let seq = read_relation_with(&text, schema.clone(), Parallelism::Sequential).unwrap_err();
        for shards in [2usize, 4, 8] {
            let got = read_relation_sharded(
                &text,
                schema.clone(),
                Sharding::Shards(shards),
                Parallelism::Threads(4),
            )
            .unwrap_err();
            assert_eq!(got, seq, "shards={shards}");
            assert!(got.message().contains("row 19"), "{got}");
        }
    }

    #[test]
    fn parallel_ingest_reports_the_first_bad_row() {
        let schema = Schema::new("p", [("n", AttrType::Int)]).unwrap();
        let mut text = String::from("n\n");
        for i in 0..200 {
            text.push_str(&format!("{i}\n"));
        }
        let mut bad = text.clone();
        bad.insert_str("n\n0\n1\n2\n".len(), "oops,extra\n");
        let seq = read_relation_with(&bad, schema.clone(), Parallelism::Sequential).unwrap_err();
        let par = read_relation_with(&bad, schema, Parallelism::Threads(4)).unwrap_err();
        assert_eq!(seq, par);
        assert!(seq.message().contains("row 5"), "{seq}");
    }
}
