//! The query-evaluation-mode knob for demand-driven Datalog evaluation.
//!
//! [`QueryMode::Undirected`] answers a query by running the *full* program
//! fixpoint and then evaluating the query against it — every derivable fact
//! is materialized whether the query can reach it or not.
//! [`QueryMode::Directed`] first performs a magic-set / sideways-information
//! -passing rewrite that seeds *demand* from the query's bound arguments,
//! then materializes only the demanded portion of the fixpoint, so a query
//! touching one postcode no longer derives facts for all of them.
//!
//! Like [`crate::Parallelism`], [`crate::Sharding`] and
//! [`crate::Evaluation`], the knob is safe to flip at any time: per query,
//! directed evaluation is pinned **byte-identical** to undirected — same
//! answer set, same answer order, same first error — by the root
//! `query_equivalence` differential suite. Whenever the demand analysis
//! cannot soundly restrict a predicate (negation, all-free queries, sparse
//! binding patterns), it falls back to leaving that predicate — or the whole
//! program — unrestricted, never to divergent answers.

/// How the engine should evaluate a stand-alone query over a program.
///
/// The default is read from the `VADA_MAGIC` environment variable
/// (`1`/`true`/`on` select [`QueryMode::Directed`]), mirroring the
/// `VADA_THREADS` / `VADA_SHARDS` / `VADA_INCREMENTAL` / `VADA_WAL`
/// overrides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    /// Run the full program fixpoint, then evaluate the query against it.
    Undirected,
    /// Magic-set rewrite: materialize only the portion of the fixpoint the
    /// query's bound arguments demand, falling back to undirected behaviour
    /// per predicate whenever a restriction is not provably sound.
    Directed,
}

impl Default for QueryMode {
    fn default() -> Self {
        QueryMode::from_env()
    }
}

impl QueryMode {
    /// Read the `VADA_MAGIC` override: `1`, `true` or `on` (under the
    /// shared [`crate::env`] rules) select [`QueryMode::Directed`];
    /// anything else, including unset, selects [`QueryMode::Undirected`].
    pub fn from_env() -> QueryMode {
        if crate::env::flag("VADA_MAGIC") {
            QueryMode::Directed
        } else {
            QueryMode::Undirected
        }
    }

    /// Whether this mode restricts materialization to demanded facts.
    pub fn is_directed(&self) -> bool {
        matches!(self, QueryMode::Directed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_contract() {
        // the default must agree with whatever the ambient environment says
        // (CI runs the whole suite under VADA_MAGIC=1 on the all-knobs leg)
        match std::env::var("VADA_MAGIC") {
            Ok(v) if crate::env::parse_flag(&v) => {
                assert_eq!(QueryMode::from_env(), QueryMode::Directed)
            }
            _ => assert_eq!(QueryMode::from_env(), QueryMode::Undirected),
        }
        assert!(QueryMode::Directed.is_directed());
        assert!(!QueryMode::Undirected.is_directed());
    }
}
