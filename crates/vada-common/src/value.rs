//! Typed, nullable values — the atoms that flow through the wrangling
//! pipeline.
//!
//! [`Value`] implements a *total* ordering (including over floats and across
//! types) so that values can be used as join keys, index keys and sort keys
//! without panicking on `NaN` or mixed-type columns. Nulls sort first;
//! cross-type comparisons fall back to a fixed type rank.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{Result, VadaError};
use crate::schema::AttrType;

/// A single typed, nullable data value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL-style null / missing value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. `NaN` is canonicalised for hashing/ordering.
    Float(f64),
    /// Interned UTF-8 string (cheaply cloneable).
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Whether this value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The [`AttrType`] of this value, or `None` for null.
    pub fn attr_type(&self) -> Option<AttrType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(AttrType::Bool),
            Value::Int(_) => Some(AttrType::Int),
            Value::Float(_) => Some(AttrType::Float),
            Value::Str(_) => Some(AttrType::Str),
        }
    }

    /// The string payload, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an int value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float payload; ints are widened.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The bool payload, if this is a boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric view used by comparison built-ins: ints and floats compare on
    /// the real line.
    pub fn numeric(&self) -> Option<f64> {
        self.as_float()
    }

    /// Parse a raw token into a value of the given type. Empty strings parse
    /// to null for every type.
    pub fn parse_as(raw: &str, ty: AttrType) -> Result<Value> {
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return Ok(Value::Null);
        }
        match ty {
            AttrType::Bool => match trimmed.to_ascii_lowercase().as_str() {
                "true" | "t" | "1" | "yes" => Ok(Value::Bool(true)),
                "false" | "f" | "0" | "no" => Ok(Value::Bool(false)),
                other => Err(VadaError::Type(format!("cannot parse `{other}` as bool"))),
            },
            AttrType::Int => trimmed
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| VadaError::Type(format!("cannot parse `{trimmed}` as int"))),
            AttrType::Float => trimmed
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| VadaError::Type(format!("cannot parse `{trimmed}` as float"))),
            AttrType::Str => Ok(Value::str(trimmed)),
        }
    }

    /// Best-effort inference: int, then float, then bool, then string.
    pub fn infer(raw: &str) -> Value {
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return Value::Null;
        }
        if let Ok(i) = trimmed.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = trimmed.parse::<f64>() {
            return Value::Float(f);
        }
        match trimmed {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            _ => Value::str(trimmed),
        }
    }

    /// Coerce this value to `ty` where a lossless/sane conversion exists
    /// (int↔float, anything→string via display, string→numeric via parse).
    pub fn coerce(&self, ty: AttrType) -> Result<Value> {
        match (self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (v, t) if v.attr_type() == Some(t) => Ok(v.clone()),
            (Value::Int(i), AttrType::Float) => Ok(Value::Float(*i as f64)),
            (Value::Float(f), AttrType::Int) if f.fract() == 0.0 && in_i64_range(*f) => {
                Ok(Value::Int(*f as i64))
            }
            (Value::Str(s), t) => Value::parse_as(s, t),
            (v, AttrType::Str) => Ok(Value::str(v.to_string())),
            (v, t) => Err(VadaError::Type(format!("cannot coerce {v} to {t}"))),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // ints and floats share a rank: compare numerically
            Value::Str(_) => 3,
        }
    }

    /// The canonical bit pattern of a float: all NaN payloads unify, `-0.0`
    /// folds into `+0.0`. This is the representation hashing uses, and the
    /// one the binary codec persists, so equal values stay byte-identical
    /// across the serialization boundary.
    pub fn canonical_f64(f: f64) -> u64 {
        if f.is_nan() {
            f64::NAN.to_bits()
        } else if f == 0.0 {
            0.0f64.to_bits() // unify +0.0 and -0.0
        } else {
            f.to_bits()
        }
    }
}

/// Whether `f` is exactly representable as an `i64`: `[-2^63, 2^63)`.
/// `2^63` itself is the first excluded value — `as i64` would saturate it
/// (and everything larger, e.g. `1e300`) to `i64::MAX` silently. The lower
/// bound is inclusive because `-2^63 == i64::MIN` is an exact double.
fn in_i64_range(f: f64) -> bool {
    const TWO_POW_63: f64 = 9_223_372_036_854_775_808.0; // 2^63
    (-TWO_POW_63..TWO_POW_63).contains(&f)
}

/// `f64::total_cmp` with `-0.0` unified to `+0.0` and all NaN payloads
/// unified, so the ordering agrees with the canonical hash.
fn total_cmp_canonical(a: f64, b: f64) -> Ordering {
    let canon = |f: f64| {
        if f.is_nan() {
            f64::NAN
        } else if f == 0.0 {
            0.0
        } else {
            f
        }
    };
    canon(a).total_cmp(&canon(b))
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Float(a), Float(b)) => total_cmp_canonical(*a, *b),
            (Int(a), Float(b)) => total_cmp_canonical(*a as f64, *b),
            (Float(a), Int(b)) => total_cmp_canonical(*a, *b as f64),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and floats that compare equal must hash equally, so both
            // hash through the canonical f64 bit pattern. Distinct huge ints
            // may collide on the same f64 — harmless, they remain unequal.
            Value::Int(i) => {
                2u8.hash(state);
                Value::canonical_f64(*i as f64).hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                Value::canonical_f64(*f).hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn nulls_sort_first() {
        let mut vals = [Value::Int(3), Value::Null, Value::str("a"), Value::Bool(true)];
        vals.sort();
        assert!(vals[0].is_null());
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn equal_int_float_hash_equal() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
    }

    #[test]
    fn nan_is_self_equal_under_total_order() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(f64::NAN);
        assert_eq!(a.cmp(&b), Ordering::Equal);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn zero_signs_unify_in_hash() {
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
        assert_eq!(Value::Float(0.0).cmp(&Value::Float(-0.0)), Ordering::Equal);
    }

    #[test]
    fn parse_as_types() {
        assert_eq!(Value::parse_as("42", AttrType::Int).unwrap(), Value::Int(42));
        assert_eq!(
            Value::parse_as("4.5", AttrType::Float).unwrap(),
            Value::Float(4.5)
        );
        assert_eq!(
            Value::parse_as("yes", AttrType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(Value::parse_as("", AttrType::Int).unwrap(), Value::Null);
        assert!(Value::parse_as("abc", AttrType::Int).is_err());
    }

    #[test]
    fn infer_prefers_narrowest() {
        assert_eq!(Value::infer("3"), Value::Int(3));
        assert_eq!(Value::infer("3.5"), Value::Float(3.5));
        assert_eq!(Value::infer("true"), Value::Bool(true));
        assert_eq!(Value::infer("hi"), Value::str("hi"));
        assert_eq!(Value::infer("  "), Value::Null);
    }

    #[test]
    fn coerce_round_trips() {
        assert_eq!(
            Value::Int(3).coerce(AttrType::Float).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            Value::Float(3.0).coerce(AttrType::Int).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            Value::str("12").coerce(AttrType::Int).unwrap(),
            Value::Int(12)
        );
        assert_eq!(
            Value::Int(9).coerce(AttrType::Str).unwrap(),
            Value::str("9")
        );
        assert!(Value::Float(3.5).coerce(AttrType::Int).is_err());
        assert_eq!(Value::Null.coerce(AttrType::Int).unwrap(), Value::Null);
    }

    #[test]
    fn coerce_rejects_floats_outside_i64_range() {
        // regression: these have fract() == 0.0 but `as i64` would saturate
        for f in [1e300, 9_223_372_036_854_775_808.0, -1e300, f64::INFINITY, f64::NEG_INFINITY] {
            let err = Value::Float(f).coerce(AttrType::Int).unwrap_err();
            assert_eq!(err.kind(), "type", "{f}");
        }
        // boundary: i64::MIN is an exact double and must still convert...
        assert_eq!(
            Value::Float(-9_223_372_036_854_775_808.0)
                .coerce(AttrType::Int)
                .unwrap(),
            Value::Int(i64::MIN)
        );
        // ...and the largest double strictly below 2^63 converts exactly
        let below = 9_223_372_036_854_774_784.0f64; // 2^63 - 1024
        assert_eq!(
            Value::Float(below).coerce(AttrType::Int).unwrap(),
            Value::Int(below as i64)
        );
        assert!(Value::Float(f64::NAN).coerce(AttrType::Int).is_err());
    }

    #[test]
    fn display_null_is_empty() {
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Int(-4).to_string(), "-4");
    }
}
