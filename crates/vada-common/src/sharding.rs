//! Sharding primitives: how rows of a relation are partitioned across `N`
//! shards, and how per-shard results merge back into canonical row order.
//!
//! This module carries the *assignment* half of the sharded-store design
//! (the store itself lives in `vada-kb`, which depends on this crate):
//!
//! - **Pluggable [`Partitioner`]s.** A partitioner is a pure function of a
//!   tuple's *content* — never of its position, the shard count aside — so
//!   shard assignment is deterministic across runs and immune to the order
//!   rows arrive in. [`HashPartitioner`] (the default) hashes the whole
//!   tuple; [`KeyPartitioner`] hashes the fusion blocking key, so co-blocked
//!   rows always land in the same shard and per-shard blocking scans see
//!   every member of every block they own.
//! - **Stable hashing.** Assignment uses FNV-1a over a stable byte
//!   rendering of each value ([`stable_tuple_hash`]), not the std hasher:
//!   shard layout must not change between processes or Rust versions,
//!   because the differential suites pin "any shard count is byte-identical
//!   to unsharded" and a layout flip would silently re-route every row.
//! - **Ordered merge.** [`merge_in_order`] re-interleaves per-shard outputs
//!   by the assignment sequence, reproducing exactly the row order a
//!   monolithic scan would have observed. Per-shard scans + ordered merge
//!   is the whole determinism argument, mirroring `par`'s chunk discipline.

use crate::error::Result;
use crate::par::{self, Parallelism};
use crate::text::normalize_append;
use crate::tuple::Tuple;
use crate::value::Value;

/// How many shards a knowledge-base scan may be partitioned into.
///
/// The default is read from the `VADA_SHARDS` environment variable
/// (unset, `0`, or `1` mean off), mirroring `VADA_THREADS` /
/// `VADA_INCREMENTAL`: an operator can shard the whole pipeline without
/// touching call sites, and the byte-identity guarantee (pinned by the
/// root `shard_equivalence` differential suite) makes the override safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sharding {
    /// One monolithic store/scan (the pre-sharding behaviour).
    Off,
    /// Partition rows across up to `n` shards (clamped to
    /// [`MAX_SHARDS`]; 0 and 1 behave like [`Sharding::Off`]).
    Shards(usize),
}

impl Default for Sharding {
    fn default() -> Self {
        Sharding::from_env()
    }
}

/// Hard ceiling on shard counts, for the same reason `par::MAX_WORKERS`
/// exists: an absurd `VADA_SHARDS` must degrade to "many small shards",
/// never to unbounded per-shard allocations.
pub const MAX_SHARDS: usize = 1024;

impl Sharding {
    /// Read the `VADA_SHARDS` override: `>= 2` (under the shared
    /// [`crate::env`] count rules) selects [`Sharding::Shards`], anything
    /// else (including unset or unparseable) selects [`Sharding::Off`].
    pub fn from_env() -> Sharding {
        match crate::env::count("VADA_SHARDS") {
            Some(n) if n >= 2 => Sharding::Shards(n),
            _ => Sharding::Off,
        }
    }

    /// Number of shards this level actually produces (at least 1, at most
    /// [`MAX_SHARDS`]).
    pub fn shard_count(&self) -> usize {
        match self {
            Sharding::Off => 1,
            Sharding::Shards(n) => (*n).clamp(1, MAX_SHARDS),
        }
    }

    /// Whether more than one shard is in play.
    pub fn is_sharded(&self) -> bool {
        self.shard_count() > 1
    }
}

/// Assigns every tuple to a shard. Implementations must be pure functions
/// of the tuple's content (and the shard count): assignment may never
/// depend on row position, prior calls, or ambient state, so that a
/// journal-maintained sharded view and a fresh repartition of the same
/// relation are byte-identical.
pub trait Partitioner {
    /// Short stable name (for traces and diagnostics).
    fn name(&self) -> &str;

    /// The shard (in `0..shards`) that owns `tuple`. `shards` is at
    /// least 1.
    fn shard_of(&self, tuple: &Tuple, shards: usize) -> usize;
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

fn feed_value(hash: &mut u64, v: &Value) {
    match v {
        Value::Null => fnv1a(hash, &[0]),
        Value::Bool(b) => fnv1a(hash, &[1, *b as u8]),
        Value::Int(i) => {
            fnv1a(hash, &[2]);
            fnv1a(hash, &i.to_le_bytes());
        }
        Value::Float(f) => {
            fnv1a(hash, &[3]);
            fnv1a(hash, &f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            fnv1a(hash, &[4]);
            fnv1a(hash, s.as_bytes());
        }
    }
}

/// Stable FNV-1a hash of a whole tuple — identical across processes, OSes
/// and Rust versions (unlike `DefaultHasher`), which is what makes shard
/// layouts reproducible.
pub fn stable_tuple_hash(t: &Tuple) -> u64 {
    let mut hash = FNV_OFFSET;
    for v in t.iter() {
        feed_value(&mut hash, v);
    }
    hash
}

/// Stable FNV-1a hash of a sequence of string fields (e.g. a raw CSV row
/// before typing), length-prefixed per field so `["ab","c"]` and
/// `["a","bc"]` hash apart.
pub fn stable_strs_hash<'a>(fields: impl Iterator<Item = &'a str>) -> u64 {
    let mut hash = FNV_OFFSET;
    for f in fields {
        fnv1a(&mut hash, &(f.len() as u64).to_le_bytes());
        fnv1a(&mut hash, f.as_bytes());
    }
    hash
}

/// The default partitioner: stable hash of the whole tuple. Equal tuples
/// always land in the same shard (so bag duplicates co-locate), and the
/// layout is uniform for distinct rows.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn name(&self) -> &str {
        "hash"
    }

    fn shard_of(&self, tuple: &Tuple, shards: usize) -> usize {
        (stable_tuple_hash(tuple) % shards.max(1) as u64) as usize
    }
}

/// Build the fusion blocking key of `t` over `cols` into `key` (cleared
/// first): the normal forms of the non-null key cells joined by `|`.
/// Returns `false` when every key cell is null (such rows block as
/// singletons). This is the *single* definition of the blocking key —
/// `vada_fusion::block_by_keys_with` and [`KeyPartitioner`] both call it,
/// so co-blocked rows are co-sharded by construction. Columns beyond the
/// tuple's arity are skipped: a catalog-wide [`KeyPartitioner`] meets
/// relations of every schema, and a missing key cell behaves like a null
/// one (the row spreads by whole-tuple hash).
pub fn blocking_key(t: &Tuple, cols: &[usize], key: &mut String) -> bool {
    key.clear();
    let mut any = false;
    for &c in cols {
        if c >= t.arity() {
            continue;
        }
        let v = &t[c];
        if v.is_null() {
            continue;
        }
        if any {
            key.push('|');
        }
        any = true;
        match v.as_str() {
            Some(s) => normalize_append(s, key),
            None => normalize_append(&v.to_string(), key),
        }
    }
    any
}

/// The shard a precomputed blocking key maps to — the single formula
/// [`KeyPartitioner`] and key-reusing scans (sharded fusion blocking) both
/// apply, so a row's shard never depends on which path computed its key.
pub fn shard_of_key(key: &str, shards: usize) -> usize {
    let mut hash = FNV_OFFSET;
    fnv1a(&mut hash, key.as_bytes());
    (hash % shards.max(1) as u64) as usize
}

/// The fusion-aware partitioner: shard by the normalised blocking key over
/// the given columns, so every row of one block lands in one shard and a
/// per-shard blocking scan owns its blocks completely. Rows whose key
/// cells are all null (blocking singletons) fall back to the whole-tuple
/// hash, spreading them uniformly.
#[derive(Debug, Clone, Default)]
pub struct KeyPartitioner {
    /// Column indices of the blocking key attributes.
    pub cols: Vec<usize>,
}

impl Partitioner for KeyPartitioner {
    fn name(&self) -> &str {
        "blocking-key"
    }

    fn shard_of(&self, tuple: &Tuple, shards: usize) -> usize {
        let mut key = String::new();
        if blocking_key(tuple, &self.cols, &mut key) {
            shard_of_key(&key, shards)
        } else {
            HashPartitioner.shard_of(tuple, shards)
        }
    }
}

/// Compute the shard of every tuple (in input order) under `partitioner`.
/// The per-row evaluation runs under `par` (this is a real scan for key
/// partitioners, which normalise text per row); a panicking partitioner is
/// captured and surfaced as `VadaError::Parallel` naming `stage`, like any
/// other per-shard scan stage.
pub fn assign_shards(
    par: Parallelism,
    stage: &str,
    tuples: &[Tuple],
    partitioner: &(dyn Partitioner + Sync),
    shards: usize,
) -> Result<Vec<usize>> {
    par::par_map(par, stage, tuples, |_, t| partitioner.shard_of(t, shards))
}

/// Group row indices by shard: `result[s]` lists the rows assigned to
/// shard `s` in ascending (input) order.
pub fn rows_by_shard(assignment: &[usize], shards: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new(); shards.max(1)];
    for (row, &s) in assignment.iter().enumerate() {
        out[s].push(row);
    }
    out
}

/// Re-interleave per-shard outputs into input order: `per_shard[s]` holds
/// one output per row assigned to shard `s`, in that shard's (ascending)
/// row order; the merge walks `assignment` and pops from the owning
/// shard's queue, reproducing exactly the sequence a monolithic scan
/// would have produced. Panics if the per-shard lengths do not match the
/// assignment (a bug in the caller's scan, not a data condition).
pub fn merge_in_order<T>(assignment: &[usize], per_shard: Vec<Vec<T>>) -> Vec<T> {
    let mut cursors: Vec<std::vec::IntoIter<T>> =
        per_shard.into_iter().map(|v| v.into_iter()).collect();
    let merged: Vec<T> = assignment
        .iter()
        .map(|&s| {
            cursors[s]
                .next()
                .expect("per-shard outputs must cover the assignment")
        })
        .collect();
    assert!(
        cursors.iter_mut().all(|c| c.next().is_none()),
        "per-shard outputs must not exceed the assignment"
    );
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn rows(n: usize) -> Vec<Tuple> {
        (0..n as i64).map(|i| tuple![i, format!("row {i}")]).collect()
    }

    #[test]
    fn env_override_contract() {
        match std::env::var("VADA_SHARDS").ok().and_then(|v| v.trim().parse::<usize>().ok()) {
            Some(n) if n >= 2 => assert_eq!(Sharding::from_env(), Sharding::Shards(n)),
            _ => assert_eq!(Sharding::from_env(), Sharding::Off),
        }
        assert_eq!(Sharding::Off.shard_count(), 1);
        assert_eq!(Sharding::Shards(4).shard_count(), 4);
        assert_eq!(Sharding::Shards(0).shard_count(), 1);
        assert_eq!(Sharding::Shards(usize::MAX).shard_count(), MAX_SHARDS);
        assert!(!Sharding::Off.is_sharded());
        assert!(Sharding::Shards(2).is_sharded());
    }

    #[test]
    fn hash_assignment_is_stable_and_content_only() {
        let ts = rows(64);
        let a1 = assign_shards(Parallelism::Sequential, "t", &ts, &HashPartitioner, 4).unwrap();
        let a2 = assign_shards(Parallelism::Threads(3), "t", &ts, &HashPartitioner, 4).unwrap();
        assert_eq!(a1, a2);
        assert!(a1.iter().all(|&s| s < 4));
        // equal tuples co-locate
        assert_eq!(
            HashPartitioner.shard_of(&tuple![7, "row 7"], 4),
            a1[7]
        );
        // the layout is a pinned pure function: if this assertion ever
        // fires, the stable hash changed and every sharded layout moved
        assert_eq!(stable_tuple_hash(&tuple![1, "x"]), stable_tuple_hash(&tuple![1, "x"]));
        assert_ne!(stable_tuple_hash(&tuple![1, "x"]), stable_tuple_hash(&tuple![2, "x"]));
    }

    #[test]
    fn key_partitioner_co_locates_blocking_keys() {
        let a = tuple!["12 High St.", "M1 1AA"];
        let b = tuple!["99 park rd", "M1 1AA"];
        let c = tuple!["1 other ln", "EH1 1AA"];
        let p = KeyPartitioner { cols: vec![1] };
        for n in [2usize, 3, 4, 7] {
            assert_eq!(p.shard_of(&a, n), p.shard_of(&b, n), "same key, {n} shards");
            assert!(p.shard_of(&c, n) < n);
        }
        // all-null key rows spread by whole-tuple hash, not all to shard 0
        let null_row = Tuple::new(vec![Value::str("x"), Value::Null]);
        assert_eq!(
            p.shard_of(&null_row, 5),
            HashPartitioner.shard_of(&null_row, 5)
        );
    }

    #[test]
    fn merge_reproduces_input_order() {
        let ts = rows(97);
        for n in [1usize, 2, 3, 8] {
            let assignment =
                assign_shards(Parallelism::Sequential, "t", &ts, &HashPartitioner, n).unwrap();
            let by_shard = rows_by_shard(&assignment, n);
            let mut covered: Vec<usize> = by_shard.concat();
            covered.sort_unstable();
            assert_eq!(covered, (0..ts.len()).collect::<Vec<_>>(), "{n} shards");
            // per-shard scan output = the rows themselves
            let per_shard: Vec<Vec<Tuple>> = by_shard
                .iter()
                .map(|rows| rows.iter().map(|&r| ts[r].clone()).collect())
                .collect();
            assert_eq!(merge_in_order(&assignment, per_shard), ts, "{n} shards");
        }
    }

    #[test]
    fn blocking_key_matches_fusion_semantics() {
        let mut key = String::new();
        assert!(blocking_key(&tuple!["12 High St.", "M1 1AA"], &[0, 1], &mut key));
        let first = key.clone();
        assert!(blocking_key(&tuple!["12 high st", "M1 1AA"], &[0, 1], &mut key));
        assert_eq!(first, key, "normalisation folds case/punctuation");
        let null_row = Tuple::new(vec![Value::Null, Value::Null]);
        assert!(!blocking_key(&null_row, &[0, 1], &mut key));
    }
}
