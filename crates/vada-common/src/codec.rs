//! Canonical, versioned binary encoding for [`Value`]s and [`Tuple`]s —
//! the serialization boundary the durable knowledge base (WAL records,
//! snapshots) and any future wire transport share.
//!
//! Design rules:
//!
//! - **Canonical**: one byte string per logical value. Floats are encoded
//!   by bit pattern *after* [`Value::canonical_f64`] (all NaN payloads
//!   unified, `-0.0` folded into `+0.0`), so two values that compare equal
//!   under the total [`Value`] order encode identically, and
//!   encode∘decode∘encode is byte-stable.
//! - **Total**: every value round-trips — embedded NUL bytes, newlines,
//!   max-magnitude integers, infinities — because fields are length- or
//!   tag-delimited, never sentinel-delimited.
//! - **Versioned**: containers that persist these bytes (the WAL, the
//!   snapshot) carry [`FORMAT_VERSION`] in their headers; the encoding
//!   itself never changes shape silently. Decoders reject unknown tags
//!   with [`VadaError::Storage`] instead of guessing.
//!
//! The primitive readers/writers (`put_*`, [`Reader`]) are public so that
//! higher layers (e.g. `vada-kb`'s delta-event codec) compose record
//! formats from the same primitives rather than inventing parallel ones.

use crate::error::{Result, VadaError};
use crate::tuple::Tuple;
use crate::value::Value;

/// Version of the value/tuple encoding. Bump on any change to the byte
/// layout; persistent containers store it in their headers and refuse
/// versions they do not understand.
pub const FORMAT_VERSION: u8 = 1;

// ---------------------------------------------------------------------
// primitive writers
// ---------------------------------------------------------------------

/// Append one byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `i64`.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed (`u32`) byte string.
pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u32(out, v.len() as u32);
    out.extend_from_slice(v);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, v: &str) {
    put_bytes(out, v.as_bytes());
}

// ---------------------------------------------------------------------
// primitive reader
// ---------------------------------------------------------------------

/// A bounds-checked cursor over an encoded buffer. Every read either
/// yields the decoded primitive or a [`VadaError::Storage`] — a short
/// buffer can never panic or silently yield garbage.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Error if any bytes remain — catches trailing garbage after a
    /// supposedly complete record.
    pub fn expect_done(&self) -> Result<()> {
        if self.is_done() {
            Ok(())
        } else {
            Err(VadaError::Storage(format!(
                "codec: {} trailing bytes after record",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(VadaError::Storage(format!(
                "codec: unexpected end of input (need {n}, have {})",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|e| VadaError::Storage(format!("codec: invalid utf-8 string: {e}")))
    }
}

// ---------------------------------------------------------------------
// values & tuples
// ---------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;

/// Append the canonical encoding of one value.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => put_u8(out, TAG_NULL),
        Value::Bool(b) => {
            put_u8(out, TAG_BOOL);
            put_u8(out, *b as u8);
        }
        Value::Int(i) => {
            put_u8(out, TAG_INT);
            put_i64(out, *i);
        }
        Value::Float(f) => {
            put_u8(out, TAG_FLOAT);
            // bit pattern, canonicalized: -0.0 folds into +0.0, every NaN
            // payload unifies — so values equal under the total Value
            // order encode byte-identically
            put_u64(out, Value::canonical_f64(*f));
        }
        Value::Str(s) => {
            put_u8(out, TAG_STR);
            put_str(out, s);
        }
    }
}

/// Decode one value.
pub fn decode_value(r: &mut Reader<'_>) -> Result<Value> {
    match r.u8()? {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL => match r.u8()? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            other => Err(VadaError::Storage(format!("codec: invalid bool byte {other}"))),
        },
        TAG_INT => Ok(Value::Int(r.i64()?)),
        TAG_FLOAT => Ok(Value::Float(f64::from_bits(r.u64()?))),
        TAG_STR => Ok(Value::str(r.str()?)),
        other => Err(VadaError::Storage(format!("codec: unknown value tag {other}"))),
    }
}

/// Append the canonical encoding of one tuple (arity-prefixed).
pub fn encode_tuple(t: &Tuple, out: &mut Vec<u8>) {
    put_u32(out, t.arity() as u32);
    for v in t.iter() {
        encode_value(v, out);
    }
}

/// Decode one tuple.
pub fn decode_tuple(r: &mut Reader<'_>) -> Result<Tuple> {
    let arity = r.u32()? as usize;
    let mut values = Vec::with_capacity(arity.min(1024));
    for _ in 0..arity {
        values.push(decode_value(r)?);
    }
    Ok(Tuple::new(values))
}

/// Append a count-prefixed sequence of tuples.
pub fn encode_tuples(ts: &[Tuple], out: &mut Vec<u8>) {
    put_u32(out, ts.len() as u32);
    for t in ts {
        encode_tuple(t, out);
    }
}

/// Decode a count-prefixed sequence of tuples.
pub fn decode_tuples(r: &mut Reader<'_>) -> Result<Vec<Tuple>> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        out.push(decode_tuple(r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn round_trip_value(v: &Value) -> Value {
        let mut buf = Vec::new();
        encode_value(v, &mut buf);
        let mut r = Reader::new(&buf);
        let back = decode_value(&mut r).unwrap();
        r.expect_done().unwrap();
        back
    }

    #[test]
    fn every_variant_round_trips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(3.25),
            Value::Float(f64::INFINITY),
            Value::Float(f64::NEG_INFINITY),
            Value::str(""),
            Value::str("line\nbreak\0nul,comma\"quote"),
        ] {
            assert_eq!(round_trip_value(&v), v, "{v:?}");
        }
    }

    #[test]
    fn floats_canonicalize_on_encode() {
        // -0.0 and +0.0 (equal under the total order) encode identically
        let mut a = Vec::new();
        let mut b = Vec::new();
        encode_value(&Value::Float(0.0), &mut a);
        encode_value(&Value::Float(-0.0), &mut b);
        assert_eq!(a, b);
        // NaN round-trips to the canonical NaN, which is Value-equal
        let back = round_trip_value(&Value::Float(f64::NAN));
        assert_eq!(back, Value::Float(f64::NAN));
        // and re-encoding the decoded value is byte-stable
        let mut again = Vec::new();
        encode_value(&back, &mut again);
        let mut first = Vec::new();
        encode_value(&Value::Float(f64::NAN), &mut first);
        assert_eq!(again, first);
    }

    #[test]
    fn tuples_round_trip() {
        let t = tuple![1, "x", 2.5, true];
        let mut buf = Vec::new();
        encode_tuple(&t, &mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(decode_tuple(&mut r).unwrap(), t);
        assert!(r.is_done());
    }

    #[test]
    fn short_buffers_error_never_panic() {
        let mut buf = Vec::new();
        encode_tuple(&tuple![1, "abc"], &mut buf);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(decode_tuple(&mut r).is_err(), "cut at {cut} must error");
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut r = Reader::new(&[99]);
        let e = decode_value(&mut r).unwrap_err();
        assert_eq!(e.kind(), "storage");
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut buf = Vec::new();
        encode_value(&Value::Int(7), &mut buf);
        buf.push(0);
        let mut r = Reader::new(&buf);
        decode_value(&mut r).unwrap();
        assert!(r.expect_done().is_err());
    }
}
