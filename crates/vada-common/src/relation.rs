//! In-memory relations: a [`Schema`] plus a bag of [`Tuple`]s with optional
//! hash indexes.
//!
//! Relations are the unit of data exchanged between wrangling components and
//! stored in the knowledge base. They are bags (duplicates allowed) because
//! extraction output routinely contains duplicates — deduplication is itself
//! a wrangling step (`vada-fusion`).

use std::collections::HashMap;
use std::fmt;

use crate::error::{Result, VadaError};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// An in-memory relation (bag semantics) with lazily built hash indexes.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    tuples: Vec<Tuple>,
    /// column set -> (key values -> row ids). Rebuilt on demand, invalidated
    /// by mutation.
    indexes: HashMap<Vec<usize>, HashMap<Tuple, Vec<usize>>>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(schema: Schema) -> Relation {
        Relation { schema, tuples: Vec::new(), indexes: HashMap::new() }
    }

    /// Build a relation from tuples, validating arity (types are not strictly
    /// enforced: wrangling inputs are dirty by nature, and nulls are legal in
    /// every column).
    pub fn from_tuples(schema: Schema, tuples: Vec<Tuple>) -> Result<Relation> {
        for t in &tuples {
            if t.arity() != schema.arity() {
                return Err(VadaError::Schema(format!(
                    "tuple arity {} does not match schema `{}` arity {}",
                    t.arity(),
                    schema.name,
                    schema.arity()
                )));
            }
        }
        Ok(Relation { schema, tuples, indexes: HashMap::new() })
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The relation's name (shorthand for `schema().name`).
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples as a slice.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Iterate over tuples.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// Append a tuple, validating arity.
    pub fn push(&mut self, tuple: Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(VadaError::Schema(format!(
                "tuple arity {} does not match schema `{}` arity {}",
                tuple.arity(),
                self.schema.name,
                self.schema.arity()
            )));
        }
        self.indexes.clear();
        self.tuples.push(tuple);
        Ok(())
    }

    /// Append many tuples.
    pub fn extend(&mut self, tuples: impl IntoIterator<Item = Tuple>) -> Result<()> {
        for t in tuples {
            self.push(t)?;
        }
        Ok(())
    }

    /// Replace tuple at `row`, keeping indexes coherent.
    pub fn replace(&mut self, row: usize, tuple: Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(VadaError::Schema("arity mismatch in replace".into()));
        }
        if row >= self.tuples.len() {
            return Err(VadaError::Schema(format!("row {row} out of range")));
        }
        self.indexes.clear();
        self.tuples[row] = tuple;
        Ok(())
    }

    /// Insert a tuple at `row` (shifting later rows up by one),
    /// validating arity. `row == len` appends.
    pub fn insert(&mut self, row: usize, tuple: Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(VadaError::Schema("arity mismatch in insert".into()));
        }
        if row > self.tuples.len() {
            return Err(VadaError::Schema(format!("row {row} out of range for insert")));
        }
        self.indexes.clear();
        self.tuples.insert(row, tuple);
        Ok(())
    }

    /// Remove the tuples at the given row indices (interpreted against the
    /// pre-removal numbering; duplicates are collapsed), preserving the
    /// relative order of the remaining rows. Returns the removed tuples in
    /// ascending row order.
    pub fn remove_rows(&mut self, rows: &[usize]) -> Result<Vec<Tuple>> {
        let mut sorted: Vec<usize> = rows.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if let Some(&last) = sorted.last() {
            if last >= self.tuples.len() {
                return Err(VadaError::Schema(format!(
                    "row {last} out of range for `{}` ({} rows)",
                    self.schema.name,
                    self.tuples.len()
                )));
            }
        }
        if sorted.is_empty() {
            return Ok(Vec::new());
        }
        self.indexes.clear();
        let removed: Vec<Tuple> = sorted.iter().map(|&r| self.tuples[r].clone()).collect();
        let mut next = sorted.iter().peekable();
        let mut kept = Vec::with_capacity(self.tuples.len() - sorted.len());
        for (row, t) in self.tuples.drain(..).enumerate() {
            if next.peek() == Some(&&row) {
                next.next();
            } else {
                kept.push(t);
            }
        }
        self.tuples = kept;
        Ok(removed)
    }

    /// Retain only tuples matching the predicate.
    pub fn retain(&mut self, f: impl FnMut(&Tuple) -> bool) {
        self.indexes.clear();
        self.tuples.retain(f);
    }

    /// Remove all tuples.
    pub fn clear(&mut self) {
        self.indexes.clear();
        self.tuples.clear();
    }

    /// Ensure a hash index exists on the given columns and return row ids
    /// whose key equals `key`.
    pub fn lookup(&mut self, cols: &[usize], key: &Tuple) -> &[usize] {
        if !self.indexes.contains_key(cols) {
            let mut idx: HashMap<Tuple, Vec<usize>> = HashMap::new();
            for (row, t) in self.tuples.iter().enumerate() {
                idx.entry(t.project(cols)).or_default().push(row);
            }
            self.indexes.insert(cols.to_vec(), idx);
        }
        self.indexes
            .get(cols)
            .and_then(|i| i.get(key))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Project to the named attributes (bag semantics preserved).
    pub fn project(&self, names: &[&str]) -> Result<Relation> {
        let schema = self.schema.project(names)?;
        let indices: Vec<usize> = names
            .iter()
            .map(|n| self.schema.require(n))
            .collect::<Result<_>>()?;
        let tuples = self.tuples.iter().map(|t| t.project(&indices)).collect();
        Relation::from_tuples(schema, tuples)
    }

    /// Select tuples where attribute `name` equals `value`.
    pub fn select_eq(&self, name: &str, value: &Value) -> Result<Relation> {
        let idx = self.schema.require(name)?;
        let tuples = self
            .tuples
            .iter()
            .filter(|t| &t[idx] == value)
            .cloned()
            .collect();
        Relation::from_tuples(self.schema.clone(), tuples)
    }

    /// The distinct values in column `name` (nulls excluded), sorted.
    pub fn distinct_values(&self, name: &str) -> Result<Vec<Value>> {
        let idx = self.schema.require(name)?;
        let mut set: Vec<Value> = self
            .tuples
            .iter()
            .map(|t| t[idx].clone())
            .filter(|v| !v.is_null())
            .collect();
        set.sort();
        set.dedup();
        Ok(set)
    }

    /// Fraction of non-null cells in column `name` (1.0 for empty relations:
    /// an empty column violates nothing).
    pub fn completeness(&self, name: &str) -> Result<f64> {
        let idx = self.schema.require(name)?;
        if self.tuples.is_empty() {
            return Ok(1.0);
        }
        let non_null = self.tuples.iter().filter(|t| !t[idx].is_null()).count();
        Ok(non_null as f64 / self.tuples.len() as f64)
    }

    /// Deduplicate identical tuples in place (set semantics snapshot).
    pub fn dedup(&mut self) {
        self.indexes.clear();
        let mut seen = std::collections::HashSet::new();
        self.tuples.retain(|t| seen.insert(t.clone()));
    }

    /// Render as an aligned text table (for reports and the demo harness).
    pub fn to_table(&self, max_rows: usize) -> String {
        let headers = self.schema.attr_names();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let shown = self.tuples.iter().take(max_rows).collect::<Vec<_>>();
        let cells: Vec<Vec<String>> = shown
            .iter()
            .map(|t| t.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, row: &[String]| {
            for (i, c) in row.iter().enumerate() {
                out.push_str("| ");
                out.push_str(c);
                out.push_str(&" ".repeat(widths[i].saturating_sub(c.len()) + 1));
            }
            out.push_str("|\n");
        };
        line(
            &mut out,
            &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
        );
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &cells {
            line(&mut out, row);
        }
        if self.tuples.len() > max_rows {
            out.push_str(&format!("... ({} rows total)\n", self.tuples.len()));
        }
        out
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{} rows]", self.schema, self.tuples.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;
    use crate::tuple;

    fn rel() -> Relation {
        let schema = Schema::new(
            "r",
            [("a", AttrType::Int), ("b", AttrType::Str)],
        )
        .unwrap();
        Relation::from_tuples(
            schema,
            vec![tuple![1, "x"], tuple![2, "y"], tuple![1, "z"]],
        )
        .unwrap()
    }

    #[test]
    fn arity_is_validated() {
        let schema = Schema::all_str("r", &["a"]);
        assert!(Relation::from_tuples(schema.clone(), vec![tuple![1, 2]]).is_err());
        let mut r = Relation::empty(schema);
        assert!(r.push(tuple![1, 2]).is_err());
        assert!(r.push(tuple![1]).is_ok());
    }

    #[test]
    fn lookup_finds_rows() {
        let mut r = rel();
        let rows = r.lookup(&[0], &tuple![1]).to_vec();
        assert_eq!(rows, vec![0, 2]);
        assert!(r.lookup(&[0], &tuple![99]).is_empty());
    }

    #[test]
    fn index_invalidated_on_push() {
        let mut r = rel();
        assert_eq!(r.lookup(&[0], &tuple![1]).len(), 2);
        r.push(tuple![1, "w"]).unwrap();
        assert_eq!(r.lookup(&[0], &tuple![1]).len(), 3);
    }

    #[test]
    fn project_and_select() {
        let r = rel();
        let p = r.project(&["b"]).unwrap();
        assert_eq!(p.schema().arity(), 1);
        assert_eq!(p.len(), 3);
        let s = r.select_eq("a", &Value::Int(1)).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn completeness_counts_nulls() {
        let schema = Schema::all_str("r", &["a"]);
        let r = Relation::from_tuples(
            schema,
            vec![
                Tuple::new(vec![Value::Null]),
                Tuple::new(vec![Value::str("v")]),
            ],
        )
        .unwrap();
        assert!((r.completeness("a").unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_values_sorted_no_nulls() {
        let schema = Schema::all_str("r", &["a"]);
        let r = Relation::from_tuples(
            schema,
            vec![
                Tuple::new(vec![Value::str("b")]),
                Tuple::new(vec![Value::Null]),
                Tuple::new(vec![Value::str("a")]),
                Tuple::new(vec![Value::str("b")]),
            ],
        )
        .unwrap();
        let d = r.distinct_values("a").unwrap();
        assert_eq!(d, vec![Value::str("a"), Value::str("b")]);
    }

    #[test]
    fn remove_rows_preserves_remaining_order() {
        let mut r = rel();
        let removed = r.remove_rows(&[2, 0, 2]).unwrap();
        assert_eq!(removed, vec![tuple![1, "x"], tuple![1, "z"]]);
        assert_eq!(r.tuples(), &[tuple![2, "y"]]);
        assert!(r.remove_rows(&[5]).is_err());
        assert!(r.remove_rows(&[]).unwrap().is_empty());
        // indexes rebuilt against the shrunk relation
        assert!(r.lookup(&[0], &tuple![1]).is_empty());
        assert_eq!(r.lookup(&[0], &tuple![2]), &[0]);
    }

    #[test]
    fn dedup_removes_exact_duplicates() {
        let schema = Schema::all_str("r", &["a"]);
        let mut r = Relation::from_tuples(
            schema,
            vec![
                Tuple::new(vec![Value::str("x")]),
                Tuple::new(vec![Value::str("x")]),
            ],
        )
        .unwrap();
        r.dedup();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn to_table_renders() {
        let r = rel();
        let t = r.to_table(2);
        assert!(t.contains("| a"));
        assert!(t.contains("(3 rows total)"));
    }
}
