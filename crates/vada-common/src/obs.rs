//! Deterministic observability: one stats surface for the whole pipeline.
//!
//! Every subsystem grown since the seed — the parallel substrate, the
//! semi-naive engine, the incremental sessions, the sharded store, the
//! write-ahead log, the demand-driven query path — accumulated its own
//! ad-hoc peephole (`dep_cache_stats()`, `storage_health()`,
//! `DeltaOutcome` histories, `Demand::fallback_reason`). This module
//! replaces those with a single layer:
//!
//! - a **counter registry**: named monotone `u64` counters recording
//!   *semantic events* (stratum passes, delta outcomes, WAL appends,
//!   shard sync modes, dep-cache patches), never scheduling artifacts;
//! - a **span tree**: hierarchical [`SpanGuard`]s opened on coordinating
//!   threads only, carrying structural attributes; wall-clock durations
//!   are quarantined in a separate timing channel so structural output
//!   stays byte-comparable;
//! - a **JSON-lines export** via the `VADA_OBS` knob (`stderr`, `tmpfile`,
//!   or a path — mirroring the `VADA_THREADS`/`VADA_WAL` env-default
//!   pattern) and a programmatic [`ObsReport`].
//!
//! ## Determinism contract
//!
//! Counters split into two classes by name:
//!
//! - **structural** counters live under the `pipeline.` prefix
//!   ([`Obs::is_structural`]) and are byte-identical across the entire
//!   `{threads × shards × incremental × wal × magic}` knob matrix — they
//!   count what the pipeline *computed* (orchestrator steps, writes,
//!   knowledge-base events), which the equivalence suites already pin.
//! - everything else is a **mode-scoped** diagnostic: it exists only under
//!   its knob (`wal.*` only when durable, `incremental.*` only under delta
//!   evaluation, `shard.*` only when sharded) but is still invariant to
//!   the *thread count*, because increments happen per semantic event, not
//!   per scheduling decision.
//!
//! ## Cost contract
//!
//! [`Obs`] is a cheap clonable handle; [`Obs::disabled`] is a
//! const-constructible no-op stub ([`Obs::disabled_ref`] hands out the
//! `&'static` instance). When disabled, every counter call is a single
//! branch, spans are elided entirely (no allocation, no lock), and no
//! state is ever observable — the property suite pins this.
//!
//! ## Failure contract
//!
//! A sink must never poison a run. Sink writes are wrapped in
//! `catch_unwind`; the first failure (panic or `Err`) detaches the sink
//! and is surfaced — sticky — through [`Obs::health`], mirroring the
//! knowledge base's `storage_health()`. Collection continues in memory.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::error::{Result, VadaError};

/// Canonical counter names, so call sites and tests cannot drift.
///
/// Names under `pipeline.` are **structural** (knob-matrix invariant);
/// everything else is a mode-scoped diagnostic (still thread-invariant).
pub mod key {
    /// Orchestrator steps taken (trace entries). Structural.
    pub const ORCH_STEPS: &str = "pipeline.orchestrator.steps";
    /// Knowledge-base writes performed by transducers. Structural.
    pub const ORCH_WRITES: &str = "pipeline.orchestrator.writes";
    /// Per-activity run tally: `pipeline.activity.<tag>`. Structural.
    pub const ACTIVITY_PREFIX: &str = "pipeline.activity.";
    /// Delta events appended to the knowledge-base journal. Structural.
    pub const KB_EVENTS: &str = "pipeline.kb.events";

    /// Datalog queries answered by the knowledge base.
    pub const KB_QUERIES: &str = "kb.queries";
    /// Dependency-cache from-scratch rebuilds.
    pub const DEPCACHE_REBUILDS: &str = "kb.depcache.rebuilds";
    /// Dependency-cache journal-driven patches.
    pub const DEPCACHE_PATCHES: &str = "kb.depcache.patches";
    /// Storage failures observed (each detaching failure, not just the
    /// sticky first).
    pub const STORAGE_ERRORS: &str = "kb.storage.errors";

    /// WAL records appended.
    pub const WAL_APPENDS: &str = "wal.appends";
    /// WAL fsyncs issued (one per append under the current contract).
    pub const WAL_FSYNCS: &str = "wal.fsyncs";
    /// Encoded WAL payload bytes appended (pre-framing).
    pub const WAL_BYTES: &str = "wal.bytes";
    /// Log compactions (snapshot + truncate).
    pub const WAL_COMPACTIONS: &str = "wal.compactions";

    /// Initial stratum passes evaluated.
    pub const STRATUM_PASSES: &str = "datalog.stratum.passes";
    /// Semi-naive delta re-passes evaluated.
    pub const DELTA_PASSES: &str = "datalog.delta.passes";
    /// Shared-index refreshes over the growing database.
    pub const INDEX_BUILDS: &str = "datalog.index.builds";
    /// Shared-index probes served.
    pub const INDEX_PROBES: &str = "datalog.index.probes";
    /// Join-planner choices: literals planned against a shared index.
    pub const JOIN_INDEXED: &str = "datalog.join.indexed";
    /// Join-planner choices: literals planned as scans.
    pub const JOIN_SCAN: &str = "datalog.join.scan";

    /// Demand rewrites that restricted the program (magic rules emitted).
    pub const MAGIC_APPLIED: &str = "magic.rewrite.applied";
    /// Demand rewrites that resolved to the identity program.
    pub const MAGIC_UNRESTRICTED: &str = "magic.rewrite.unrestricted";
    /// Magic rules generated across applied rewrites.
    pub const MAGIC_RULES: &str = "magic.rules";
    /// Seed demand facts generated across applied rewrites.
    pub const MAGIC_DEMAND_FACTS: &str = "magic.demand_facts";

    /// Query-cache answers served (or maintained in O(change)) from a
    /// cached demanded view.
    pub const MAGIC_CACHE_HITS: &str = "magic.cache.hits";
    /// Query-cache cold builds (first sight of a (program, query) pair).
    pub const MAGIC_CACHE_MISSES: &str = "magic.cache.misses";
    /// Cached views (or persistent index sets) discarded: journal lineage
    /// diverged, the delta window was pruned, or the deltas were not
    /// provably replayable.
    pub const MAGIC_CACHE_INVALIDATIONS: &str = "magic.cache.invalidations";

    /// Incremental steps that ran as explicit bootstraps.
    pub const INC_BOOTSTRAP: &str = "incremental.outcome.bootstrap";
    /// Incremental steps that took the semi-naive fast path.
    pub const INC_INCREMENTAL: &str = "incremental.outcome.incremental";
    /// Incremental steps that fell back to a full re-derivation.
    pub const INC_FALLBACK: &str = "incremental.outcome.full_fallback";
    /// Per-reason fallback tally: `incremental.fallback.<slug>`.
    pub const INC_FALLBACK_PREFIX: &str = "incremental.fallback.";

    /// Shard syncs that repartitioned from scratch.
    pub const SHARD_SYNC_REBUILD: &str = "shard.sync.rebuild";
    /// Shard syncs that routed journal events.
    pub const SHARD_SYNC_ROUTED: &str = "shard.sync.routed";
    /// Shard syncs that found nothing to do.
    pub const SHARD_SYNC_NOOP: &str = "shard.sync.noop";
    /// Journal events routed to shards across routed syncs.
    pub const SHARD_ROUTED_EVENTS: &str = "shard.routed_events";

    /// Full (from-scratch) mapping executions.
    pub const MAP_FULL: &str = "map.execute.full";
    /// Incremental mapping executions (delta-maintained).
    pub const MAP_INCREMENTAL: &str = "map.execute.incremental";

    /// Parallel stages dispatched through the obs-aware entry points.
    pub const PAR_STAGES: &str = "par.stages";
    /// Items submitted to those stages.
    pub const PAR_ITEMS: &str = "par.items";

    /// Sink failures observed, plus every export write suppressed after
    /// the sink detached — the size of the telemetry loss, not just the
    /// sticky first error.
    pub const SINK_ERRORS: &str = "obs.sink_errors";
    /// Export-file rotations performed by a rotating sink.
    pub const OBS_ROTATIONS: &str = "obs.rotations";
    /// Counter-snapshot sample records emitted in place of per-event
    /// lines (`sample=M` export policy).
    pub const OBS_SAMPLES: &str = "obs.samples";
}

/// Lock a mutex, recovering from poisoning (a panicking worker must not
/// take the whole registry down — counters are monotone `u64`s, so the
/// state is valid regardless of where the panic hit).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Reduce a free-form reason string to a stable counter-name suffix:
/// lowercase, alphanumerics kept, every other run collapsed to `_`,
/// truncated so registry keys stay bounded.
pub fn slug(s: &str) -> String {
    let mut out = String::with_capacity(s.len().min(48));
    let mut gap = false;
    for c in s.chars() {
        if c.is_ascii_alphanumeric() {
            if gap && !out.is_empty() {
                out.push('_');
            }
            gap = false;
            out.push(c.to_ascii_lowercase());
            if out.len() >= 48 {
                break;
            }
        } else {
            gap = true;
        }
    }
    if out.is_empty() {
        out.push_str("unknown");
    }
    out
}

// ---------------------------------------------------------------------
// sinks
// ---------------------------------------------------------------------

/// Where exported JSON lines go. Implementations must be `Send`; they are
/// invoked under the collector's sink lock, wrapped in `catch_unwind`.
pub trait ObsSink: Send {
    /// Write one complete JSON line (no trailing newline).
    fn write_line(&mut self, line: &str) -> Result<()>;
    /// Flush buffered output, if any.
    fn flush(&mut self) -> Result<()> {
        Ok(())
    }
    /// Rotations performed so far (rotating sinks only). The collector
    /// folds the running total into the `obs.rotations` counter after
    /// each successful sink operation.
    fn rotations(&self) -> u64 {
        0
    }
}

/// JSON lines to standard error.
pub struct StderrSink;

impl ObsSink for StderrSink {
    fn write_line(&mut self, line: &str) -> Result<()> {
        let mut err = std::io::stderr().lock();
        writeln!(err, "{line}").map_err(|e| VadaError::Obs(format!("stderr: {e}")))
    }
}

/// JSON lines appended to a file. Each line is a single `write` on an
/// append-mode handle, so concurrent collectors sharing a path interleave
/// whole lines, never fragments.
pub struct FileSink {
    file: std::fs::File,
}

/// Open (append, create) a sink file, creating parent directories.
fn open_append(path: &std::path::Path) -> Result<std::fs::File> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| VadaError::Obs(format!("create {}: {e}", dir.display())))?;
        }
    }
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| VadaError::Obs(format!("open {}: {e}", path.display())))
}

impl FileSink {
    /// Open (append, create) the sink file, creating parent directories.
    pub fn open(path: &std::path::Path) -> Result<FileSink> {
        Ok(FileSink { file: open_append(path)? })
    }
}

impl ObsSink for FileSink {
    fn write_line(&mut self, line: &str) -> Result<()> {
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        self.file
            .write_all(buf.as_bytes())
            .map_err(|e| VadaError::Obs(format!("write: {e}")))
    }

    fn flush(&mut self) -> Result<()> {
        self.file
            .flush()
            .map_err(|e| VadaError::Obs(format!("flush: {e}")))
    }
}

/// [`FileSink`] with size-based rotation: a line that would push the
/// current file past `rotate_bytes` first shifts the generation chain
/// `<path>.1 .. <path>.keep` by atomic renames (oldest generation falls
/// off the end) and reopens a fresh file. The decision is taken *before*
/// writing, so a JSON line is never torn across generations — every file
/// in the chain is a well-formed JSON-lines document.
pub struct RotatingFileSink {
    path: PathBuf,
    file: std::fs::File,
    /// Bytes in the live file (seeded from its length on open, so an
    /// exporter restarted onto an existing file rotates on schedule).
    written: u64,
    rotate_bytes: u64,
    keep: usize,
    rotations: u64,
}

impl RotatingFileSink {
    /// Open the live file (append, create), rotating once it would
    /// exceed `rotate_bytes` and keeping `keep` rotated generations.
    pub fn open(path: &std::path::Path, rotate_bytes: u64, keep: usize) -> Result<RotatingFileSink> {
        let file = open_append(path)?;
        let written = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(RotatingFileSink {
            path: path.to_path_buf(),
            file,
            written,
            rotate_bytes: rotate_bytes.max(1),
            keep: keep.max(1),
            rotations: 0,
        })
    }

    fn generation(&self, i: usize) -> PathBuf {
        let mut name = self.path.as_os_str().to_os_string();
        name.push(format!(".{i}"));
        PathBuf::from(name)
    }

    fn rotate(&mut self) -> Result<()> {
        self.file
            .flush()
            .map_err(|e| VadaError::Obs(format!("flush before rotate: {e}")))?;
        let _ = std::fs::remove_file(self.generation(self.keep));
        for i in (1..self.keep).rev() {
            let from = self.generation(i);
            if from.exists() {
                std::fs::rename(&from, self.generation(i + 1)).map_err(|e| {
                    VadaError::Obs(format!("rotate {}: {e}", from.display()))
                })?;
            }
        }
        std::fs::rename(&self.path, self.generation(1))
            .map_err(|e| VadaError::Obs(format!("rotate {}: {e}", self.path.display())))?;
        self.file = open_append(&self.path)?;
        self.written = 0;
        self.rotations += 1;
        Ok(())
    }
}

impl ObsSink for RotatingFileSink {
    fn write_line(&mut self, line: &str) -> Result<()> {
        let len = line.len() as u64 + 1;
        if self.written > 0 && self.written + len > self.rotate_bytes {
            self.rotate()?;
        }
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        self.file
            .write_all(buf.as_bytes())
            .map_err(|e| VadaError::Obs(format!("write: {e}")))?;
        self.written += len;
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.file
            .flush()
            .map_err(|e| VadaError::Obs(format!("flush: {e}")))
    }

    fn rotations(&self) -> u64 {
        self.rotations
    }
}

/// Export-sink policy, parsed from trailing `rotate=`/`keep=`/`sample=`
/// options on the `VADA_OBS` value (e.g. `out.jsonl:rotate=65536:sample=100`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExportPolicy {
    /// Rotate the export file once it would exceed this many bytes
    /// (0 = never rotate).
    pub rotate_bytes: u64,
    /// Rotated generations kept as `<path>.1 .. <path>.keep`.
    pub keep: usize,
    /// Emit one counter-snapshot `sample` record per this many per-event
    /// lines instead of the lines themselves (0 = export every line).
    pub sample_every: u64,
}

impl Default for ExportPolicy {
    fn default() -> ExportPolicy {
        ExportPolicy { rotate_bytes: 0, keep: 3, sample_every: 0 }
    }
}

impl ExportPolicy {
    /// Split a `VADA_OBS` value into its sink spec and policy: trailing
    /// `:rotate=N` / `:keep=N` / `:sample=N` segments are consumed from
    /// the right; everything before them (which may itself contain `:`)
    /// is the sink spec.
    pub fn parse(value: &str) -> (&str, ExportPolicy) {
        let mut policy = ExportPolicy::default();
        let mut spec = value;
        loop {
            let Some((head, tail)) = spec.rsplit_once(':') else { break };
            let opt = tail.trim();
            let parsed = opt.split_once('=').and_then(|(k, v)| {
                let n = v.trim().parse::<u64>().ok()?;
                Some((k.trim(), n))
            });
            match parsed {
                Some(("rotate", n)) => policy.rotate_bytes = n,
                Some(("keep", n)) => policy.keep = (n as usize).max(1),
                Some(("sample", n)) => policy.sample_every = n,
                _ => break,
            }
            spec = head;
        }
        (spec, policy)
    }
}

/// A sink that collects lines in memory — the test harness's sink.
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// The sink plus a shared handle to the lines it will collect.
    pub fn new() -> (MemorySink, Arc<Mutex<Vec<String>>>) {
        let lines = Arc::new(Mutex::new(Vec::new()));
        (MemorySink { lines: lines.clone() }, lines)
    }
}

impl ObsSink for MemorySink {
    fn write_line(&mut self, line: &str) -> Result<()> {
        lock(&self.lines).push(line.to_string());
        Ok(())
    }
}

// ---------------------------------------------------------------------
// collector
// ---------------------------------------------------------------------

/// One recorded span: a named stage with structural attributes. Durations
/// live in the separate timing channel ([`Timing`]), never here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// 1-based id; 0 is the implicit root.
    pub id: u64,
    /// Parent span id (0 = top level).
    pub parent: u64,
    /// Stage name, e.g. `orchestrator/step`.
    pub name: String,
    /// Structural attributes in insertion order.
    pub attrs: Vec<(String, String)>,
}

/// One wall-clock measurement, quarantined from the structural channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// The span this measurement belongs to.
    pub span: u64,
    /// Elapsed microseconds between open and close.
    pub micros: u64,
}

struct SpanState {
    records: Vec<SpanRecord>,
    /// Open spans on the coordinating thread, innermost last.
    stack: Vec<u64>,
}

struct SinkState {
    sink: Option<Box<dyn ObsSink>>,
    error: Option<VadaError>,
    path: Option<PathBuf>,
    /// `sample=M` policy: emit one counter-snapshot record per `M`
    /// per-event lines instead of the lines themselves (0 = off).
    sample_every: u64,
    /// Per-event lines seen while sampling is active.
    sampled: u64,
    /// Sink rotations already folded into `obs.rotations`.
    rotations_seen: u64,
}

/// The shared collection state behind an enabled [`Obs`] handle.
pub struct ObsCollector {
    counters: Mutex<BTreeMap<String, u64>>,
    spans: Mutex<SpanState>,
    timings: Mutex<Vec<Timing>>,
    sink: Mutex<SinkState>,
    sink_failures: AtomicU64,
}

impl ObsCollector {
    fn new(sink: Option<Box<dyn ObsSink>>, path: Option<PathBuf>, sample_every: u64) -> ObsCollector {
        ObsCollector {
            counters: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(SpanState { records: Vec::new(), stack: Vec::new() }),
            timings: Mutex::new(Vec::new()),
            sink: Mutex::new(SinkState {
                sink,
                error: None,
                path,
                sample_every,
                sampled: 0,
                rotations_seen: 0,
            }),
            sink_failures: AtomicU64::new(0),
        }
    }
}

/// Sequence for `VADA_OBS=tmpfile` file names: several collectors in one
/// process must not clobber each other's telemetry.
static NEXT_OBS_FILE: AtomicU64 = AtomicU64::new(0);

/// A cheap clonable observability handle: either a shared collector or
/// the disabled no-op stub. Cloning shares the underlying registry.
#[derive(Clone)]
pub struct Obs {
    inner: Option<Arc<ObsCollector>>,
}

impl Default for Obs {
    /// Disabled. Collection is opt-in from the owning layer (`Wrangler`
    /// reads `VADA_OBS`); embedded configs must not each open a sink.
    fn default() -> Obs {
        Obs::disabled()
    }
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => write!(f, "Obs(disabled)"),
            Some(c) => write!(f, "Obs(enabled, {} counters)", lock(&c.counters).len()),
        }
    }
}

impl Obs {
    /// The no-op stub: every operation is a single branch, nothing is
    /// recorded, nothing allocates.
    pub const fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// The `&'static` disabled stub, for call sites that want to borrow
    /// an observability handle unconditionally.
    pub fn disabled_ref() -> &'static Obs {
        static DISABLED: Obs = Obs::disabled();
        &DISABLED
    }

    /// An enabled in-memory collector with no export sink.
    pub fn enabled() -> Obs {
        Obs { inner: Some(Arc::new(ObsCollector::new(None, None, 0))) }
    }

    /// An enabled collector exporting JSON lines to `sink`.
    pub fn with_sink(sink: Box<dyn ObsSink>) -> Obs {
        Obs { inner: Some(Arc::new(ObsCollector::new(Some(sink), None, 0))) }
    }

    /// [`Obs::with_sink`] under an export policy (the sampling half; the
    /// rotation half lives in the sink itself).
    pub fn with_sink_policy(sink: Box<dyn ObsSink>, policy: ExportPolicy) -> Obs {
        Obs { inner: Some(Arc::new(ObsCollector::new(Some(sink), None, policy.sample_every))) }
    }

    /// Read the `VADA_OBS` override (the env-default pattern shared with
    /// `VADA_THREADS` / `VADA_WAL`):
    ///
    /// - unset, empty, `0`, or `off` (case-insensitive) → disabled
    /// - `stderr` → JSON lines on standard error
    /// - `tmpfile` → a fresh `obs-<pid>-<n>.jsonl` under
    ///   `$TMPDIR/vada-obs/` — the spelling the CI all-knobs leg uses
    /// - anything else → treated as a file path (append mode)
    ///
    /// Any spelling may carry trailing `:rotate=N` (size-based file
    /// rotation), `:keep=N` (rotated generations retained), and
    /// `:sample=N` (counter-snapshot sampling instead of per-event
    /// lines) options — see [`ExportPolicy`].
    ///
    /// A sink that cannot be opened never fails construction: the
    /// collector starts detached with the error sticky in [`Obs::health`].
    pub fn from_env() -> Obs {
        match std::env::var("VADA_OBS") {
            Err(_) => Obs::disabled(),
            Ok(raw) => {
                let v = raw.trim();
                let (spec, policy) = ExportPolicy::parse(v);
                let spec = spec.trim();
                if spec.is_empty() || spec == "0" || spec.eq_ignore_ascii_case("off") {
                    Obs::disabled()
                } else if spec.eq_ignore_ascii_case("stderr") {
                    Obs::with_sink_policy(Box::new(StderrSink), policy)
                } else {
                    let path = if spec.eq_ignore_ascii_case("tmpfile") {
                        let n = NEXT_OBS_FILE.fetch_add(1, Ordering::Relaxed);
                        std::env::temp_dir().join("vada-obs").join(format!(
                            "obs-{}-{n}.jsonl",
                            std::process::id()
                        ))
                    } else {
                        PathBuf::from(spec)
                    };
                    Obs::at_path_with(path, policy)
                }
            }
        }
    }

    /// An enabled collector exporting to a file at `path` (append mode).
    pub fn at_path(path: PathBuf) -> Obs {
        Obs::at_path_with(path, ExportPolicy::default())
    }

    /// [`Obs::at_path`] under an explicit [`ExportPolicy`]: a nonzero
    /// `rotate_bytes` opens a [`RotatingFileSink`] instead of the plain
    /// append-only [`FileSink`].
    pub fn at_path_with(path: PathBuf, policy: ExportPolicy) -> Obs {
        let opened: Result<Box<dyn ObsSink>> = if policy.rotate_bytes > 0 {
            RotatingFileSink::open(&path, policy.rotate_bytes, policy.keep)
                .map(|s| Box::new(s) as Box<dyn ObsSink>)
        } else {
            FileSink::open(&path).map(|s| Box::new(s) as Box<dyn ObsSink>)
        };
        match opened {
            Ok(sink) => {
                let c = ObsCollector::new(Some(sink), Some(path), policy.sample_every);
                Obs { inner: Some(Arc::new(c)) }
            }
            Err(e) => {
                let c = ObsCollector::new(None, Some(path), policy.sample_every);
                lock(&c.sink).error = Some(e);
                c.sink_failures.fetch_add(1, Ordering::Relaxed);
                Obs { inner: Some(Arc::new(c)) }
            }
        }
    }

    /// Whether collection is live.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether `name` belongs to the structural class — the counters the
    /// determinism contract pins byte-identical across the whole knob
    /// matrix.
    pub fn is_structural(name: &str) -> bool {
        name.starts_with("pipeline.")
    }

    /// Whether a span name belongs to the structural span class — the
    /// spans pinned byte-identical across the whole knob matrix (the
    /// rest of the tree is mode-scoped: it exists only under its knob,
    /// but is still pinned invariant to the thread count).
    pub fn is_structural_span(name: &str) -> bool {
        name.starts_with("orchestrator/")
    }

    /// Add `n` to the named monotone counter. No-op when disabled.
    pub fn add(&self, name: &str, n: u64) {
        let Some(c) = &self.inner else { return };
        let mut map = lock(&c.counters);
        match map.get_mut(name) {
            Some(v) => *v += n,
            None => {
                map.insert(name.to_string(), n);
            }
        }
    }

    /// Increment the named counter by one. No-op when disabled.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of a counter (0 if never touched or disabled).
    pub fn get(&self, name: &str) -> u64 {
        match &self.inner {
            None => 0,
            Some(c) => lock(&c.counters).get(name).copied().unwrap_or(0),
        }
    }

    /// Snapshot of every counter, sorted by name.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        match &self.inner {
            None => BTreeMap::new(),
            Some(c) => lock(&c.counters).clone(),
        }
    }

    /// Snapshot of the structural subset, sorted by name.
    pub fn structural_counters(&self) -> BTreeMap<String, u64> {
        self.counters()
            .into_iter()
            .filter(|(k, _)| Obs::is_structural(k))
            .collect()
    }

    /// Whether two handles share one registry (or are both the disabled
    /// stub). Layers that re-broadcast a shared registry on every run use
    /// this to make the hand-off idempotent.
    pub fn same_registry(&self, other: &Obs) -> bool {
        match (&self.inner, &other.inner) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }

    /// Fold another registry's counters into this one (used when a layer
    /// that collected into a local registry is handed a shared one — the
    /// already-recorded events must not be lost). Merging a registry into
    /// itself is a no-op: broadcast paths run on every execution, and a
    /// self-merge would double every tally.
    pub fn merge_counters_from(&self, other: &Obs) {
        if !self.is_enabled() || self.same_registry(other) {
            return;
        }
        for (k, v) in other.counters() {
            self.add(&k, v);
        }
    }

    /// Open a span. Spans are opened on coordinating threads only — worker
    /// closures never call this — so the stack discipline (and hence the
    /// recorded tree) is deterministic. Disabled handles elide the span
    /// entirely.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        let Some(c) = &self.inner else {
            return SpanGuard { obs: self, id: 0, started: None };
        };
        let id = {
            let mut spans = lock(&c.spans);
            let id = spans.records.len() as u64 + 1;
            let parent = spans.stack.last().copied().unwrap_or(0);
            spans.records.push(SpanRecord {
                id,
                parent,
                name: name.to_string(),
                attrs: Vec::new(),
            });
            spans.stack.push(id);
            id
        };
        SpanGuard { obs: self, id, started: Some(Instant::now()) }
    }

    /// All recorded spans (closed and still open), in open order.
    pub fn span_records(&self) -> Vec<SpanRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(c) => lock(&c.spans).records.clone(),
        }
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(c) => lock(&c.spans).records.len(),
        }
    }

    /// Number of spans currently open on the coordinating thread. A
    /// well-formed run — including one unwound by a panic, since
    /// [`SpanGuard`] closes on drop — ends at zero.
    pub fn open_span_count(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(c) => lock(&c.spans).stack.len(),
        }
    }

    /// The timing channel: one entry per closed span, quarantined from
    /// every structural surface.
    pub fn timings(&self) -> Vec<Timing> {
        match &self.inner {
            None => Vec::new(),
            Some(c) => lock(&c.timings).clone(),
        }
    }

    /// `Ok(())` while the export sink (if any) has never failed; the
    /// sticky first failure otherwise. Mirrors `storage_health()`.
    pub fn health(&self) -> Result<()> {
        match &self.inner {
            None => Ok(()),
            Some(c) => match &lock(&c.sink).error {
                None => Ok(()),
                Some(e) => Err(e.clone()),
            },
        }
    }

    /// Total sink failures plus suppressed export writes — the size of
    /// the telemetry loss behind the sticky [`Obs::health`] error.
    pub fn sink_failures(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(c) => c.sink_failures.load(Ordering::Relaxed),
        }
    }

    /// Whether an export sink is currently attached (a failed sink is
    /// detached, collection continues in memory).
    pub fn sink_attached(&self) -> bool {
        match &self.inner {
            None => false,
            Some(c) => lock(&c.sink).sink.is_some(),
        }
    }

    /// The export file path, when the sink is file-backed.
    pub fn sink_path(&self) -> Option<PathBuf> {
        self.inner.as_ref().and_then(|c| lock(&c.sink).path.clone())
    }

    /// Attach (or replace) the export sink. Clears any sticky error —
    /// the caller is explicitly re-arming export.
    pub fn set_sink(&self, sink: Box<dyn ObsSink>) {
        if let Some(c) = &self.inner {
            let mut s = lock(&c.sink);
            s.sink = Some(sink);
            s.error = None;
        }
    }

    /// Emit the counter snapshot as a JSON line and flush the sink.
    /// Call once per pipeline run, after the last span closes.
    pub fn flush(&self) {
        let Some(c) = &self.inner else { return };
        let counters = lock(&c.counters).clone();
        let mut line = String::from("{\"type\":\"counters\",\"counters\":{");
        push_counters_body(&mut line, &counters);
        line.push_str("}}");
        self.emit_line(&line);
        self.with_sink_guarded(|sink| sink.flush());
    }

    /// A full programmatic report: counters, span tree, timing channel,
    /// and sink health.
    pub fn report(&self) -> ObsReport {
        ObsReport {
            enabled: self.is_enabled(),
            counters: self.counters(),
            spans: self.span_records(),
            timings: self.timings(),
            health: self.health().err(),
            sink_failures: self.sink_failures(),
        }
    }

    /// Run one sink operation under the failure contract: a panic or an
    /// `Err` detaches the sink, records the sticky first error, and bumps
    /// the failure tally — the run itself never observes the problem.
    /// Once detached, every further attempt still bumps the tally, so
    /// `obs.sink_errors` sizes the telemetry loss instead of freezing at
    /// the first failure. (A collector that never had a sink counts
    /// nothing — there is no export to lose.)
    fn with_sink_guarded(&self, f: impl FnOnce(&mut Box<dyn ObsSink>) -> Result<()>) {
        let Some(c) = &self.inner else { return };
        let (failed, rotated) = {
            let mut s = lock(&c.sink);
            let Some(sink) = s.sink.as_mut() else {
                let suppressed = s.error.is_some();
                drop(s);
                if suppressed {
                    c.sink_failures.fetch_add(1, Ordering::Relaxed);
                    self.incr(key::SINK_ERRORS);
                }
                return;
            };
            let failed = match catch_unwind(AssertUnwindSafe(|| f(sink))) {
                Ok(Ok(())) => None,
                Ok(Err(e)) => Some(e),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "sink panicked".to_string());
                    Some(VadaError::Obs(format!("sink panicked: {msg}")))
                }
            }
            .map(|e| {
                s.sink = None;
                if s.error.is_none() {
                    s.error = Some(e.clone());
                }
                e
            });
            let rotated = match s.sink.as_ref() {
                Some(sink) => {
                    let total = sink.rotations();
                    let delta = total.saturating_sub(s.rotations_seen);
                    s.rotations_seen = total;
                    delta
                }
                None => 0,
            };
            (failed, rotated)
        };
        if failed.is_some() {
            c.sink_failures.fetch_add(1, Ordering::Relaxed);
            self.incr(key::SINK_ERRORS);
        }
        if rotated > 0 {
            self.add(key::OBS_ROTATIONS, rotated);
        }
    }

    fn emit_line(&self, line: &str) {
        self.with_sink_guarded(|sink| sink.write_line(line));
    }

    /// Export one per-event line (span or timing), subject to the
    /// sampling policy: under `sample=M`, the line itself is suppressed
    /// and every M-th event emits one counter-snapshot `sample` record
    /// instead — bounded export for long-lived processes.
    fn emit_event_line(&self, line: &str) {
        let Some(c) = &self.inner else { return };
        let due = {
            let mut s = lock(&c.sink);
            if s.sample_every == 0 {
                None
            } else {
                s.sampled += 1;
                Some((s.sampled, s.sampled % s.sample_every == 0))
            }
        };
        match due {
            None => self.emit_line(line),
            Some((_, false)) => {}
            Some((events, true)) => {
                self.incr(key::OBS_SAMPLES);
                let counters = match &self.inner {
                    Some(c) => lock(&c.counters).clone(),
                    None => BTreeMap::new(),
                };
                let mut out = format!("{{\"type\":\"sample\",\"events\":{events},\"counters\":{{");
                push_counters_body(&mut out, &counters);
                out.push_str("}}");
                self.emit_line(&out);
            }
        }
    }

    /// Close span `id`: record the timing into the separate channel, pop
    /// it from the open stack, and export its JSON line.
    fn close_span(&self, id: u64, started: Instant) {
        let Some(c) = &self.inner else { return };
        let micros = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        lock(&c.timings).push(Timing { span: id, micros });
        let record = {
            let mut spans = lock(&c.spans);
            if let Some(pos) = spans.stack.iter().rposition(|&s| s == id) {
                spans.stack.truncate(pos);
            }
            spans.records.get(id as usize - 1).cloned()
        };
        if let Some(r) = record {
            self.emit_event_line(&span_json(&r));
            self.emit_event_line(&format!(
                "{{\"type\":\"timing\",\"span\":{id},\"micros\":{micros}}}"
            ));
        }
    }

    fn set_attr(&self, id: u64, name: &str, value: String) {
        let Some(c) = &self.inner else { return };
        let mut spans = lock(&c.spans);
        if let Some(r) = spans.records.get_mut(id as usize - 1) {
            r.attrs.push((name.to_string(), value));
        }
    }
}

/// Serialize a counter map's entries (without the surrounding braces).
fn push_counters_body(out: &mut String, counters: &BTreeMap<String, u64>) {
    let mut first = true;
    for (k, v) in counters {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        out.push_str(&json_escape(k));
        out.push_str("\":");
        out.push_str(&v.to_string());
    }
}

/// Canonical structural rendering of a span list: one line per span,
/// `<id> <parent> <name> k=v;k=v` — ids, parent edges, names, and
/// structural attributes only, never durations. Two trees are
/// byte-comparable exactly when their shapes match, which is what the
/// equivalence suites and the bench `--check` gate compare.
pub fn span_shape(spans: &[SpanRecord]) -> Vec<String> {
    spans.iter().map(shape_line).collect()
}

fn shape_line(s: &SpanRecord) -> String {
    shape_line_with(s.id, s.parent, s)
}

fn shape_line_with(id: u64, parent: u64, s: &SpanRecord) -> String {
    let mut line = format!("{id} {parent} {}", s.name);
    for (i, (k, v)) in s.attrs.iter().enumerate() {
        line.push(if i == 0 { ' ' } else { ';' });
        line.push_str(k);
        line.push('=');
        line.push_str(v);
    }
    line
}

/// [`span_shape`] restricted to the structural span class
/// ([`Obs::is_structural_span`]), with ids renumbered densely and each
/// parent edge lifted to the nearest structural ancestor — so the
/// rendering is identical across knobs even though mode-scoped spans
/// shift the absolute ids between runs.
pub fn structural_span_shape(spans: &[SpanRecord]) -> Vec<String> {
    let parent_of: BTreeMap<u64, u64> = spans.iter().map(|s| (s.id, s.parent)).collect();
    let structural: Vec<&SpanRecord> =
        spans.iter().filter(|s| Obs::is_structural_span(&s.name)).collect();
    let renum: BTreeMap<u64, u64> =
        structural.iter().enumerate().map(|(i, s)| (s.id, i as u64 + 1)).collect();
    structural
        .iter()
        .map(|s| {
            let mut p = s.parent;
            while p != 0 && !renum.contains_key(&p) {
                p = parent_of.get(&p).copied().unwrap_or(0);
            }
            shape_line_with(renum[&s.id], renum.get(&p).copied().unwrap_or(0), s)
        })
        .collect()
}

fn span_json(r: &SpanRecord) -> String {
    let mut line = format!(
        "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"attrs\":{{",
        r.id,
        r.parent,
        json_escape(&r.name)
    );
    let mut first = true;
    for (k, v) in &r.attrs {
        if !first {
            line.push(',');
        }
        first = false;
        line.push('"');
        line.push_str(&json_escape(k));
        line.push_str("\":\"");
        line.push_str(&json_escape(v));
        line.push('"');
    }
    line.push_str("}}");
    line
}

/// RAII handle for an open span: attach structural attributes while the
/// stage runs; the drop closes the span, records its duration into the
/// quarantined timing channel, and exports it. The disabled stub's guard
/// does nothing.
pub struct SpanGuard<'a> {
    obs: &'a Obs,
    /// 0 when the span was elided (disabled handle).
    id: u64,
    started: Option<Instant>,
}

impl SpanGuard<'_> {
    /// Attach one structural attribute (insertion order preserved).
    pub fn attr(&self, name: &str, value: impl fmt::Display) {
        if self.id != 0 {
            self.obs.set_attr(self.id, name, value.to_string());
        }
    }

    /// The span id (0 when elided).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let (true, Some(started)) = (self.id != 0, self.started) {
            self.obs.close_span(self.id, started);
        }
    }
}

// ---------------------------------------------------------------------
// report
// ---------------------------------------------------------------------

/// A point-in-time export of everything a collector holds.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Whether collection was live (a disabled handle reports empty).
    pub enabled: bool,
    /// Every counter, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// The span tree in open order.
    pub spans: Vec<SpanRecord>,
    /// The quarantined timing channel.
    pub timings: Vec<Timing>,
    /// The sticky first sink error, if any.
    pub health: Option<VadaError>,
    /// Sink failures plus suppressed export writes — how much telemetry
    /// the detached sink lost.
    pub sink_failures: u64,
}

impl ObsReport {
    /// The structural (knob-matrix-invariant) counter subset.
    pub fn structural(&self) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .filter(|(k, _)| Obs::is_structural(k))
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Human-readable summary: counters and span count, durations
    /// deliberately omitted so the rendering is structural.
    pub fn render(&self) -> String {
        if !self.enabled {
            return "observability disabled (set VADA_OBS to collect)".to_string();
        }
        let mut out = format!("observability: {} spans\n", self.spans.len());
        for (k, v) in &self.counters {
            out.push_str(&format!("  {k} = {v}\n"));
        }
        match &self.health {
            None => out.push_str("  sink: healthy\n"),
            Some(e) => out.push_str(&format!(
                "  sink: detached ({e}; {} writes lost)\n",
                self.sink_failures
            )),
        }
        out
    }

    /// Lossless JSON object: counters, spans, timings (separate array),
    /// and health.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"enabled\":");
        out.push_str(if self.enabled { "true" } else { "false" });
        out.push_str(",\"counters\":{");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            out.push_str(&json_escape(k));
            out.push_str("\":");
            out.push_str(&v.to_string());
        }
        out.push_str("},\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&span_json(s));
        }
        out.push_str("],\"timings\":[");
        for (i, t) in self.timings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"span\":{},\"micros\":{}}}", t.span, t.micros));
        }
        out.push_str("],\"health\":");
        match &self.health {
            None => out.push_str("null"),
            Some(e) => {
                out.push('"');
                out.push_str(&json_escape(&e.to_string()));
                out.push('"');
            }
        }
        out.push('}');
        out
    }
}

// ---------------------------------------------------------------------
// JSON (emit + parse)
// ---------------------------------------------------------------------

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value — the validation half of the export format. The
/// workspace is dependency-free by design, so the telemetry consumers
/// (tests, the bench harness, CI assertions) parse with this instead of a
/// vendored serde.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (counters are integral and < 2^53, so `f64` is exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, entries in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON value (rejects trailing garbage).
    pub fn parse(s: &str) -> Result<Json> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(VadaError::Obs(format!("trailing JSON at byte {pos}")));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object entries, if this is an object.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(e) => Some(e),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Integral view of a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<()> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(VadaError::Obs(format!("expected `{lit}` at byte {pos}", pos = *pos)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(VadaError::Obs("unexpected end of JSON".into())),
        Some(b'n') => expect(b, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(VadaError::Obs(format!("bad array at byte {}", *pos))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_value(b, pos)?;
                entries.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(entries));
                    }
                    _ => return Err(VadaError::Obs(format!("bad object at byte {}", *pos))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(VadaError::Obs(format!("expected string at byte {}", *pos)));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(VadaError::Obs("unterminated JSON string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| VadaError::Obs("truncated \\u escape".into()))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| VadaError::Obs("bad \\u escape".into()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| VadaError::Obs("bad \\u escape".into()))?;
                        // surrogate pairs are not emitted by this format;
                        // lone surrogates decode to the replacement char
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(VadaError::Obs("bad escape in JSON string".into())),
                }
                *pos += 1;
            }
            Some(_) => {
                // advance one UTF-8 scalar
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                let s = std::str::from_utf8(&b[start..*pos])
                    .map_err(|_| VadaError::Obs("invalid UTF-8 in JSON".into()))?;
                out.push_str(s);
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos])
        .map_err(|_| VadaError::Obs("invalid number".into()))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| VadaError::Obs(format!("bad JSON number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_observably_free() {
        let obs = Obs::disabled();
        obs.incr("anything");
        obs.add("anything", 41);
        {
            let span = obs.span("stage");
            span.attr("k", "v");
            assert_eq!(span.id(), 0);
        }
        assert!(!obs.is_enabled());
        assert_eq!(obs.get("anything"), 0);
        assert!(obs.counters().is_empty());
        assert_eq!(obs.span_count(), 0);
        assert!(obs.timings().is_empty());
        assert!(obs.health().is_ok());
        let report = obs.report();
        assert!(!report.enabled);
        assert!(report.counters.is_empty() && report.spans.is_empty());
    }

    #[test]
    fn disabled_ref_is_static_and_shared() {
        let a = Obs::disabled_ref();
        let b = Obs::disabled_ref();
        assert!(std::ptr::eq(a, b));
        assert!(!a.is_enabled());
    }

    #[test]
    fn counters_accumulate_and_sort() {
        let obs = Obs::enabled();
        obs.incr("b.two");
        obs.add("a.one", 3);
        obs.incr("b.two");
        assert_eq!(obs.get("a.one"), 3);
        assert_eq!(obs.get("b.two"), 2);
        let keys: Vec<String> = obs.counters().into_keys().collect();
        assert_eq!(keys, vec!["a.one".to_string(), "b.two".to_string()]);
    }

    #[test]
    fn clones_share_the_registry() {
        let obs = Obs::enabled();
        let other = obs.clone();
        other.incr("x");
        assert_eq!(obs.get("x"), 1);
    }

    #[test]
    fn structural_classification_by_prefix() {
        assert!(Obs::is_structural(key::ORCH_STEPS));
        assert!(Obs::is_structural(key::KB_EVENTS));
        assert!(!Obs::is_structural(key::WAL_APPENDS));
        assert!(!Obs::is_structural(key::PAR_ITEMS));
        let obs = Obs::enabled();
        obs.incr(key::ORCH_STEPS);
        obs.incr(key::WAL_APPENDS);
        let structural = obs.structural_counters();
        assert_eq!(structural.len(), 1);
        assert!(structural.contains_key(key::ORCH_STEPS));
    }

    #[test]
    fn span_tree_records_hierarchy_and_attrs() {
        let obs = Obs::enabled();
        {
            let outer = obs.span("orchestrator/run");
            outer.attr("steps", 2);
            {
                let inner = obs.span("orchestrator/step");
                inner.attr("transducer", "mapping");
            }
            let sibling = obs.span("orchestrator/step");
            sibling.attr("transducer", "fusion");
        }
        let spans = obs.span_records();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].parent, 0);
        assert_eq!(spans[1].parent, spans[0].id);
        assert_eq!(spans[2].parent, spans[0].id);
        assert_eq!(spans[1].attrs, vec![("transducer".into(), "mapping".into())]);
        // durations live only in the timing channel, one per closed span
        assert_eq!(obs.timings().len(), 3);
        assert!(spans.iter().all(|s| s.attrs.iter().all(|(k, _)| k != "micros")));
    }

    #[test]
    fn merge_counters_folds_values() {
        let local = Obs::enabled();
        local.add("kb.queries", 5);
        let shared = Obs::enabled();
        shared.add("kb.queries", 2);
        shared.merge_counters_from(&local);
        assert_eq!(shared.get("kb.queries"), 7);
        // merging into a disabled handle is a no-op
        Obs::disabled().merge_counters_from(&local);
    }

    #[test]
    fn export_emits_parseable_json_lines() {
        let (sink, lines) = MemorySink::new();
        let obs = Obs::with_sink(Box::new(sink));
        {
            let span = obs.span("stage \"quoted\"");
            span.attr("detail", "a\nb");
        }
        obs.incr(key::ORCH_STEPS);
        obs.flush();
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 3, "span + timing + counters");
        for line in lines.iter() {
            Json::parse(line).expect("every exported line parses");
        }
        let span = Json::parse(&lines[0]).unwrap();
        assert_eq!(span.get("type").and_then(Json::as_str), Some("span"));
        assert_eq!(
            span.get("name").and_then(Json::as_str),
            Some("stage \"quoted\"")
        );
        let counters = Json::parse(&lines[2]).unwrap();
        assert_eq!(
            counters
                .get("counters")
                .and_then(|c| c.get(key::ORCH_STEPS))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    struct FailingSink;
    impl ObsSink for FailingSink {
        fn write_line(&mut self, _line: &str) -> Result<()> {
            Err(VadaError::Obs("sink refused".into()))
        }
    }

    struct PanickingSink;
    impl ObsSink for PanickingSink {
        fn write_line(&mut self, _line: &str) -> Result<()> {
            panic!("sink exploded");
        }
    }

    #[test]
    fn failing_sink_detaches_with_sticky_first_error() {
        let obs = Obs::with_sink(Box::new(FailingSink));
        assert!(obs.sink_attached());
        obs.span("a"); // immediate close triggers the first write
        assert!(!obs.sink_attached(), "failed sink is detached");
        let first = obs.health().unwrap_err();
        assert!(first.to_string().contains("sink refused"));
        // one failure plus span "a"'s suppressed timing line
        assert_eq!(obs.get(key::SINK_ERRORS), 2);
        obs.span("b"); // collection continues, error stays the first one
        assert_eq!(obs.span_count(), 2);
        assert_eq!(obs.health().unwrap_err(), first);
        // the loss keeps being sized after the detach: span "b" attempted
        // a span line and a timing line, both suppressed
        assert_eq!(obs.get(key::SINK_ERRORS), 4);
        assert_eq!(obs.sink_failures(), 4);
        let report = obs.report();
        assert!(report.render().contains("4 writes lost"));
    }

    #[test]
    fn sinkless_collector_counts_no_suppressed_writes() {
        let obs = Obs::enabled();
        obs.span("a");
        obs.flush();
        assert_eq!(obs.get(key::SINK_ERRORS), 0, "no sink, no export to lose");
        assert_eq!(obs.sink_failures(), 0);
    }

    #[test]
    fn panicking_sink_detaches_and_surfaces_error() {
        let obs = Obs::with_sink(Box::new(PanickingSink));
        obs.span("a");
        assert!(!obs.sink_attached());
        let err = obs.health().unwrap_err();
        assert!(err.to_string().contains("sink exploded"), "got: {err}");
        // the collector itself stays usable
        obs.incr("x");
        assert_eq!(obs.get("x"), 1);
    }

    #[test]
    fn file_sink_round_trips() {
        let dir = std::env::temp_dir().join("vada-obs-test");
        let path = dir.join(format!("roundtrip-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let obs = Obs::at_path(path.clone());
        assert_eq!(obs.sink_path().as_deref(), Some(path.as_path()));
        obs.incr(key::KB_EVENTS);
        obs.flush();
        assert!(obs.health().is_ok());
        let text = std::fs::read_to_string(&path).unwrap();
        let last = text.lines().last().unwrap();
        let parsed = Json::parse(last).unwrap();
        assert_eq!(parsed.get("type").and_then(Json::as_str), Some("counters"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unopenable_sink_path_is_sticky_not_fatal() {
        let obs = Obs::at_path(PathBuf::from("/proc/definitely/not/writable.jsonl"));
        assert!(obs.is_enabled());
        assert!(!obs.sink_attached());
        assert!(obs.health().is_err());
        obs.incr("x");
        assert_eq!(obs.get("x"), 1);
    }

    #[test]
    fn report_json_is_lossless_and_parseable() {
        let obs = Obs::enabled();
        obs.add(key::ORCH_WRITES, 4);
        {
            let s = obs.span("step");
            s.attr("transducer", "mapping");
        }
        let report = obs.report();
        let parsed = Json::parse(&report.to_json()).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get(key::ORCH_WRITES))
                .and_then(Json::as_u64),
            Some(4)
        );
        let spans = parsed.get("spans").unwrap();
        match spans {
            Json::Arr(items) => assert_eq!(items.len(), 1),
            other => panic!("spans not an array: {other:?}"),
        }
        assert!(report.render().contains("pipeline.orchestrator.writes = 4"));
    }

    #[test]
    fn slug_is_stable_and_bounded() {
        assert_eq!(slug("recursive predicate `tc` in delta"), "recursive_predicate_tc_in_delta");
        assert_eq!(slug("***"), "unknown");
        assert!(slug(&"x y ".repeat(100)).len() <= 64);
    }

    #[test]
    fn span_guard_closes_on_unwind() {
        let obs = Obs::enabled();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let outer = obs.span("orchestrator/run");
            outer.attr("mode", "fault");
            let _inner = obs.span("datalog/stratum");
            panic!("injected fault");
        }));
        assert!(result.is_err());
        // both guards closed on the way out: no dangling open spans, and
        // each closed span recorded its timing
        assert_eq!(obs.open_span_count(), 0, "unwind must close every span");
        assert_eq!(obs.span_count(), 2);
        assert_eq!(obs.timings().len(), 2);
        // a span opened after the panic is a clean top-level root, not a
        // child of a zombie
        {
            let after = obs.span("orchestrator/run");
            assert_ne!(after.id(), 0);
        }
        let spans = obs.span_records();
        assert_eq!(spans[2].parent, 0, "post-panic span must not dangle off the dead tree");
    }

    #[test]
    fn export_policy_parses_trailing_options() {
        assert_eq!(ExportPolicy::parse("out.jsonl"), ("out.jsonl", ExportPolicy::default()));
        let (spec, p) = ExportPolicy::parse("out.jsonl:rotate=4096:sample=100");
        assert_eq!(spec, "out.jsonl");
        assert_eq!(p, ExportPolicy { rotate_bytes: 4096, keep: 3, sample_every: 100 });
        let (spec, p) = ExportPolicy::parse("tmpfile:rotate=512:keep=5");
        assert_eq!(spec, "tmpfile");
        assert_eq!(p.rotate_bytes, 512);
        assert_eq!(p.keep, 5);
        // a path containing `:` that is not an option stays a path
        let (spec, p) = ExportPolicy::parse("dir:with:colons/out.jsonl");
        assert_eq!(spec, "dir:with:colons/out.jsonl");
        assert_eq!(p, ExportPolicy::default());
        // options only strip from the right; garbage is part of the path
        let (spec, _) = ExportPolicy::parse("out.jsonl:rotate=notanumber");
        assert_eq!(spec, "out.jsonl:rotate=notanumber");
    }

    fn temp_obs_path(tag: &str) -> PathBuf {
        std::env::temp_dir()
            .join("vada-obs-test")
            .join(format!("{tag}-{}.jsonl", std::process::id()))
    }

    fn cleanup_generations(path: &PathBuf) {
        let _ = std::fs::remove_file(path);
        for i in 1..=8 {
            let mut gen = path.as_os_str().to_os_string();
            gen.push(format!(".{i}"));
            let _ = std::fs::remove_file(PathBuf::from(gen));
        }
    }

    #[test]
    fn rotation_never_tears_a_line_and_counts_rotations() {
        let path = temp_obs_path("rotate");
        cleanup_generations(&path);
        let obs =
            Obs::at_path_with(path.clone(), ExportPolicy { rotate_bytes: 120, keep: 3, sample_every: 0 });
        // every span close writes a span line plus a timing line; a line
        // near the threshold must land whole in exactly one generation
        for i in 0..40 {
            let s = obs.span("stage/rotation");
            s.attr("item", i);
            s.attr("pad", "x".repeat(i % 17));
        }
        obs.flush();
        assert!(obs.health().is_ok(), "rotation must not detach the sink");
        assert!(obs.get(key::OBS_ROTATIONS) > 0, "the workload must have rotated");
        let mut files = vec![path.clone()];
        for i in 1..=3 {
            let mut gen = path.as_os_str().to_os_string();
            gen.push(format!(".{i}"));
            files.push(PathBuf::from(gen));
        }
        let mut seen = 0usize;
        for file in &files {
            let Ok(text) = std::fs::read_to_string(file) else { continue };
            assert!(
                text.len() as u64 <= 120 + 1,
                "{}: rotation must bound each generation (got {} bytes)",
                file.display(),
                text.len()
            );
            for line in text.lines() {
                Json::parse(line).unwrap_or_else(|e| {
                    panic!("torn line in {}: {e} ({line})", file.display())
                });
                seen += 1;
            }
        }
        assert!(seen > 0, "some lines must survive in the kept generations");
        cleanup_generations(&path);
    }

    #[test]
    fn rotation_keeps_a_bounded_generation_chain() {
        let path = temp_obs_path("keep");
        cleanup_generations(&path);
        let mut sink = RotatingFileSink::open(&path, 32, 2).unwrap();
        for i in 0..30 {
            sink.write_line(&format!("{{\"n\":{i}}}")).unwrap();
        }
        sink.flush().unwrap();
        assert!(sink.rotations() >= 3);
        let mut gen3 = path.as_os_str().to_os_string();
        gen3.push(".3");
        assert!(!PathBuf::from(gen3).exists(), "keep=2 must drop the third generation");
        // the newest rotated generation ends with an intact line
        let mut gen1 = path.as_os_str().to_os_string();
        gen1.push(".1");
        let text = std::fs::read_to_string(PathBuf::from(gen1)).unwrap();
        for line in text.lines() {
            Json::parse(line).expect("every rotated line parses");
        }
        cleanup_generations(&path);
    }

    #[test]
    fn sampling_replaces_per_event_lines_with_snapshots() {
        let (sink, lines) = MemorySink::new();
        let obs = Obs::with_sink_policy(
            Box::new(sink),
            ExportPolicy { rotate_bytes: 0, keep: 3, sample_every: 4 },
        );
        for _ in 0..6 {
            obs.incr(key::ORCH_STEPS);
            obs.span("stage/sampled");
        }
        // 6 spans → 12 per-event lines → 3 sample records, zero raw lines
        obs.flush();
        let lines = lines.lock().unwrap();
        let kinds: Vec<String> = lines
            .iter()
            .map(|l| {
                Json::parse(l)
                    .unwrap()
                    .get("type")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(kinds, vec!["sample", "sample", "sample", "counters"]);
        assert_eq!(obs.get(key::OBS_SAMPLES), 3);
        let last_sample = Json::parse(&lines[2]).unwrap();
        assert_eq!(last_sample.get("events").and_then(Json::as_u64), Some(12));
        assert_eq!(
            last_sample
                .get("counters")
                .and_then(|c| c.get(key::ORCH_STEPS))
                .and_then(Json::as_u64),
            Some(6)
        );
        // the in-memory record is untouched by sampling
        assert_eq!(obs.span_count(), 6);
        assert_eq!(obs.timings().len(), 6);
    }

    #[test]
    fn span_shape_is_structural_only() {
        let obs = Obs::enabled();
        {
            let run = obs.span("orchestrator/run");
            run.attr("steps", 1);
            {
                let _deep = obs.span("datalog/stratum");
                let step = obs.span("orchestrator/step");
                step.attr("transducer", "mapping");
            }
        }
        let spans = obs.span_records();
        let full = span_shape(&spans);
        assert_eq!(
            full,
            vec![
                "1 0 orchestrator/run steps=1",
                "2 1 datalog/stratum",
                "3 2 orchestrator/step transducer=mapping",
            ]
        );
        // structural view renumbers densely and lifts parents over the
        // mode-scoped span in the middle
        let structural = structural_span_shape(&spans);
        assert_eq!(
            structural,
            vec!["1 0 orchestrator/run steps=1", "2 1 orchestrator/step transducer=mapping"]
        );
    }

    #[test]
    fn json_parser_handles_the_corners() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e1").unwrap(), Json::Num(-125.0));
        assert_eq!(
            Json::parse("\"a\\n\\\"b\\\"\\u0041\"").unwrap(),
            Json::Str("a\n\"b\"A".into())
        );
        assert_eq!(
            Json::parse("[1,[],{}]").unwrap(),
            Json::Arr(vec![Json::Num(1.0), Json::Arr(vec![]), Json::Obj(vec![])])
        );
        assert!(Json::parse("{\"a\":1,}").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("").is_err());
        // non-ASCII round-trips through escape + parse
        let s = "héllo → wörld";
        let line = format!("\"{}\"", json_escape(s));
        assert_eq!(Json::parse(&line).unwrap(), Json::Str(s.into()));
    }
}
