//! The evaluation-mode knob for re-runs over an evolving knowledge base.
//!
//! [`Evaluation::Full`] re-derives every Datalog relation from its full
//! inputs on each run. [`Evaluation::Incremental`] lets components keep
//! materialized state alive between runs and feed only the *changes*
//! (knowledge-base delta-journal entries) through the semi-naive loop, so a
//! re-run after a small edit costs O(change) instead of O(database).
//!
//! Like [`crate::Parallelism`], the knob is safe to flip at any time:
//! incremental evaluation is pinned byte-identical to full evaluation —
//! same relations, same fact insertion order, same trace shape — by the
//! root `incremental_equivalence` differential suite. Whenever a change
//! cannot be proven order-safe, the incremental path falls back to a full
//! re-derivation (recording why), never to divergent output.

/// How a component should evaluate when its inputs change.
///
/// The default is read from the `VADA_INCREMENTAL` environment variable
/// (`1`/`true`/`on` select [`Evaluation::Incremental`]), mirroring the
/// `VADA_THREADS` override for [`crate::Parallelism`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Evaluation {
    /// Re-derive everything from full inputs on every run.
    Full,
    /// Keep materialized state between runs and evaluate only deltas,
    /// falling back to full re-derivation when a change is not provably
    /// order-safe.
    Incremental,
}

impl Default for Evaluation {
    fn default() -> Self {
        Evaluation::from_env()
    }
}

impl Evaluation {
    /// Read the `VADA_INCREMENTAL` override: `1`, `true` or `on` (under
    /// the shared [`crate::env`] rules) select
    /// [`Evaluation::Incremental`]; anything else, including unset,
    /// selects [`Evaluation::Full`].
    pub fn from_env() -> Evaluation {
        if crate::env::flag("VADA_INCREMENTAL") {
            Evaluation::Incremental
        } else {
            Evaluation::Full
        }
    }

    /// Whether this mode keeps state between runs.
    pub fn is_incremental(&self) -> bool {
        matches!(self, Evaluation::Incremental)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_contract() {
        // the default must agree with whatever the ambient environment says
        // (CI runs the whole suite under VADA_INCREMENTAL=1 on one leg)
        match std::env::var("VADA_INCREMENTAL") {
            Ok(v) if crate::env::parse_flag(&v) => {
                assert_eq!(Evaluation::from_env(), Evaluation::Incremental)
            }
            _ => assert_eq!(Evaluation::from_env(), Evaluation::Full),
        }
        assert!(Evaluation::Incremental.is_incremental());
        assert!(!Evaluation::Full.is_incremental());
    }
}
