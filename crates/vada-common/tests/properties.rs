//! Property-based tests for the shared substrate: total value ordering,
//! hash/equality consistency, CSV round-trips, similarity bounds, and the
//! sharding invariants (exactly-one-shard coverage, content-deterministic
//! assignment, order-exact merge).

use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use vada_common::sharding::{self, Partitioner};
use vada_common::text::{jaro_winkler, levenshtein, levenshtein_sim, normalize, token_jaccard};
use vada_common::{csv, Parallelism, Schema, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-zA-Z0-9 £,.-]{0,12}".prop_map(Value::str),
    ]
}

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #[test]
    fn value_ordering_is_total_and_antisymmetric(a in arb_value(), b in arb_value()) {
        let ab = a.cmp(&b);
        let ba = b.cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
    }

    #[test]
    fn value_ordering_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        let mut v = [a, b, c];
        v.sort(); // sort panics (in debug) on non-total orders; also verify
        prop_assert!(v[0] <= v[1] && v[1] <= v[2]);
    }

    #[test]
    fn equal_values_hash_equal(a in arb_value(), b in arb_value()) {
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b), "{:?} == {:?} but hashes differ", a, b);
        }
    }

    #[test]
    fn csv_round_trips(rows in proptest::collection::vec(
        proptest::collection::vec("[^\r]{0,20}", 3..4), 0..20)
    ) {
        let text = csv::serialize(&rows);
        let parsed = csv::parse(&text).unwrap();
        // serialize always terminates rows, so empty input round-trips to empty
        if rows.is_empty() {
            prop_assert!(parsed.is_empty());
        } else {
            prop_assert_eq!(parsed, rows);
        }
    }

    #[test]
    fn relation_csv_round_trips(cells in proptest::collection::vec(
        ("[a-z £,\"0-9]{0,10}", "[a-z]{0,8}"), 1..15)
    ) {
        let schema = Schema::all_str("r", &["a", "b"]);
        let mut rel = vada_common::Relation::empty(schema.clone());
        for (a, b) in &cells {
            rel.push(vada_common::Tuple::new(vec![
                Value::parse_as(a, vada_common::AttrType::Str).unwrap(),
                Value::parse_as(b, vada_common::AttrType::Str).unwrap(),
            ])).unwrap();
        }
        let text = csv::write_relation(&rel);
        let back = csv::read_relation(&text, schema).unwrap();
        prop_assert_eq!(back.tuples(), rel.tuples());
    }

    #[test]
    fn levenshtein_is_a_metric(a in "[a-z]{0,12}", b in "[a-z]{0,12}", c in "[a-z]{0,12}") {
        // identity, symmetry, triangle inequality
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    #[test]
    fn similarities_are_bounded(a in "[a-zA-Z_ ]{0,16}", b in "[a-zA-Z_ ]{0,16}") {
        for s in [levenshtein_sim(&a, &b), jaro_winkler(&a, &b), token_jaccard(&a, &b)] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&s), "similarity {s} out of range");
        }
    }

    #[test]
    fn normalize_is_idempotent(s in "[a-zA-Z0-9 ,.\\-_]{0,24}") {
        let once = normalize(&s);
        prop_assert_eq!(normalize(&once), once.clone());
        // and produces only lowercase alphanumerics and single spaces
        prop_assert!(!once.contains("  "));
        prop_assert!(once.chars().all(|c| c.is_lowercase() || c.is_numeric() || c == ' '));
    }

    #[test]
    fn every_row_lands_in_exactly_one_shard(
        rows in arb_rows(),
        shards in 1usize..9,
    ) {
        for partitioner in partitioners() {
            let assignment = sharding::assign_shards(
                Parallelism::Sequential, "prop", &rows, partitioner.as_ref(), shards,
            ).unwrap();
            prop_assert_eq!(assignment.len(), rows.len());
            prop_assert!(assignment.iter().all(|&s| s < shards));
            let by_shard = sharding::rows_by_shard(&assignment, shards);
            let mut covered: Vec<usize> = by_shard.concat();
            covered.sort_unstable();
            prop_assert_eq!(covered, (0..rows.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn shard_assignment_is_deterministic_across_runs(
        rows in arb_rows(),
        shards in 1usize..9,
    ) {
        for partitioner in partitioners() {
            // re-assign at a different parallelism level and per single row:
            // assignment is a pure function of content, never of schedule
            let a = sharding::assign_shards(
                Parallelism::Sequential, "prop", &rows, partitioner.as_ref(), shards,
            ).unwrap();
            let b = sharding::assign_shards(
                Parallelism::Threads(3), "prop", &rows, partitioner.as_ref(), shards,
            ).unwrap();
            prop_assert_eq!(&a, &b);
            for (row, &s) in rows.iter().zip(&a) {
                prop_assert_eq!(partitioner.shard_of(row, shards), s);
            }
        }
    }

    #[test]
    fn ordered_merge_reproduces_input_order_exactly(
        rows in arb_rows(),
        shards in 1usize..9,
    ) {
        for partitioner in partitioners() {
            let assignment = sharding::assign_shards(
                Parallelism::Sequential, "prop", &rows, partitioner.as_ref(), shards,
            ).unwrap();
            let by_shard = sharding::rows_by_shard(&assignment, shards);
            let per_shard: Vec<Vec<vada_common::Tuple>> = by_shard
                .iter()
                .map(|idx| idx.iter().map(|&r| rows[r].clone()).collect())
                .collect();
            // within a shard, rows keep ascending input order
            for idx in &by_shard {
                prop_assert!(idx.windows(2).all(|w| w[0] < w[1]));
            }
            prop_assert_eq!(sharding::merge_in_order(&assignment, per_shard), rows.clone());
        }
    }

    #[test]
    fn key_partitioner_co_locates_equal_blocking_keys(
        key in "[a-zA-Z0-9 ]{1,10}",
        rest_a in arb_value(),
        rest_b in arb_value(),
        shards in 1usize..9,
    ) {
        let p = sharding::KeyPartitioner { cols: vec![0] };
        let a = vada_common::Tuple::new(vec![Value::str(&key), rest_a]);
        let b = vada_common::Tuple::new(vec![Value::str(&key), rest_b]);
        prop_assert_eq!(p.shard_of(&a, shards), p.shard_of(&b, shards));
    }
}

fn arb_rows() -> impl Strategy<Value = Vec<vada_common::Tuple>> {
    proptest::collection::vec(
        proptest::collection::vec(arb_value(), 3..4).prop_map(vada_common::Tuple::new),
        0..40,
    )
}

fn partitioners() -> Vec<Box<dyn sharding::Partitioner + Sync>> {
    vec![
        Box::new(sharding::HashPartitioner),
        Box::new(sharding::KeyPartitioner { cols: vec![0, 2] }),
    ]
}

/// `arb_value` plus the canonical codec's hard cases: every NaN payload,
/// negative zero, the infinities, the extreme integers, and strings with
/// embedded NULs, newlines, quotes, and non-ASCII.
fn arb_adversarial_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        arb_value(),
        Just(Value::Float(f64::NAN)),
        Just(Value::Float(-f64::NAN)),
        Just(Value::Float(f64::from_bits(0x7FF8_0000_0000_1234))), // payloaded NaN
        Just(Value::Float(-0.0)),
        Just(Value::Float(f64::INFINITY)),
        Just(Value::Float(f64::NEG_INFINITY)),
        Just(Value::Float(f64::MIN_POSITIVE)),
        Just(Value::Float(f64::MAX)),
        Just(Value::Int(i64::MIN)),
        Just(Value::Int(i64::MAX)),
        Just(Value::str("embedded\nnewline")),
        Just(Value::str("embedded\0nul")),
        Just(Value::str("quote\"comma, — ünïcode")),
        Just(Value::str("")),
    ]
}

proptest! {
    /// The storage codec is total and canonical over every value,
    /// including the ones CSV cannot carry: decode∘encode is the
    /// identity under value equality (which unifies NaN payloads and
    /// `-0.0` exactly like the codec does), and re-encoding the decoded
    /// value is *byte*-identical — encoded bytes are a stable canonical
    /// form fit for CRC-framed logs.
    #[test]
    fn value_codec_round_trips_canonically(v in arb_adversarial_value()) {
        use vada_common::codec::{decode_value, encode_value, Reader};
        let mut bytes = Vec::new();
        encode_value(&v, &mut bytes);
        let mut r = Reader::new(&bytes);
        let back = decode_value(&mut r).unwrap();
        prop_assert!(r.is_done(), "decode must consume exactly the encoding");
        prop_assert_eq!(&back, &v, "decode∘encode must be identity modulo canonicalisation");
        let mut again = Vec::new();
        encode_value(&back, &mut again);
        prop_assert_eq!(again, bytes, "the decoded value must re-encode byte-identically");
    }

    /// Same at tuple granularity, plus: every strict prefix of the
    /// encoding is rejected, never misread — the property the WAL's
    /// torn-tail handling builds on.
    #[test]
    fn tuple_codec_round_trips_and_rejects_every_prefix(
        vals in proptest::collection::vec(arb_adversarial_value(), 0..6)
    ) {
        use vada_common::codec::{decode_tuple, encode_tuple, Reader};
        let t = vada_common::Tuple::new(vals);
        let mut bytes = Vec::new();
        encode_tuple(&t, &mut bytes);
        let back = decode_tuple(&mut Reader::new(&bytes)).unwrap();
        prop_assert_eq!(&back, &t);
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            prop_assert!(
                decode_tuple(&mut r).is_err() || !r.is_done(),
                "a strict prefix (cut {}) must not silently decode to a whole tuple",
                cut
            );
        }
    }
}

proptest! {
    /// The disabled observability stub is observably free: any script of
    /// counter bumps, spans, attributes, merges, and flushes leaves no
    /// trace — no counter values, no span ids, an empty report, permanent
    /// health. This is the property that lets `Obs::disabled_ref()` sit on
    /// every hot path unconditionally.
    #[test]
    fn disabled_obs_collection_is_observably_free(
        script in proptest::collection::vec(("[a-z.]{1,12}", 0u64..1000), 0..24)
    ) {
        use vada_common::Obs;
        let obs = Obs::disabled();
        let feeder = Obs::enabled();
        feeder.add("kb.queries", 7);
        for (name, n) in &script {
            obs.add(name, *n);
            obs.incr(name);
            let span = obs.span(name);
            span.attr("n", n);
            prop_assert_eq!(span.id(), 0, "disabled spans are elided");
            drop(span);
            obs.merge_counters_from(&feeder);
            obs.flush();
            prop_assert_eq!(obs.get(name), 0);
        }
        prop_assert!(!obs.is_enabled());
        prop_assert!(!obs.sink_attached());
        prop_assert!(obs.counters().is_empty());
        prop_assert!(obs.structural_counters().is_empty());
        prop_assert!(obs.health().is_ok());
        let report = obs.report();
        prop_assert!(!report.enabled);
        prop_assert!(report.counters.is_empty());
        prop_assert!(report.spans.is_empty());
        prop_assert!(report.timings.is_empty());
        prop_assert!(report.health.is_none());
        // and the static stub is the same stub every time
        prop_assert!(Obs::disabled_ref().same_registry(&obs));
    }
}

/// Pin the vendored proptest shrinker: integers halve toward zero,
/// collections truncate, and a failing property reports the minimal
/// counterexample the greedy loop converges to — not the raw random draw.
#[test]
fn proptest_stub_shrinks_failing_cases_to_minimal_counterexamples() {
    use proptest::shrink::Shrink;

    // integer candidates: zero first, then halved, then decremented
    assert_eq!(100u8.shrink(), vec![0, 50, 99]);
    assert_eq!(1u8.shrink(), vec![0]);
    assert_eq!(0u8.shrink(), Vec::<u8>::new());
    assert_eq!((-7i64).shrink(), vec![0, -3, -6]);

    // collection candidates: empty, first half, all-but-last
    assert_eq!(
        vec![1, 2, 3, 4].shrink(),
        vec![vec![], vec![1, 2], vec![1, 2, 3]]
    );
    assert_eq!(vec![9].shrink(), vec![Vec::<i32>::new()]);
    assert_eq!("abcd".to_string().shrink(), vec!["".into(), "ab".to_string(), "abc".into()]);

    // tuples shrink component-wise
    assert!((4u8, 2u8).shrink().contains(&(0, 2)));
    assert!((4u8, 2u8).shrink().contains(&(4, 0)));

    // end-to-end: `len < 3` fails on some random draw and must shrink to a
    // vector of exactly three elements (truncation cannot go lower without
    // the property passing again)
    proptest::proptest! {
        fn vec_stays_short(xs in proptest::collection::vec(99u8..100, 0..10)) {
            prop_assert!(xs.len() < 3);
        }
    }
    let panic = std::panic::catch_unwind(vec_stays_short)
        .expect_err("the embedded property must fail");
    let msg = panic
        .downcast_ref::<String>()
        .expect("panic message is a formatted string");
    assert!(msg.contains("minimal counterexample"), "{msg}");
    assert_eq!(
        msg.matches("99").count(),
        3,
        "expected exactly the three-element counterexample in: {msg}"
    );
}
