//! Evaluation of arithmetic expressions and comparison built-ins.

use vada_common::{Result, VadaError, Value};

use crate::ast::{ArithOp, CmpOp, Expr, Term};

/// A (partial) variable binding: `binding[var_id]` is `Some` once bound.
pub type Binding = Vec<Option<Value>>;

/// Resolve a term under a binding. Unbound variables yield `None`.
pub fn resolve(term: &Term, binding: &Binding) -> Option<Value> {
    match term {
        Term::Const(v) => Some(v.clone()),
        Term::Var(id, _) => binding.get(*id).and_then(|v| v.clone()),
    }
}

/// Evaluate an expression under a binding. All variables must be bound.
pub fn eval_expr(expr: &Expr, binding: &Binding) -> Result<Value> {
    match expr {
        Expr::Term(t) => resolve(t, binding).ok_or_else(|| {
            VadaError::Eval(format!("unbound variable in expression `{expr}`"))
        }),
        Expr::BinOp(op, a, b) => {
            let va = eval_expr(a, binding)?;
            let vb = eval_expr(b, binding)?;
            apply_arith(*op, &va, &vb)
        }
    }
}

/// Apply a binary arithmetic operator. Nulls propagate (null op x = null).
/// `+` concatenates strings.
pub fn apply_arith(op: ArithOp, a: &Value, b: &Value) -> Result<Value> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    if op == ArithOp::Add {
        if let (Value::Str(x), Value::Str(y)) = (a, b) {
            return Ok(Value::str(format!("{x}{y}")));
        }
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => match op {
            ArithOp::Add => Ok(Value::Int(x.wrapping_add(*y))),
            ArithOp::Sub => Ok(Value::Int(x.wrapping_sub(*y))),
            ArithOp::Mul => Ok(Value::Int(x.wrapping_mul(*y))),
            ArithOp::Div => {
                if *y == 0 {
                    Err(VadaError::Eval("division by zero".into()))
                } else if x % y == 0 {
                    Ok(Value::Int(x / y))
                } else {
                    Ok(Value::Float(*x as f64 / *y as f64))
                }
            }
            ArithOp::Mod => {
                if *y == 0 {
                    Err(VadaError::Eval("modulo by zero".into()))
                } else {
                    Ok(Value::Int(x.rem_euclid(*y)))
                }
            }
        },
        _ => {
            let (x, y) = match (a.numeric(), b.numeric()) {
                (Some(x), Some(y)) => (x, y),
                _ => {
                    return Err(VadaError::Eval(format!(
                        "arithmetic on non-numeric values `{a}` {op} `{b}`"
                    )))
                }
            };
            let r = match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => {
                    if y == 0.0 {
                        return Err(VadaError::Eval("division by zero".into()));
                    }
                    x / y
                }
                ArithOp::Mod => {
                    if y == 0.0 {
                        return Err(VadaError::Eval("modulo by zero".into()));
                    }
                    x.rem_euclid(y)
                }
            };
            Ok(Value::Float(r))
        }
    }
}

/// Apply a comparison to two fully evaluated values.
///
/// Comparisons against null follow SQL-ish semantics: any ordering
/// comparison involving null is false; `=`/`!=` treat null as a regular
/// (syntactic) value so metadata predicates can test for missing fields.
pub fn apply_cmp(op: CmpOp, a: &Value, b: &Value) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        _ => {
            if a.is_null() || b.is_null() {
                return false;
            }
            let ord = a.cmp(b);
            match op {
                CmpOp::Lt => ord.is_lt(),
                CmpOp::Le => ord.is_le(),
                CmpOp::Gt => ord.is_gt(),
                CmpOp::Ge => ord.is_ge(),
                CmpOp::Eq | CmpOp::Ne => unreachable!(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;

    fn int(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn arith_int_preserving() {
        assert_eq!(apply_arith(ArithOp::Add, &int(2), &int(3)).unwrap(), int(5));
        assert_eq!(apply_arith(ArithOp::Div, &int(6), &int(3)).unwrap(), int(2));
        assert_eq!(
            apply_arith(ArithOp::Div, &int(7), &int(2)).unwrap(),
            Value::Float(3.5)
        );
        assert_eq!(apply_arith(ArithOp::Mod, &int(-7), &int(3)).unwrap(), int(2));
    }

    #[test]
    fn arith_mixed_promotes() {
        assert_eq!(
            apply_arith(ArithOp::Mul, &int(2), &Value::Float(1.5)).unwrap(),
            Value::Float(3.0)
        );
    }

    #[test]
    fn string_concat() {
        assert_eq!(
            apply_arith(ArithOp::Add, &Value::str("ab"), &Value::str("cd")).unwrap(),
            Value::str("abcd")
        );
    }

    #[test]
    fn null_propagates() {
        assert_eq!(
            apply_arith(ArithOp::Add, &Value::Null, &int(1)).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn division_by_zero_errors() {
        assert!(apply_arith(ArithOp::Div, &int(1), &int(0)).is_err());
        assert!(apply_arith(ArithOp::Mod, &Value::Float(1.0), &Value::Float(0.0)).is_err());
    }

    #[test]
    fn cmp_null_semantics() {
        assert!(!apply_cmp(CmpOp::Lt, &Value::Null, &int(3)));
        assert!(!apply_cmp(CmpOp::Ge, &int(3), &Value::Null));
        assert!(apply_cmp(CmpOp::Eq, &Value::Null, &Value::Null));
        assert!(apply_cmp(CmpOp::Ne, &Value::Null, &int(1)));
    }

    #[test]
    fn cmp_ordering() {
        assert!(apply_cmp(CmpOp::Lt, &int(1), &int(2)));
        assert!(apply_cmp(CmpOp::Le, &int(2), &Value::Float(2.0)));
        assert!(apply_cmp(CmpOp::Gt, &Value::str("b"), &Value::str("a")));
    }

    #[test]
    fn eval_expr_with_binding() {
        // X * 2 + 1 with X = 4
        let e = Expr::BinOp(
            ArithOp::Add,
            Box::new(Expr::BinOp(
                ArithOp::Mul,
                Box::new(Expr::Term(Term::Var(0, "X".into()))),
                Box::new(Expr::Term(Term::Const(int(2)))),
            )),
            Box::new(Expr::Term(Term::Const(int(1)))),
        );
        let binding = vec![Some(int(4))];
        assert_eq!(eval_expr(&e, &binding).unwrap(), int(9));
        assert!(eval_expr(&e, &vec![None]).is_err());
    }
}
