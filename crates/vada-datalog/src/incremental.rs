//! Incremental (delta) evaluation: a persistent [`IncrementalSession`]
//! that keeps the materialized strata of one program alive between calls
//! and feeds *changes* through the engine's existing semi-naive machinery,
//! so a re-run after a small edit costs O(change) instead of O(database).
//!
//! ## Contract
//!
//! The session's output is **byte-identical** to evaluating the program
//! from scratch over the accumulated input: same derived relations, same
//! [`FactSet`](crate::engine::FactSet) insertion order. Whenever a delta
//! cannot be *proven* order-safe by the analysis below, the session falls
//! back to a full re-derivation — recording why in its
//! [`history`](IncrementalSession::history) — never to divergent output.
//! The root `incremental_equivalence` differential suite pins this for
//! randomized edit scripts, at every [`Parallelism`] level (delta passes
//! reuse the engine's independent-rule batching, so they parallelise too).
//!
//! ## Order-safety analysis
//!
//! A delta (a batch of new extensional facts) takes the fast path only
//! when every condition below holds; each names the fallback reason it
//! produces. Writing `affected` for the delta predicates closed under
//! rule heads (a rule with an affected positive body predicate makes its
//! head affected):
//!
//! 1. delta predicates are extensional — not the head of any rule or
//!    ground fact (*"delta targets derived predicate"*);
//! 2. no affected predicate is negated anywhere — growth under negation
//!    retracts conclusions (*"negated predicate changed"*);
//! 3. no aggregate rule reads an affected predicate — aggregates are not
//!    monotone (*"aggregate input changed"*);
//! 4. no affected predicate lies on a positive cycle — genuinely
//!    recursive deltas interleave semi-naive iterations with old facts
//!    (*"recursive predicate changed"*); acyclic chains are fine: affected
//!    rules fire once each, in topological waves, and every head fact's
//!    result block lands exactly when the fact first becomes visible —
//!    the same order a scratch run produces;
//! 5. each rule has at most one affected positive literal, and that
//!    literal is the outermost generator of the compiled join order — only
//!    then do new derivations form a *suffix* of the scratch enumeration
//!    (*"multiple changed body literals"* / *"changed literal not
//!    outermost"*);
//! 6. an affected head defined by several rules must be *terminal* (read
//!    nowhere) with rules firing only in the initial pass, in which case
//!    its scratch order is re-established from per-rule emission segments
//!    (*"multi-rule predicate is read downstream"*).
//!
//! ## Example
//!
//! ```
//! use vada_common::tuple;
//! use vada_datalog::engine::{Database, EngineConfig};
//! use vada_datalog::incremental::{DeltaMode, IncrementalSession};
//!
//! let mut session = IncrementalSession::new(
//!     EngineConfig::default(),
//!     "big(X) :- n(X), X >= 10.",
//! ).unwrap();
//! let mut input = Database::new();
//! input.insert("n", tuple![5]);
//! input.insert("n", tuple![15]);
//! session.run_full(input).unwrap();
//!
//! // a two-fact delta evaluates in O(2), not O(n)
//! session.apply(vec![("n".into(), tuple![25]), ("n".into(), tuple![3])]).unwrap();
//! let out = session.last_outcome().unwrap();
//! assert_eq!(out.mode, DeltaMode::Incremental);
//! assert_eq!(session.database().facts("big"), &[tuple![15], tuple![25]]);
//! ```

use std::collections::{BTreeMap, BTreeSet};

use vada_common::par::{self, Parallelism};
use vada_common::{Result, Tuple, VadaError};

use crate::analysis::{stratify, Stratification};
use crate::ast::{Literal, Program};
use crate::engine::{independent_batches, CompiledRule, Database, Engine, EngineConfig, FactSet};
use crate::parser::parse_program;

/// How one call to [`IncrementalSession::apply`] (or
/// [`run_full`](IncrementalSession::run_full)) evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaMode {
    /// A from-scratch materialization requested by the caller.
    Bootstrap,
    /// The delta went through the semi-naive fast path.
    Incremental,
    /// The delta was not provably order-safe; the session re-derived from
    /// scratch (the reason is in [`DeltaOutcome::fallback_reason`]).
    FullFallback,
}

/// What one evaluation step did — the incremental layer's trace entry.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaOutcome {
    /// Fast path, fallback, or explicit bootstrap.
    pub mode: DeltaMode,
    /// Why the fast path was refused (set iff `mode` is `FullFallback`).
    pub fallback_reason: Option<String>,
    /// Number of genuinely new extensional facts fed in.
    pub delta_facts: usize,
    /// Facts newly derived by this step (for full runs: all derived facts).
    pub derived_facts: usize,
    /// Predicates whose fact order was re-established from segments (their
    /// extension is *not* an append to the previous state; consumers that
    /// mirror fact order must rebuild these, and may append for the rest).
    pub reordered: BTreeSet<String>,
}

/// Per-rule static info the eligibility analysis consults.
struct RuleInfo {
    head: String,
    /// Positive body predicates in source (occurrence) order.
    positive: Vec<String>,
    /// Occurrence index (among positive literals) of the positive literal
    /// the compiled join order enumerates first, if any.
    outermost_occ: Option<usize>,
    has_aggregate: bool,
}

/// Program-wide static info, computed once per session.
struct ProgramInfo {
    /// head predicate → defining rule indices (non-fact rules).
    defining: BTreeMap<String, Vec<usize>>,
    /// Predicates appearing negated anywhere.
    read_neg: BTreeSet<String>,
    /// Predicates on a genuine positive dependency cycle — the set that
    /// refuses the fast path.
    cyclic: BTreeSet<String>,
    /// Heads of ground-fact rules in the program.
    fact_heads: BTreeSet<String>,
    /// Aligned with `program.rules`; `None` for ground facts.
    rules: Vec<Option<RuleInfo>>,
    /// Multi-rule terminal heads eligible for segment tracking.
    tracked_candidates: BTreeSet<String>,
}

impl ProgramInfo {
    fn build(program: &Program, strat: &Stratification) -> Result<ProgramInfo> {
        let mut defining: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut read_pos = BTreeSet::new();
        let mut read_neg = BTreeSet::new();
        let mut fact_heads = BTreeSet::new();
        let mut rules: Vec<Option<RuleInfo>> = Vec::with_capacity(program.rules.len());
        for (ri, rule) in program.rules.iter().enumerate() {
            if rule.is_fact() {
                fact_heads.insert(rule.head_pred.clone());
                rules.push(None);
                continue;
            }
            defining.entry(rule.head_pred.clone()).or_default().push(ri);
            let cr = CompiledRule::compile(rule, ri)?;
            let outermost_occ = cr
                .order
                .iter()
                .find(|&&i| matches!(rule.body[i], Literal::Pos(_)))
                .and_then(|&i| cr.occurrence_of(i));
            let positive: Vec<String> =
                rule.positive_preds().map(|p| p.to_string()).collect();
            let negative: Vec<String> =
                rule.negative_preds().map(|p| p.to_string()).collect();
            read_pos.extend(positive.iter().cloned());
            read_neg.extend(negative);
            rules.push(Some(RuleInfo {
                head: rule.head_pred.clone(),
                positive,
                outermost_occ,
                has_aggregate: rule.has_aggregate(),
            }));
        }
        let mut stratum_recursive = BTreeSet::new();
        for stratum in 0..strat.stratum_count {
            stratum_recursive.extend(strat.recursive_preds(program, stratum));
        }
        // genuine positive cycles: body-pred → head edges, then every
        // predicate that can reach itself
        let mut edges: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (ri, rule) in program.rules.iter().enumerate() {
            if rules[ri].is_none() {
                continue;
            }
            for p in rule.positive_preds() {
                edges.entry(p).or_default().insert(rule.head_pred.as_str());
            }
        }
        let mut cyclic = BTreeSet::new();
        for start in edges.keys().copied().collect::<Vec<_>>() {
            let mut stack: Vec<&str> = edges[start].iter().copied().collect();
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            while let Some(p) = stack.pop() {
                if p == start {
                    cyclic.insert(start.to_string());
                    break;
                }
                if seen.insert(p) {
                    if let Some(next) = edges.get(p) {
                        stack.extend(next.iter().copied());
                    }
                }
            }
        }
        // a multi-rule head can keep scratch order under deltas only when
        // nothing observes that order downstream (terminal) and its rules
        // fire exclusively in the initial pass (no body predicate the
        // stratification deems recursive — the conservative set, so the
        // per-rule segments captured by post-hoc re-evaluation are exact)
        let mut tracked_candidates = BTreeSet::new();
        for (head, ris) in &defining {
            if ris.len() < 2
                || read_pos.contains(head)
                || read_neg.contains(head)
                || fact_heads.contains(head)
            {
                continue;
            }
            let initial_pass_only = ris.iter().all(|&ri| {
                rules[ri].as_ref().is_some_and(|info| {
                    info.positive.iter().all(|p| !stratum_recursive.contains(p))
                })
            });
            if initial_pass_only {
                tracked_candidates.insert(head.clone());
            }
        }
        Ok(ProgramInfo { defining, read_neg, cyclic, fact_heads, rules, tracked_candidates })
    }
}

/// The recorded emission order of one tracked head: its extensional prefix
/// plus one deduplicated segment per defining rule, in program order.
/// `dedup(concat(input, segments))` is exactly the scratch insertion order,
/// because the tracked head's rules fire once each, in rule order, over
/// inputs that are finalized before their stratum starts.
struct HeadSegments {
    input: FactSet,
    /// `(rule index, emissions)` in program order.
    by_rule: Vec<(usize, FactSet)>,
}

impl HeadSegments {
    fn reconstruct(&self) -> FactSet {
        let mut fs = FactSet::default();
        for t in self.input.tuples() {
            fs.insert(t.clone());
        }
        for (_, seg) in &self.by_rule {
            for t in seg.tuples() {
                fs.insert(t.clone());
            }
        }
        fs
    }
}

/// A persistent evaluation session for one program. See the module docs.
pub struct IncrementalSession {
    engine: Engine,
    source: String,
    program: Program,
    strat: Stratification,
    info: ProgramInfo,
    /// Extensional input facts accumulated so far (what a scratch run
    /// would start from). Used for fallback re-derivation.
    base: Database,
    /// Materialized database: `base` plus everything derived.
    db: Database,
    /// Emission segments for tracked multi-rule terminal heads.
    segments: BTreeMap<String, HeadSegments>,
    history: Vec<DeltaOutcome>,
    /// Set while a failed `apply` may have left `db` half-updated; every
    /// later `apply` refuses until `run_full` re-materializes.
    poisoned: bool,
    bootstrapped: bool,
}

impl std::fmt::Debug for IncrementalSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalSession")
            .field("rules", &self.program.rules.len())
            .field("facts", &self.db.total_facts())
            .field("steps", &self.history.len())
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl IncrementalSession {
    /// Parse and analyse `source`, creating an empty session. Call
    /// [`run_full`](IncrementalSession::run_full) before
    /// [`apply`](IncrementalSession::apply).
    pub fn new(config: EngineConfig, source: &str) -> Result<IncrementalSession> {
        let program = parse_program(source)?;
        let strat = stratify(&program)?;
        let info = ProgramInfo::build(&program, &strat)?;
        Ok(IncrementalSession {
            engine: Engine::new(config),
            source: source.to_string(),
            program,
            strat,
            info,
            base: Database::new(),
            db: Database::new(),
            segments: BTreeMap::new(),
            history: Vec::new(),
            poisoned: false,
            bootstrapped: false,
        })
    }

    /// The program text this session evaluates.
    pub fn program_source(&self) -> &str {
        &self.source
    }

    /// The materialized database (inputs plus everything derived).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// One entry per evaluation step, oldest first — the incremental
    /// layer's trace, including every fallback and its reason.
    pub fn history(&self) -> &[DeltaOutcome] {
        &self.history
    }

    /// The most recent evaluation step.
    pub fn last_outcome(&self) -> Option<&DeltaOutcome> {
        self.history.last()
    }

    /// Change the worker count for delta passes. Output is invariant to
    /// the level (see [`vada_common::par`]), so this is always safe.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.engine.config_mut().parallelism = parallelism;
    }

    /// Materialize from scratch over a fresh extensional input, replacing
    /// all session state. This is both the bootstrap step and the recovery
    /// path after a poisoned `apply`.
    pub fn run_full(&mut self, input: Database) -> Result<&Database> {
        self.full_run(input, DeltaMode::Bootstrap, None, 0)
    }

    fn full_run(
        &mut self,
        input: Database,
        mode: DeltaMode,
        fallback_reason: Option<String>,
        delta_facts: usize,
    ) -> Result<&Database> {
        let db = self.engine.run(&self.program, input.clone())?;
        let derived = db.total_facts().saturating_sub(input.total_facts());
        self.segments = self.capture_segments(&input, &db)?;
        self.base = input;
        self.db = db;
        self.poisoned = false;
        self.bootstrapped = true;
        self.history.push(DeltaOutcome {
            mode,
            fallback_reason,
            delta_facts,
            derived_facts: derived,
            reordered: BTreeSet::new(),
        });
        Ok(&self.db)
    }

    /// Capture per-rule emission segments for every tracked candidate by
    /// re-evaluating its defining rules over the final database (sound
    /// because tracked rules only read predicates finalized below their
    /// stratum). A head whose reconstruction does not reproduce the
    /// scratch order exactly is silently dropped from tracking — deltas
    /// touching it then fall back to full runs instead of risking drift.
    fn capture_segments(
        &self,
        input: &Database,
        db: &Database,
    ) -> Result<BTreeMap<String, HeadSegments>> {
        let mut out = BTreeMap::new();
        for head in &self.info.tracked_candidates {
            let mut segs = HeadSegments {
                input: input.fact_set(head).cloned().unwrap_or_default(),
                by_rule: Vec::new(),
            };
            for &ri in &self.info.defining[head] {
                let cr = CompiledRule::compile(&self.program.rules[ri], ri)?;
                let mut seg = FactSet::default();
                for (_, t) in self.engine.eval_rule(&cr, db, None)? {
                    seg.insert(t);
                }
                segs.by_rule.push((ri, seg));
            }
            if segs.reconstruct().tuples() == db.facts(head) {
                out.insert(head.clone(), segs);
            }
        }
        Ok(out)
    }

    /// Feed a batch of new extensional facts through the session. Facts
    /// must arrive in the order a scratch input build would append them;
    /// already-present facts are ignored. Returns the updated database.
    pub fn apply(&mut self, delta: Vec<(String, Tuple)>) -> Result<&Database> {
        if !self.bootstrapped {
            return Err(VadaError::Eval(
                "incremental session not bootstrapped: call run_full first".into(),
            ));
        }
        if self.poisoned {
            return Err(VadaError::Eval(
                "incremental session poisoned by an earlier failure: run_full required".into(),
            ));
        }

        // deltas must be extensional: a fact for a derived predicate would
        // occupy an input position in a scratch run, which appending can
        // never reproduce
        for (pred, _) in &delta {
            if self.info.defining.contains_key(pred) || self.info.fact_heads.contains(pred) {
                let reason = format!("delta targets derived predicate `{pred}`");
                return self.fallback(delta, reason);
            }
        }

        // extend the accumulated input; only genuinely new facts matter
        // (scratch would dedup repeats into their existing positions)
        let mut fresh: Vec<(String, Tuple)> = Vec::new();
        for (pred, t) in delta {
            if self.base.insert(&pred, t.clone()) {
                fresh.push((pred, t));
            }
        }
        if fresh.is_empty() {
            self.history.push(DeltaOutcome {
                mode: DeltaMode::Incremental,
                fallback_reason: None,
                delta_facts: 0,
                derived_facts: 0,
                reordered: BTreeSet::new(),
            });
            return Ok(&self.db);
        }

        if let Some(reason) = self.refuse_reason(&fresh) {
            return self.fallback_rerun(reason, fresh.len());
        }
        self.fast_path(fresh)
    }

    /// Run the order-safety analysis (module docs, conditions 2–6) over a
    /// batch of fresh extensional facts; `Some(reason)` refuses the fast
    /// path.
    fn refuse_reason(&self, fresh: &[(String, Tuple)]) -> Option<String> {
        let affected = self.affected_preds(fresh);
        for p in &affected {
            if self.info.read_neg.contains(p) {
                return Some(format!("negated predicate `{p}` changed"));
            }
            if self.info.cyclic.contains(p) {
                return Some(format!("recursive predicate `{p}` changed"));
            }
        }
        for info in self.info.rules.iter().flatten() {
            let hits: Vec<usize> = info
                .positive
                .iter()
                .enumerate()
                .filter(|(_, p)| affected.contains(*p))
                .map(|(occ, _)| occ)
                .collect();
            if hits.is_empty() {
                continue;
            }
            if info.has_aggregate {
                return Some(format!(
                    "aggregate input changed (head `{}`)",
                    info.head
                ));
            }
            if hits.len() > 1 {
                return Some(format!(
                    "multiple changed body literals in a rule for `{}`",
                    info.head
                ));
            }
            if info.outermost_occ != Some(hits[0]) {
                return Some(format!(
                    "changed literal `{}` is not the outermost generator in a rule for `{}`",
                    info.positive[hits[0]], info.head
                ));
            }
        }
        for h in &affected {
            let n_rules = self.info.defining.get(h).map_or(0, |v| v.len());
            if n_rules >= 2 && !self.segments.contains_key(h) {
                return Some(format!(
                    "multi-rule predicate `{h}` is read downstream or untracked"
                ));
            }
        }
        None
    }

    /// Delta predicates closed under rule heads.
    fn affected_preds(&self, fresh: &[(String, Tuple)]) -> BTreeSet<String> {
        let mut affected: BTreeSet<String> =
            fresh.iter().map(|(p, _)| p.clone()).collect();
        loop {
            let mut changed = false;
            for info in self.info.rules.iter().flatten() {
                if !affected.contains(&info.head)
                    && info.positive.iter().any(|p| affected.contains(p))
                {
                    affected.insert(info.head.clone());
                    changed = true;
                }
            }
            if !changed {
                return affected;
            }
        }
    }

    /// Full re-derivation after extending the base with a delta that never
    /// made it past the extensional check.
    fn fallback(&mut self, delta: Vec<(String, Tuple)>, reason: String) -> Result<&Database> {
        let mut fresh = 0usize;
        for (pred, t) in delta {
            if self.base.insert(&pred, t) {
                fresh += 1;
            }
        }
        self.fallback_rerun(reason, fresh)
    }

    fn fallback_rerun(&mut self, reason: String, delta_facts: usize) -> Result<&Database> {
        let input = self.base.clone();
        match self.full_run(input, DeltaMode::FullFallback, Some(reason), delta_facts) {
            Ok(_) => Ok(&self.db),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// The semi-naive fast path. `fresh` holds genuinely new extensional
    /// facts already inserted into `base`.
    ///
    /// Affected rules fire **once each**, in topological waves per
    /// stratum: a rule becomes ready when the producer of its affected
    /// (outermost) predicate has fired — analysis has excluded positive
    /// cycles, so the affected sub-graph is a DAG and the waves drain.
    /// Each wave reuses the engine's independent-rule batching, so deltas
    /// evaluate under [`Parallelism`] exactly like full passes.
    fn fast_path(&mut self, fresh: Vec<(String, Tuple)>) -> Result<&Database> {
        self.poisoned = true; // cleared on success
        let delta_facts = fresh.len();
        let mut derived = 0usize;
        let mut reordered: BTreeSet<String> = BTreeSet::new();

        let affected = self.affected_preds(&fresh);
        // pending new facts per predicate, in arrival order — the delta
        // the engine's occurrence-restricted passes consume
        let mut pending = Database::new();
        for (pred, t) in &fresh {
            self.db.insert(pred, t.clone());
            pending.insert(pred, t.clone());
        }
        // an affected predicate's delta is complete once its producer has
        // fired; extensional deltas are complete from the start
        let mut ready: BTreeSet<&str> = affected
            .iter()
            .filter(|p| !self.info.defining.contains_key(*p))
            .map(|p| p.as_str())
            .collect();
        // emissions appended to tracked segments this step
        let mut touched_segments: BTreeSet<String> = BTreeSet::new();

        for stratum in 0..self.strat.stratum_count {
            // rules of this stratum with an affected outermost literal,
            // in program order; each fires exactly once
            let mut waiting: Vec<(usize, usize)> = Vec::new(); // (rule idx, occurrence)
            for &ri in &self.strat.strata_rules[stratum] {
                let Some(info) = &self.info.rules[ri] else { continue };
                let Some(occ) = info.outermost_occ else { continue };
                if affected.contains(&info.positive[occ]) {
                    waiting.push((ri, occ));
                }
            }
            while !waiting.is_empty() {
                let (wave, rest): (Vec<(usize, usize)>, Vec<(usize, usize)>) =
                    waiting.iter().copied().partition(|&(ri, occ)| {
                        let info = self.info.rules[ri].as_ref().expect("non-fact rule");
                        ready.contains(info.positive[occ].as_str())
                    });
                if wave.is_empty() {
                    self.poisoned = true;
                    return Err(VadaError::Eval(
                        "incremental delta plan is not acyclic (internal invariant)".into(),
                    ));
                }
                waiting = rest;
                let compiled: Vec<CompiledRule> = wave
                    .iter()
                    .map(|&(ri, _)| CompiledRule::compile(&self.program.rules[ri], ri))
                    .collect::<Result<_>>()?;
                let reads: Vec<BTreeSet<&str>> = compiled
                    .iter()
                    .map(|cr| {
                        cr.rule
                            .positive_preds()
                            .chain(cr.rule.negative_preds())
                            .collect()
                    })
                    .collect();
                let heads: Vec<&str> =
                    compiled.iter().map(|cr| cr.rule.head_pred.as_str()).collect();
                let all: Vec<usize> = (0..wave.len()).collect();
                let par_level = self.engine.pass_parallelism(pending.total_facts());
                for batch in independent_batches(&all, &reads, &heads) {
                    let outs = par::par_try_map(
                        par_level,
                        "datalog/incremental-delta",
                        &batch,
                        |_, &wi| {
                            let (_, occ) = wave[wi];
                            self.engine.eval_rule(
                                &compiled[wi],
                                &self.db,
                                Some((&pending, occ)),
                            )
                        },
                    )?;
                    for (wi, out) in batch.iter().zip(outs) {
                        let (ri, _) = wave[*wi];
                        for (pred, t) in out {
                            if let Some(segs) = self.segments.get_mut(&pred) {
                                // tracked head: record in the rule's
                                // segment; db order re-established below
                                if segs
                                    .by_rule
                                    .iter_mut()
                                    .find(|(r, _)| *r == ri)
                                    .expect("firing rule defines this head")
                                    .1
                                    .insert(t)
                                {
                                    touched_segments.insert(pred.clone());
                                }
                            } else if self.db.insert(&pred, t.clone()) {
                                derived += 1;
                                pending.insert(&pred, t);
                            }
                        }
                    }
                }
                // every head whose (single) defining rule fired is complete
                for &(ri, _) in &wave {
                    let info = self.info.rules[ri].as_ref().expect("non-fact rule");
                    ready.insert(info.head.as_str());
                }
            }
            if self.db.total_facts() > self.engine.config().max_facts {
                return Err(VadaError::Eval(format!(
                    "derived fact count exceeded the cap of {}",
                    self.engine.config().max_facts
                )));
            }
        }

        // re-establish scratch order for tracked heads that grew
        for head in touched_segments {
            let segs = &self.segments[&head];
            let rebuilt = segs.reconstruct();
            let old_len = self.db.facts(&head).len();
            derived += rebuilt.len().saturating_sub(old_len);
            let append_only = rebuilt.tuples()[..old_len.min(rebuilt.len())]
                == *self.db.facts(&head);
            if !append_only {
                reordered.insert(head.clone());
            }
            self.db.set_fact_set(&head, rebuilt);
        }
        // facts derived into tracked segments bypass the per-stratum cap
        // checks above; re-check so the fast path errors wherever a full
        // run would (the modes must agree on errors, not just results)
        if self.db.total_facts() > self.engine.config().max_facts {
            return Err(VadaError::Eval(format!(
                "derived fact count exceeded the cap of {}",
                self.engine.config().max_facts
            )));
        }

        self.poisoned = false;
        self.history.push(DeltaOutcome {
            mode: DeltaMode::Incremental,
            fallback_reason: None,
            delta_facts,
            derived_facts: derived,
            reordered,
        });
        Ok(&self.db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::tuple;

    /// Scratch evaluation of `source` over `input`, dumped in the
    /// order-sensitive way downstream components observe.
    fn scratch(source: &str, input: &Database) -> String {
        let db = Engine::default()
            .run(&parse_program(source).unwrap(), input.clone())
            .unwrap();
        dump(&db)
    }

    fn dump(db: &Database) -> String {
        let mut out = String::new();
        for pred in db.predicates() {
            for t in db.facts(pred) {
                out.push_str(&format!("{pred}{t:?}\n"));
            }
        }
        out
    }

    fn session(source: &str, input: Database) -> IncrementalSession {
        let mut s = IncrementalSession::new(EngineConfig::default(), source).unwrap();
        s.run_full(input).unwrap();
        s
    }

    #[test]
    fn single_rule_append_takes_fast_path_and_matches_scratch() {
        let src = "q(X, Y) :- p(X), r(X, Y).";
        let mut input = Database::new();
        for i in 0..20i64 {
            input.insert("p", tuple![i]);
            input.insert("r", tuple![i, i * 10]);
        }
        let mut s = session(src, input.clone());
        s.apply(vec![("p".into(), tuple![100i64])]).unwrap();
        input.insert("p", tuple![100i64]);
        assert_eq!(s.last_outcome().unwrap().mode, DeltaMode::Incremental);
        assert_eq!(dump(s.database()), scratch(src, &input));
    }

    #[test]
    fn delta_cascades_through_derived_chain() {
        // p → mid → top is an acyclic chain inside one stratum: the waves
        // fire mid's rule first, then top's, all on the fast path
        let src = "mid(X) :- p(X). top(X, Y) :- mid(X), k(X, Y).";
        let mut input = Database::new();
        input.insert("p", tuple![1]);
        input.insert("k", tuple![1, 10]);
        input.insert("k", tuple![2, 20]);
        let mut s = session(src, input.clone());
        s.apply(vec![("p".into(), tuple![2])]).unwrap();
        input.insert("p", tuple![2]);
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::Incremental);
        assert_eq!(out.delta_facts, 1);
        assert_eq!(out.derived_facts, 2, "mid(2) and top(2,20)");
        assert_eq!(dump(s.database()), scratch(src, &input));
    }

    #[test]
    fn non_outermost_change_falls_back_and_still_matches() {
        let src = "q(X, Y) :- p(X), r(X, Y).";
        let mut input = Database::new();
        input.insert("p", tuple![1]);
        input.insert("p", tuple![2]);
        input.insert("r", tuple![1, 10]);
        let mut s = session(src, input.clone());
        // r is the inner literal: appending r rows would interleave into
        // the middle of the scratch enumeration
        s.apply(vec![("r".into(), tuple![2, 20])]).unwrap();
        input.insert("r", tuple![2, 20]);
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::FullFallback);
        assert!(
            out.fallback_reason.as_deref().unwrap().contains("not the outermost"),
            "{out:?}"
        );
        assert_eq!(dump(s.database()), scratch(src, &input));
    }

    #[test]
    fn negation_and_aggregate_inputs_fall_back() {
        let src = r#"
            lonely(X) :- node(X), not linked(X).
            linked(X) :- edge(X, _).
            total(count(X)) :- node(X).
        "#;
        let mut input = Database::new();
        input.insert("node", tuple![1]);
        input.insert("edge", tuple![1, 2]);
        let mut s = session(src, input.clone());

        // edge feeds linked which is negated: growth retracts lonely facts
        s.apply(vec![("edge".into(), tuple![3, 4])]).unwrap();
        input.insert("edge", tuple![3, 4]);
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::FullFallback);
        assert!(out.fallback_reason.as_deref().unwrap().contains("negated"), "{out:?}");
        assert_eq!(dump(s.database()), scratch(src, &input));

        // node feeds both the negation rule (as outer generator, fine) and
        // the count aggregate (not monotone)
        s.apply(vec![("node".into(), tuple![5])]).unwrap();
        input.insert("node", tuple![5]);
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::FullFallback);
        assert_eq!(dump(s.database()), scratch(src, &input));
    }

    #[test]
    fn recursive_delta_falls_back() {
        let src = "tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z).";
        let mut input = Database::new();
        for i in 0..10i64 {
            input.insert("edge", tuple![i, i + 1]);
        }
        let mut s = session(src, input.clone());
        s.apply(vec![("edge".into(), tuple![20i64, 21i64])]).unwrap();
        input.insert("edge", tuple![20i64, 21i64]);
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::FullFallback);
        assert_eq!(dump(s.database()), scratch(src, &input));
    }

    #[test]
    fn multi_rule_terminal_head_keeps_scratch_order() {
        // classic union head: scratch order is (rule A block, rule B block),
        // so a delta through rule A must land *before* rule B's old facts
        let src = "all(X) :- a(X). all(X) :- b(X).";
        let mut input = Database::new();
        input.insert("a", tuple![1]);
        input.insert("b", tuple![10]);
        input.insert("b", tuple![11]);
        let mut s = session(src, input.clone());
        s.apply(vec![("a".into(), tuple![2])]).unwrap();
        input.insert("a", tuple![2]);
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::Incremental, "{out:?}");
        assert!(out.reordered.contains("all"), "insertion is mid-sequence: {out:?}");
        assert_eq!(dump(s.database()), scratch(src, &input));
        assert_eq!(
            s.database().facts("all"),
            &[tuple![1], tuple![2], tuple![10], tuple![11]]
        );

        // a delta through the *last* rule is a pure append
        s.apply(vec![("b".into(), tuple![12])]).unwrap();
        input.insert("b", tuple![12]);
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::Incremental);
        assert!(out.reordered.is_empty(), "{out:?}");
        assert_eq!(dump(s.database()), scratch(src, &input));
    }

    #[test]
    fn multi_rule_head_read_downstream_falls_back() {
        let src = "all(X) :- a(X). all(X) :- b(X). big(X) :- all(X), X > 5.";
        let mut input = Database::new();
        input.insert("a", tuple![1]);
        input.insert("b", tuple![10]);
        let mut s = session(src, input.clone());
        s.apply(vec![("a".into(), tuple![7])]).unwrap();
        input.insert("a", tuple![7]);
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::FullFallback);
        assert!(out.fallback_reason.as_deref().unwrap().contains("multi-rule"), "{out:?}");
        assert_eq!(dump(s.database()), scratch(src, &input));
    }

    #[test]
    fn derived_predicate_delta_falls_back() {
        let src = "q(X) :- p(X).";
        let mut input = Database::new();
        input.insert("p", tuple![1]);
        let mut s = session(src, input.clone());
        s.apply(vec![("q".into(), tuple![99])]).unwrap();
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::FullFallback);
        assert!(out.fallback_reason.as_deref().unwrap().contains("derived"), "{out:?}");
        // scratch over input-with-q must agree
        input.insert("q", tuple![99]);
        assert_eq!(dump(s.database()), scratch(src, &input));
    }

    #[test]
    fn duplicate_delta_facts_are_noops() {
        let src = "q(X) :- p(X).";
        let mut input = Database::new();
        input.insert("p", tuple![1]);
        let mut s = session(src, input);
        s.apply(vec![("p".into(), tuple![1])]).unwrap();
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::Incremental);
        assert_eq!(out.delta_facts, 0);
        assert_eq!(out.derived_facts, 0);
    }

    #[test]
    fn skolem_heads_stay_deterministic_under_deltas() {
        let src = "owner(X, Z) :- prop(X).";
        let mut input = Database::new();
        input.insert("prop", tuple!["p1"]);
        let mut s = session(src, input.clone());
        s.apply(vec![("prop".into(), tuple!["p2"])]).unwrap();
        input.insert("prop", tuple!["p2"]);
        assert_eq!(s.last_outcome().unwrap().mode, DeltaMode::Incremental);
        assert_eq!(dump(s.database()), scratch(src, &input));
    }

    #[test]
    fn randomized_edit_scripts_match_scratch_at_every_level() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // a program exercising every fast-path shape plus fallback causes
        let src = r#"
            all(X, Y) :- a(X, Y).
            all(X, Y) :- b(X, Y).
            picked(X, Y) :- a(X, Y), k(X).
            wide(X, Y, Z) :- picked(X, Y), w(Y, Z).
        "#;
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut input = Database::new();
            for i in 0..30i64 {
                input.insert("a", tuple![i % 7, i]);
                input.insert("b", tuple![i % 5, i + 100]);
                if i % 3 == 0 {
                    input.insert("k", tuple![i % 7]);
                }
                input.insert("w", tuple![i, i * 2]);
            }
            let levels = [Parallelism::Sequential, Parallelism::Threads(4)];
            let mut sessions: Vec<IncrementalSession> = levels
                .iter()
                .map(|&par| {
                    let mut s =
                        IncrementalSession::new(EngineConfig::default(), src).unwrap();
                    s.set_parallelism(par);
                    s.run_full(input.clone()).unwrap();
                    s
                })
                .collect();
            let mut fast = 0usize;
            for _step in 0..12 {
                let mut delta: Vec<(String, Tuple)> = Vec::new();
                for _ in 0..rng.gen_range(1usize..4) {
                    let v: i64 = rng.gen_range(0i64..2000);
                    let pred = ["a", "b", "k", "w"][rng.gen_range(0usize..4)];
                    let t = match pred {
                        "k" => tuple![v % 9],
                        _ => tuple![v % 9, v],
                    };
                    delta.push((pred.to_string(), t));
                }
                for (p, t) in &delta {
                    input.insert(p, t.clone());
                }
                let mut dumps = Vec::new();
                for s in &mut sessions {
                    s.apply(delta.clone()).unwrap();
                    if s.last_outcome().unwrap().mode == DeltaMode::Incremental {
                        fast += 1;
                    }
                    dumps.push(dump(s.database()));
                }
                let expected = scratch(src, &input);
                for (i, d) in dumps.iter().enumerate() {
                    assert_eq!(d, &expected, "seed {seed} level {:?}", levels[i]);
                }
            }
            assert!(fast > 0, "seed {seed}: fast path never fired");
        }
    }

    #[test]
    fn mid_delta_error_poisons_until_run_full() {
        // the delta pass hits an arithmetic type error only for the new fact
        let src = r#"q(Y) :- p(X), Y = X * 2."#;
        let mut input = Database::new();
        input.insert("p", tuple![1]);
        let mut s = session(src, input.clone());
        let err = s
            .apply(vec![("p".into(), tuple!["not a number"])])
            .unwrap_err();
        assert_eq!(err.kind(), "eval", "{err}");
        // poisoned: further deltas are refused…
        let err = s.apply(vec![("p".into(), tuple![2])]).unwrap_err();
        assert!(err.message().contains("poisoned"), "{err}");
        // …until a full re-materialization over clean input
        s.run_full(input.clone()).unwrap();
        s.apply(vec![("p".into(), tuple![2])]).unwrap();
        input.insert("p", tuple![2]);
        assert_eq!(dump(s.database()), scratch(src, &input));
    }

    #[test]
    fn apply_before_bootstrap_is_an_error() {
        let mut s = IncrementalSession::new(EngineConfig::default(), "q(X) :- p(X).").unwrap();
        let err = s.apply(vec![("p".into(), tuple![1])]).unwrap_err();
        assert!(err.message().contains("bootstrapped"), "{err}");
    }
}
